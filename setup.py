"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
the legacy ``pip install -e . --no-use-pep517`` editable path (PEP 660
editable installs require ``wheel``, which offline machines may lack).
"""

from setuptools import setup

setup()
