"""Command-line interface: run the paper's experiments from a shell.

Installed as ``python -m repro``.  Subcommands map one-to-one onto the
experiment harnesses::

    python -m repro latency                         # Fig. 3(a)
    python -m repro access-time --size 16384        # Fig. 3(b) point
    python -m repro case-study --share 70           # Fig. 5 row (HC-70-30)
    python -m repro resources --ports 4             # Table I extrapolated
    python -m repro wcrt --bytes 65536 --budget 32 --period 1024
    python -m repro campaign --grid smoke --workers 4 -o results.jsonl
    python -m repro info
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis import (
    HyperConnectWcrt,
    hyperconnect_propagation,
    improvement,
    smartconnect_propagation,
)
from .platforms import PLATFORMS
from .resources import resource_table
from .system import (
    measure_access_time,
    measure_channel_latencies,
    run_case_study,
)
from . import __version__


def _platform(name: str):
    try:
        return PLATFORMS[name]
    except KeyError:
        raise SystemExit(
            f"unknown platform {name!r}; choose from "
            f"{', '.join(sorted(PLATFORMS))}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_latency(args: argparse.Namespace) -> int:
    """Fig. 3(a): per-channel propagation latency table."""
    platform = _platform(args.platform)
    hc = measure_channel_latencies("hyperconnect", platform,
                                   parallel=args.parallel).as_dict()
    sc = measure_channel_latencies("smartconnect", platform,
                                   parallel=args.parallel).as_dict()
    print(f"per-channel propagation latency on {platform.name} (cycles)")
    print(f"{'channel':<9}{'HyperConnect':>13}{'SmartConnect':>13}"
          f"{'improvement':>13}")
    for channel in ("AR", "AW", "R", "W", "B"):
        print(f"{channel:<9}{hc[channel]:>13}{sc[channel]:>13}"
              f"{improvement(sc[channel], hc[channel]):>12.0%}")
    return 0


def cmd_access_time(args: argparse.Namespace) -> int:
    """Fig. 3(b): memory access time for given sizes."""
    platform = _platform(args.platform)
    for nbytes in args.size:
        hc = measure_access_time("hyperconnect", nbytes, platform,
                                 parallel=args.parallel)
        sc = measure_access_time("smartconnect", nbytes, platform,
                                 parallel=args.parallel)
        print(f"{nbytes:>9} B   HC {hc:>8} cycles   SC {sc:>8} cycles   "
              f"improvement {improvement(sc, hc):.1%}")
    return 0


def cmd_case_study(args: argparse.Namespace) -> int:
    """Fig. 4/5: one case-study configuration."""
    platform = _platform(args.platform)
    shares = None
    label = args.interconnect
    if args.share is not None:
        if args.interconnect != "hyperconnect":
            raise SystemExit("--share requires the hyperconnect")
        fraction = args.share / 100.0
        shares = {0: fraction, 1: round(1.0 - fraction, 4)}
        label = f"HC-{args.share}-{100 - args.share}"
    result = run_case_study(args.interconnect, shares=shares,
                            scale=args.scale,
                            window_cycles=args.window,
                            platform=platform, parallel=args.parallel)
    print(f"{label} on {platform.name}: "
          f"CHaiDNN {result.chaidnn_fps:.0f} scaled fps "
          f"({result.chaidnn_frames} frames), "
          f"DMA {result.dma_rate:.0f} rounds/s "
          f"({result.dma_rounds} rounds) "
          f"in {result.window_cycles} cycles")
    return 0


def cmd_resources(args: argparse.Namespace) -> int:
    """Table I: resource consumption estimate."""
    platform = _platform(args.platform)
    print(resource_table(platform, n_ports=args.ports,
                         data_bytes=args.width // 8))
    return 0


def cmd_wcrt(args: argparse.Namespace) -> int:
    """Closed-form worst-case response-time bound."""
    platform = _platform(args.platform)
    model = HyperConnectWcrt(
        n_ports=args.ports, nominal_burst=args.nominal,
        memory=platform.dram, budget=args.budget, period=args.period)
    bound = model.job_bound_bytes(args.bytes, platform.hp_data_bytes)
    print(f"WCRT bound for a {args.bytes} B read on {platform.name} "
          f"({args.ports} ports, nominal {args.nominal}"
          + (f", budget {args.budget}/{args.period}"
             if args.budget else "")
          + f"): {bound} cycles "
          f"({platform.cycles_to_seconds(bound) * 1e6:.1f} us)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Stream a named scenario grid through the campaign runner."""
    from .verify import CampaignConfig, grid_names, grid_scenarios, \
        run_campaign

    if args.list:
        from .verify.paramspace import COMPOSITES, GRIDS
        for name in grid_names():
            if name in COMPOSITES:
                members = ", ".join(COMPOSITES[name])
                print(f"{name:<12} composite of: {members}")
            else:
                print(f"{name:<12} {GRIDS[name].description}")
        return 0
    if args.grid is None:
        raise SystemExit("campaign: --grid NAME required (or --list)")
    scenarios, checks = grid_scenarios(
        args.grid, mode=args.mode, seed=args.seed, samples=args.samples,
        limit=args.limit, horizon=args.horizon)
    if args.checks:
        checks = tuple(args.checks)
    config = CampaignConfig(checks=checks,
                            kernel_parallel=args.kernel_parallel,
                            record_timeout=args.record_timeout)
    print(f"campaign {args.grid!r}: {len(scenarios)} scenarios, "
          f"checks={','.join(checks) or '-'} "
          f"workers={max(1, args.workers)}", flush=True)
    result = run_campaign(scenarios, workers=args.workers, config=config,
                          output=args.output)
    counts = " ".join(f"{verdict}={count}"
                      for verdict, count in sorted(result.counts.items()))
    print(f"verdicts: {counts}")
    print(f"throughput: {result.scenarios_per_sec:.2f} scenarios/s "
          f"({result.wall_s:.1f} s wall, {result.total_cycles} "
          f"simulated cycles)")
    print(f"digest: {result.digest}")
    if args.output is not None:
        print(f"results: {args.output}")
    if not result.ok:
        failing = [r for r in result.records if r["verdict"] != "pass"]
        for record in failing[:10]:
            print(f"  [{record['verdict']}] scenario {record['index']} "
                  f"({record['scenario_id']}): "
                  f"{record['oracle'] or ''} {record['detail']}")
        if len(failing) > 10:
            print(f"  ... and {len(failing) - 10} more")
        return 1
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Library, model, and platform summary."""
    print(f"repro {__version__} — AXI HyperConnect reproduction "
          f"(DAC 2020)")
    hc = hyperconnect_propagation()
    sc = smartconnect_propagation()
    print(f"model latencies: HC {hc} / SC {sc}")
    for platform in PLATFORMS.values():
        print(f"platform {platform.name}: "
              f"{platform.pl_clock_hz / 1e6:.0f} MHz PL, "
              f"{platform.hp_data_bytes * 8}-bit port, "
              f"DRAM read latency {platform.dram.read_latency} cycles")
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--platform", default="ZCU102",
                        help="platform model (default: ZCU102)")
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="sharded tick-engine worker count (0 = "
                             "serial; default: REPRO_PARALLEL env var)")
    parser.add_argument("--parallel-backend", default=None,
                        choices=("auto", "inline", "threads", "processes"),
                        help="sharded tick-engine backend (default: "
                             "REPRO_PARALLEL_BACKEND env var, or auto)")
    parser.add_argument("--tlm", action="store_true",
                        help="transaction-level fast-forward mode: skip "
                             "steady-state epochs analytically, demote "
                             "to cycle-accurate at every unpredictable "
                             "edge (default: REPRO_TLM env var)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "latency", help="Fig. 3(a): per-channel propagation latency"
    ).set_defaults(handler=cmd_latency)

    access = commands.add_parser(
        "access-time", help="Fig. 3(b): memory access time per size")
    access.add_argument("--size", type=int, nargs="+",
                        default=[16, 256, 16384],
                        help="transfer sizes in bytes")
    access.set_defaults(handler=cmd_access_time)

    case = commands.add_parser(
        "case-study", help="Fig. 4/5: CHaiDNN + DMA case study")
    case.add_argument("--interconnect", default="hyperconnect",
                      choices=["hyperconnect", "smartconnect"])
    case.add_argument("--share", type=int, default=None,
                      help="CHaiDNN bandwidth percentage (HC-X-Y)")
    case.add_argument("--window", type=int, default=400_000)
    case.add_argument("--scale", type=float, default=1 / 64)
    case.set_defaults(handler=cmd_case_study)

    resources = commands.add_parser(
        "resources", help="Table I: resource consumption")
    resources.add_argument("--ports", type=int, default=2)
    resources.add_argument("--width", type=int, default=128,
                           help="bus width in bits")
    resources.set_defaults(handler=cmd_resources)

    wcrt = commands.add_parser(
        "wcrt", help="analytic worst-case response-time bound")
    wcrt.add_argument("--bytes", type=int, required=True)
    wcrt.add_argument("--ports", type=int, default=2)
    wcrt.add_argument("--nominal", type=int, default=16)
    wcrt.add_argument("--budget", type=int, default=None)
    wcrt.add_argument("--period", type=int, default=None)
    wcrt.set_defaults(handler=cmd_wcrt)

    campaign = commands.add_parser(
        "campaign",
        help="stream a scenario grid through the multi-process "
             "verification campaign runner")
    campaign.add_argument("--grid", default=None,
                          help="grid name (see --list)")
    campaign.add_argument("--list", action="store_true",
                          help="list available grids and exit")
    campaign.add_argument("--mode", default=None,
                          choices=["full", "pairwise", "sample"],
                          help="coverage mode (default: per-grid)")
    campaign.add_argument("--workers", type=int, default=1, metavar="N",
                          help="worker processes (<=1 runs inline)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="grid-generation seed")
    campaign.add_argument("--samples", type=int, default=64,
                          help="draws for --mode sample")
    campaign.add_argument("--limit", type=int, default=None,
                          help="cap the scenario count")
    campaign.add_argument("--horizon", type=int, default=None,
                          help="override every scenario's horizon")
    campaign.add_argument("--checks", nargs="+", default=None,
                          choices=["equivalence", "liveness", "protocol",
                                   "containment", "isolation", "tlm"],
                          help="oracle families (default: per-grid)")
    campaign.add_argument("--record-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget per record; a hung "
                               "worker becomes an 'error' verdict "
                               "(needs --workers >= 2)")
    campaign.add_argument("--kernel-parallel", type=int, default=0,
                          metavar="N",
                          help="sharded-kernel workers for the parallel "
                               "equivalence leg (0 = skip)")
    campaign.add_argument("--output", "-o", default=None, metavar="FILE",
                          help="write JSON-lines results here")
    campaign.set_defaults(handler=cmd_campaign)

    commands.add_parser(
        "info", help="library and platform summary"
    ).set_defaults(handler=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _platform(args.platform)   # validate once, before any work
    if args.parallel_backend is not None:
        # the builder reads the env var, so one flag reaches every
        # simulator any experiment constructs (same plumbing as
        # REPRO_PARALLEL for call sites without a backend parameter)
        os.environ["REPRO_PARALLEL_BACKEND"] = args.parallel_backend
    if args.tlm:
        os.environ["REPRO_TLM"] = "1"
    return args.handler(args)


if __name__ == "__main__":   # pragma: no cover - module execution path
    sys.exit(main())
