"""Declarative parameter spaces compiling down to :class:`Scenario` grids.

The hand-written scenario families (the seeded fault campaign, the
ablation sweeps, the fuzz strategies' fixed ranges) each encode one
slice of the paper's claim space.  A :class:`ParamSpace` makes the slice
declarative instead: name the axes and their values, pick a coverage
mode, and compile every assignment into a pure-data
:class:`~repro.verify.scenario.Scenario` the campaign runner
(:mod:`repro.verify.campaign`) can stream across worker processes.

Three coverage modes (the litex ``ParamSpace`` idiom):

* ``full`` — the exhaustive cartesian product, for small ranges;
* ``pairwise`` — a greedy covering array that hits every *pair* of axis
  values at least once, for broad ranges (size tracks the product of
  the two largest axes instead of all of them);
* ``sample`` — ``samples`` seeded draws, for unbounded exploration.

All three are deterministic: the same axes + mode + seed always yield
the same assignments in the same order, so campaign results are
reproducible byte-for-byte.  :meth:`ParamSpace.iter_unique` stacks
spaces (e.g. an exhaustive core grid plus a pairwise broad grid) and
deduplicates assignments across them.

The named grids in :data:`GRIDS` cover the sweeps the ROADMAP calls
for — reservation-period sweeps, cascade depth beyond two levels, mixed
HyperConnect+SmartConnect fabrics, and fault-injection knobs — plus the
composite ``smoke`` grid the CI campaign job runs and the deliberately
tiny ``throughput`` scenarios the campaign benchmark streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from itertools import combinations, product
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, \
    Optional, Sequence, Tuple

from .oracles import ALL_CHECKS, DEFAULT_CHECKS
from .scenario import MasterFault, MemoryFault, PortPlan, Scenario, \
    canonical_json

MODES = ("full", "pairwise", "sample")
#: candidate rows per greedy pairwise step (quality/speed trade-off)
_PAIRWISE_CANDIDATES = 24


class ParamSpace:
    """A named-axis grid with a declarative coverage mode.

    ``axes`` maps axis name to a non-empty sequence of JSON-serializable
    values; insertion order is significant (it fixes iteration order).
    """

    def __init__(self, axes: Mapping[str, Sequence], mode: str = "full",
                 samples: int = 64, seed: int = 0) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        if not axes:
            raise ValueError("a ParamSpace needs at least one axis")
        self.axes: Tuple[Tuple[str, tuple], ...] = tuple(
            (str(name), tuple(values)) for name, values in axes.items())
        for name, values in self.axes:
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.mode = mode
        self.samples = samples
        self.seed = seed
        self._assignments: Optional[List[dict]] = None

    # ------------------------------------------------------------------

    def assignments(self) -> List[dict]:
        """The grid's assignments, materialized once (stable order)."""
        if self._assignments is None:
            build = {"full": self._full, "pairwise": self._pairwise,
                     "sample": self._sample}[self.mode]
            self._assignments = build()
        return list(self._assignments)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.assignments())

    def __len__(self) -> int:
        if self.mode == "full":     # closed form, no materialization
            size = 1
            for __, values in self.axes:
                size *= len(values)
            return size
        return len(self.assignments())

    def __repr__(self) -> str:   # pragma: no cover - debugging nicety
        shape = "x".join(str(len(v)) for __, v in self.axes)
        return f"ParamSpace({shape}, mode={self.mode!r})"

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------

    def _full(self) -> List[dict]:
        names = [name for name, __ in self.axes]
        return [dict(zip(names, row))
                for row in product(*(values for __, values in self.axes))]

    def _sample(self) -> List[dict]:
        rng = random.Random(self.seed)
        return [{name: rng.choice(values) for name, values in self.axes}
                for __ in range(self.samples)]

    def _pairwise(self) -> List[dict]:
        """Greedy pairwise covering array.

        Repeatedly generates seeded candidate rows and keeps the one
        covering the most still-uncovered (axis, value) pairs until every
        pair is covered.  Size is near the product of the two largest
        axes — the classic bound — and the greedy choice is fully
        deterministic for a fixed seed.
        """
        if len(self.axes) == 1:
            name, values = self.axes[0]
            return [{name: value} for value in values]
        sizes = [len(values) for __, values in self.axes]
        uncovered = set()
        for a, b in combinations(range(len(self.axes)), 2):
            uncovered.update(((a, va), (b, vb))
                             for va in range(sizes[a])
                             for vb in range(sizes[b]))
        rng = random.Random(self.seed)
        rows: List[tuple] = []
        while uncovered:
            best_row, best_gain = None, -1
            for __ in range(_PAIRWISE_CANDIDATES):
                row = tuple(rng.randrange(size) for size in sizes)
                gain = sum(1 for pair in combinations(enumerate(row), 2)
                           if pair in uncovered)
                if gain > best_gain:
                    best_row, best_gain = row, gain
            if best_gain == 0:
                # the random candidates missed every remaining pair;
                # construct a row directly from one uncovered pair
                (a, va), (b, vb) = next(iter(sorted(uncovered)))
                row = list(rng.randrange(size) for size in sizes)
                row[a], row[b] = va, vb
                best_row = tuple(row)
            rows.append(best_row)
            uncovered -= set(combinations(enumerate(best_row), 2))
        names = [name for name, __ in self.axes]
        return [dict(zip(names, (self.axes[i][1][v]
                                 for i, v in enumerate(row))))
                for row in rows]

    # ------------------------------------------------------------------

    @staticmethod
    def iter_unique(spaces: Iterable["ParamSpace"]) -> Iterator[dict]:
        """Iterate stacked spaces, skipping duplicate assignments.

        Assignments are compared by canonical JSON, so ``(0.5,)`` from a
        full grid and ``(0.5,)`` from a pairwise grid collide as
        intended even when drawn in different axis orders.
        """
        seen = set()
        for space in spaces:
            for assignment in space:
                key = canonical_json(assignment)
                if key in seen:
                    continue
                seen.add(key)
                yield assignment


# ----------------------------------------------------------------------
# grid compilers: assignment dict -> Scenario
# ----------------------------------------------------------------------

def _address(port_index: int, job_index: int = 0, offset: int = 0) -> int:
    return 0x1000_0000 + (port_index << 22) + job_index * 0x1_0000 + offset


def _healthy(port_index: int, kind: str = "read", nbytes: int = 1024,
             timeout: Optional[int] = None) -> PortPlan:
    return PortPlan(jobs=((kind, _address(port_index), nbytes),),
                    timeout=timeout)


#: reads at this 4 KiB offset make an un-legalized burst straddle a page
_ILLEGAL_OFFSET = 0xF80


def _rogue(port_index: int, mode: str, hang: int, timeout: int,
           nbytes: int, persistent: bool = False) -> PortPlan:
    if mode == "illegal_burst":
        jobs = (("read", _address(port_index, offset=_ILLEGAL_OFFSET),
                 1024),)
        return PortPlan(jobs=jobs, timeout=timeout,
                        fault=MasterFault(mode=mode))
    kind = "read" if mode == "hung_r" else "write"
    beats = nbytes // 16
    return PortPlan(
        jobs=((kind, _address(port_index), nbytes),), timeout=timeout,
        fault=MasterFault(mode=mode,
                          hang_after_beats=min(hang, max(0, beats - 1)),
                          persistent=persistent))


def compile_reservation(a: dict) -> Scenario:
    """Reservation-period sweep on a flat fabric with greedy traffic.

    ``share0`` is port 0's reserved fraction (0.0 = decoupled); port 1
    holds the complement (1.0 = unreserved when port 0 is decoupled, so
    the endpoint matches the hand-written ablation).
    """
    share = a["share0"]
    shares = (0.0, 1.0) if share == 0.0 else (share, round(1.0 - share, 4))
    job_bytes = a.get("job_bytes", 16384)
    ports = tuple(
        PortPlan(jobs=(("greedy", 0x4000_0000 + (i << 23), job_bytes),))
        for i in range(2))
    return Scenario(family="flat", ports=ports, shares=shares,
                    period=a.get("period", 2048),
                    horizon=a.get("horizon", 20_000),
                    settle=a.get("settle", 256))


def compile_cascade(a: dict) -> Scenario:
    """Cascade-depth sweep: depth 2-4 chains, optionally with one rogue.

    Invalid combinations are repaired deterministically (port count is
    raised to the depth; the rogue index wraps into range) so pairwise
    rows always compile.
    """
    depth = a.get("depth", 2)
    n_ports = max(a.get("n_ports", depth + 1), depth)
    program = a.get("program", "none")
    job_bytes = a.get("job_bytes", 1024)
    rogue_index = a.get("rogue", 0) % n_ports
    plans = []
    for index in range(n_ports):
        if program != "none" and index == rogue_index:
            plans.append(_rogue(index, program, hang=a.get("hang", 8),
                                timeout=a.get("timeout", 400),
                                nbytes=max(job_bytes, 256)))
        else:
            plans.append(_healthy(index, nbytes=job_bytes))
    return Scenario(family="cascade", cascade_depth=depth,
                    ports=tuple(plans),
                    equal_shares=a.get("equal_shares", False),
                    period=a.get("period", 2048),
                    horizon=a.get("horizon", 12_000))


def compile_fabric(a: dict) -> Scenario:
    """Fabric sweep: HyperConnect vs SmartConnect vs mixed, healthy.

    The fabric axis dominates: ``smartconnect`` forces the flat family,
    ``mixed`` forces multiport (deterministic repair, so family and
    fabric can both be broad pairwise axes).
    """
    fabric = a.get("fabric", "hyperconnect")
    family = a.get("family", "flat")
    if fabric == "smartconnect":
        family = "flat"
    elif fabric == "mixed":
        family = "multiport"
    elif family not in ("flat", "multiport"):
        family = "flat"
    n_ports = max(a.get("n_ports", 2), 2 if family == "multiport" else 1)
    kind = a.get("kind", "read")
    job_bytes = a.get("job_bytes", 1024)
    equal_shares = (a.get("equal_shares", False)
                    and fabric == "hyperconnect")
    plans = tuple(_healthy(i, kind=kind, nbytes=job_bytes)
                  for i in range(n_ports))
    return Scenario(family=family, fabric=fabric, ports=plans,
                    equal_shares=equal_shares,
                    horizon=a.get("horizon", 12_000))


def compile_faults(a: dict) -> Scenario:
    """Fault-injection knob sweep over the in-order DRAM families.

    ``program`` selects at most one fault program: a rogue-master mode,
    a ``mem:*`` memory fault, or ``none``.
    """
    family = a.get("family", "flat")
    n_ports = a.get("n_ports", 2)
    if family == "cascade":
        n_ports = max(n_ports, 2)
    program = a.get("program", "none")
    timeout = a.get("timeout", 400)
    seed = a.get("seed", 1)
    job_bytes = a.get("job_bytes", 1024)
    memory = MemoryFault()
    plans: List[PortPlan] = []
    if program.startswith("mem:"):
        kind = program.split(":", 1)[1]
        memory = MemoryFault(kind=kind,
                             dead_after_beats=a.get("dead_after_beats", 64),
                             freeze_start=a.get("freeze_start", 400),
                             freeze_cycles=a.get("freeze_cycles", 800),
                             stall_rate=a.get("stall_rate", 0.05),
                             stall_cycles=a.get("stall_cycles", 20),
                             error_rate=a.get("error_rate", 0.05),
                             seed=seed)
        # every port is a victim: all watchdogs armed
        plans = [_healthy(i, nbytes=job_bytes, timeout=timeout)
                 for i in range(n_ports)]
    elif program != "none":
        rogue_index = a.get("rogue", 0) % n_ports
        for index in range(n_ports):
            if index == rogue_index:
                plans.append(_rogue(index, program,
                                    hang=a.get("hang", 8),
                                    timeout=timeout,
                                    nbytes=max(job_bytes, 256),
                                    persistent=a.get("persistent", False)))
            else:
                plans.append(_healthy(index, nbytes=job_bytes))
    else:
        plans = [_healthy(i, nbytes=job_bytes) for i in range(n_ports)]
    return Scenario(family=family, ports=tuple(plans), memory=memory,
                    equal_shares=a.get("equal_shares", False),
                    horizon=a.get("horizon", 12_000))


#: per-tenant grant span in the isolation grid (32 register granules)
_ISOLATION_SPAN = 0x20000


def compile_isolation(a: dict) -> Scenario:
    """Many-domain tenant-isolation scenarios (fault storms at scale).

    ``n_domains`` tenants each own one port and one disjoint
    :data:`_ISOLATION_SPAN` grant; ``n_faulted`` of them (seed-chosen)
    run a fault program from ``mix``: ``wild`` rogues are
    protocol-compliant masters whose jobs target the *next* tenant's
    grant (the region filter must contain them), ``hung`` rogues wedge
    their R channel (the watchdog must contain them), ``mixed``
    alternates.  Healthy tenants leave their watchdogs disarmed — the
    region filter is an independent guard — so fair-share queueing at
    scale can never false-trip them, and the horizon scales with the
    total enqueued work so the liveness oracle holds at every grid
    point.

    The ``churn`` axis ("none"/"revoke"/"regrant") composes live grant
    churn with the fault storm: the first healthy tenant becomes the
    victim of a scripted mid-burst revocation at ``churn_cycle`` (its
    plan is swapped for one long write so the quiesce provably lands
    mid-burst), and "regrant" hands the range to the last healthy
    tenant at commit.  ``"none"`` compiles byte-identically to the
    pre-churn grid, so pinned isolation-campaign digests are
    unaffected; churn storms additionally allow ``n_faulted`` = 0
    (pure-churn rows with no rogue at all).
    """
    n = a.get("n_domains", 8)
    churn = a.get("churn", "none")
    regrant = churn == "regrant"
    if churn == "none":
        n_faulted = max(1, min(a.get("n_faulted", 1), n - 1))  # >= 1 healthy
    else:
        # keep the victim, the beneficiary (regrant only), and at least
        # one uninvolved bystander healthy
        healthy_floor = 3 if regrant else 2
        n_faulted = max(0, min(a.get("n_faulted", 1), n - healthy_floor))
    mix = a.get("mix", "wild")
    job_bytes = a.get("job_bytes", 512)
    rng = random.Random(a.get("seed", 0))
    faulted = sorted(rng.sample(range(n), n_faulted))
    modes: Dict[int, str] = {}
    for pos, index in enumerate(faulted):
        if mix == "wild":
            modes[index] = "wild_addr"
        elif mix == "hung":
            modes[index] = "hung_r"
        else:
            modes[index] = "wild_addr" if pos % 2 == 0 else "hung_r"
    span = _ISOLATION_SPAN
    churn_ops: Optional[tuple] = None
    victim = None
    if churn != "none":
        healthy = [i for i in range(n) if i not in modes]
        victim = healthy[0]
        beneficiary = healthy[-1] if regrant else -1
        churn_ops = ((a.get("churn_cycle", 64), victim, beneficiary),)
    plans: List[PortPlan] = []
    for index in range(n):
        base = index * span
        mode = modes.get(index)
        if index == victim:
            # one long write (>= 2 KiB = 128 beats) so the victim is
            # still streaming when the revocation quiesces its port
            plans.append(PortPlan(
                jobs=(("write", base, max(4 * job_bytes, 2048)),)))
        elif mode == "wild_addr":
            target = ((index + 1) % n) * span  # the neighbour's grant
            plans.append(PortPlan(
                jobs=(("read", target, max(job_bytes, 256)),),
                fault=MasterFault(mode="wild_addr")))
        elif mode == "hung_r":
            plans.append(PortPlan(
                # a hung read only wedges (and trips the watchdog) when
                # the beats left after the hang overflow the 32-deep
                # eFIFO data queue; 1 KiB = 64 beats guarantees it
                jobs=(("read", base, max(job_bytes, 1024)),),
                timeout=a.get("timeout", 400),
                fault=MasterFault(mode="hung_r",
                                  hang_after_beats=a.get("hang", 8),
                                  persistent=a.get("persistent", True))))
        else:
            plans.append(PortPlan(jobs=(
                ("read", base, job_bytes),
                ("write", base + span // 2, job_bytes))))
    total_beats = n * 2 * job_bytes // 16
    horizon = a.get("horizon", 6_000 + 6 * total_beats)
    if churn_ops is not None and "horizon" not in a:
        # the victim's long write and the beneficiary's post-commit
        # write + readback add work the legacy formula never counted
        horizon += 6 * (max(4 * job_bytes, 2048) // 16) + 2_048
    return Scenario(family="flat", ports=tuple(plans),
                    grants=tuple((i * span, span) for i in range(n)),
                    equal_shares=a.get("equal_shares", False),
                    period=a.get("period", 2048),
                    horizon=horizon,
                    settle=512, churn=churn_ops)


def compile_throughput(a: dict) -> Scenario:
    """Deliberately tiny scenarios for the campaign-throughput bench.

    Two wide injective axes (``slot`` picks the address window, ``size``
    the transfer) so a pairwise grid stays >= the product of their
    lengths and never collapses under deduplication.  The horizon scales
    with the total enqueued work (copies move their bytes twice) so the
    liveness oracle holds at every grid point while the scenarios stay
    as small as their workload allows.
    """
    slot = a["slot"]
    nbytes = a["size"]
    kind = a.get("kind", "read")
    n_ports = a.get("n_ports", 2)
    ports = tuple(
        PortPlan(jobs=((kind, _address(i, offset=slot * 0x2000), nbytes),))
        for i in range(n_ports))
    beats = n_ports * (nbytes * (2 if kind == "copy" else 1)) // 16
    return Scenario(family="flat", ports=ports,
                    horizon=a.get("horizon", 1_024 + 3 * beats),
                    settle=64)


# ----------------------------------------------------------------------
# the named grid registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GridSpec:
    """One named, ready-to-run scenario grid."""

    name: str
    description: str
    axes: Mapping[str, tuple]
    compile: Callable[[dict], Scenario]
    default_mode: str = "pairwise"
    #: oracle families the campaign should run on this grid ("isolation"
    #: is a no-op on untenanted scenarios, so it rides along for free)
    checks: Tuple[str, ...] = DEFAULT_CHECKS

    def space(self, mode: Optional[str] = None, seed: int = 0,
              samples: int = 64) -> ParamSpace:
        return ParamSpace(self.axes, mode=mode or self.default_mode,
                          samples=samples, seed=seed)

    def scenarios(self, mode: Optional[str] = None, seed: int = 0,
                  samples: int = 64, limit: Optional[int] = None,
                  horizon: Optional[int] = None,
                  dedupe: bool = True) -> List[Scenario]:
        """Compile the grid, optionally overriding every horizon."""
        out: List[Scenario] = []
        seen = set()
        for assignment in self.space(mode=mode, seed=seed,
                                     samples=samples):
            scenario = self.compile(assignment)
            if horizon is not None:
                scenario = replace(scenario, horizon=horizon)
            if dedupe:
                key = scenario.to_json()
                if key in seen:
                    continue
                seen.add(key)
            out.append(scenario)
            if limit is not None and len(out) >= limit:
                break
        return out


GRIDS: Dict[str, GridSpec] = {}


def _register(spec: GridSpec) -> GridSpec:
    GRIDS[spec.name] = spec
    return spec


RESERVATION_GRID = _register(GridSpec(
    name="reservation",
    description="reservation-period sweep: per-port shares x periods on "
                "greedy traffic (liveness is vacuous on saturating "
                "ports — the oracle skips them)",
    axes={
        "share0": (0.0, 0.1, 0.25, 0.33, 0.5, 0.66, 0.75, 0.9),
        "period": (512, 1024, 2048, 4096),
        "job_bytes": (4096, 8192, 16384),
    },
    compile=compile_reservation,
    default_mode="full",
))

CASCADE_GRID = _register(GridSpec(
    name="cascade",
    description="cascade chains beyond the paper's two levels, with and "
                "without one rogue master",
    axes={
        "depth": (2, 3, 4),
        "n_ports": (3, 4, 5),
        "program": ("none", "hung_r", "withheld_w", "illegal_burst"),
        "rogue": (0, 1, 2),
        "timeout": (250, 300, 400, 500, 650),
        "hang": (0, 8, 24),
        "job_bytes": (512, 1024, 2048),
        "equal_shares": (False, True),
    },
    compile=compile_cascade,
))

FABRIC_GRID = _register(GridSpec(
    name="fabric",
    description="interconnect fabrics: pure HyperConnect, baseline "
                "SmartConnect, and mixed HC+SC on the multi-port memory",
    axes={
        "family": ("flat", "multiport"),
        "fabric": ("hyperconnect", "smartconnect", "mixed"),
        "n_ports": (2, 3, 4),
        "kind": ("read", "write", "copy"),
        "job_bytes": (256, 512, 1024, 4096),
        "equal_shares": (False, True),
    },
    compile=compile_fabric,
))

FAULTS_GRID = _register(GridSpec(
    name="faults",
    description="fault-injection knobs: rogue-master modes and memory "
                "fault kinds over the in-order DRAM families",
    axes={
        "family": ("flat", "cascade"),
        "program": ("none", "hung_r", "withheld_w", "illegal_burst",
                    "mem:dead", "mem:freeze", "mem:stall", "mem:error"),
        "n_ports": (2, 3, 4),
        "rogue": (0, 1),
        "timeout": (300, 400, 500),
        "hang": (0, 8, 24),
        "seed": (1, 7, 13, 29, 43, 57),
        "dead_after_beats": (0, 32, 96),
        "persistent": (False, True),
        "equal_shares": (False, True),
        "job_bytes": (512, 1024, 2048),
    },
    compile=compile_faults,
))

ISOLATION_GRID = _register(GridSpec(
    name="isolation",
    description="many-domain tenant isolation: 8-64 tenant domains with "
                "disjoint stage-2 grants, seed-chosen fault storms "
                "(wild-address and hung rogues), and healthy-tenant "
                "leakage/degradation oracles",
    axes={
        "n_domains": (8, 16, 32, 64),
        "n_faulted": (1, 2, 4, 8),
        "mix": ("wild", "hung", "mixed"),
        "seed": (3, 11, 27),
        "job_bytes": (256, 512),
        "equal_shares": (False, True),
        "persistent": (False, True),
    },
    compile=compile_isolation,
))

CHURN_GRID = _register(GridSpec(
    name="churn",
    description="live tenant churn: mid-burst grant revocation and "
                "re-granting under concurrent fault storms, proven by "
                "the stale-window isolation oracle (no beat through a "
                "torn-down window; re-granted ranges reused in-run)",
    axes={
        "n_domains": (4, 8, 16),
        "n_faulted": (0, 1, 2),
        "mix": ("wild", "hung"),
        "churn": ("revoke", "regrant"),
        "churn_cycle": (32, 64, 128),
        "seed": (3, 11),
        "job_bytes": (256, 512),
        "equal_shares": (False, True),
    },
    compile=compile_isolation,
))

THROUGHPUT_GRID = _register(GridSpec(
    name="throughput",
    description="tiny flat scenarios for the campaign-throughput "
                "benchmark (pairwise >= 500 scenarios)",
    axes={
        "slot": tuple(range(24)),
        "size": tuple(256 * k for k in range(1, 25)),
        "kind": ("read", "write", "copy"),
        "n_ports": (2, 3),
    },
    compile=compile_throughput,
    checks=("equivalence", "liveness", "protocol"),
))

#: composite grids: a name expands to several member grids, stacked and
#: deduplicated in order (the CI campaign-smoke job runs "smoke"; the
#: CI tlm-smoke job runs "tlm")
COMPOSITES: Dict[str, Tuple[str, ...]] = {
    "smoke": ("faults", "cascade", "fabric", "reservation"),
    "tlm": ("faults", "churn", "reservation"),
}

#: composite-level check overrides: by default a composite asserts the
#: *intersection* of its members' checks; entries here replace that.
#: The "tlm" composite adds the opt-in tlm oracle on top of the full
#: default families — fault and churn scenarios must demote to
#: bit-identical execution, steady reservation scenarios must
#: fast-forward within the analytic bounds.
COMPOSITE_CHECKS: Dict[str, Tuple[str, ...]] = {
    "tlm": ALL_CHECKS,
}


def grid_names() -> List[str]:
    """Every runnable grid name (simple + composite), sorted."""
    return sorted(list(GRIDS) + list(COMPOSITES))


def grid_scenarios(name: str, mode: Optional[str] = None, seed: int = 0,
                   samples: int = 64, limit: Optional[int] = None,
                   horizon: Optional[int] = None
                   ) -> Tuple[List[Scenario], Tuple[str, ...]]:
    """Resolve a grid name into (scenarios, oracle checks).

    Composite names concatenate their member grids and deduplicate
    compiled scenarios across them; the checks are the intersection of
    the members' check tuples (a composite may only assert what every
    member grid supports) unless :data:`COMPOSITE_CHECKS` overrides
    them (the "tlm" composite opts into the tlm oracle this way).
    """
    if name in COMPOSITES:
        members = [GRIDS[member] for member in COMPOSITES[name]]
        checks = COMPOSITE_CHECKS.get(name) or tuple(
            c for c in GRIDS[members[0].name].checks
            if all(c in m.checks for m in members))
        scenarios: List[Scenario] = []
        seen = set()
        for member in members:
            for scenario in member.scenarios(mode=mode, seed=seed,
                                             samples=samples,
                                             horizon=horizon):
                key = scenario.to_json()
                if key in seen:
                    continue
                seen.add(key)
                scenarios.append(scenario)
                if limit is not None and len(scenarios) >= limit:
                    return scenarios, checks
        return scenarios, checks
    if name not in GRIDS:
        raise KeyError(
            f"unknown grid {name!r}; choose from {grid_names()}")
    spec = GRIDS[name]
    return (spec.scenarios(mode=mode, seed=seed, samples=samples,
                           limit=limit, horizon=horizon), spec.checks)
