"""``repro.verify`` — property-based fault-campaign verification.

The subsystem that scales PR 2's five hand-seeded fault scenarios out to
randomized campaigns (ROADMAP: *fault-campaign scale-out*): pure-data
:class:`Scenario` descriptions, a harness that builds any of four
topology families from them, oracle families (liveness, AXI protocol,
fast-vs-reference kernel equivalence, analytic containment bound,
multi-tenant isolation, and the opt-in TLM fast-forward oracle), and a
replayable counterexample corpus.

Campaigns are the scale-out unit: :mod:`repro.verify.paramspace`
compiles declarative axis grids into scenario lists and
:mod:`repro.verify.campaign` streams them across worker processes,
aggregating verdicts into JSON-lines results (``python -m repro
campaign``).

Hypothesis strategies intentionally live in :mod:`repro.verify.
strategies` and are **not** imported here — the runtime package stays
import-clean without the test dependency.
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    campaign_digest,
    evaluate_record,
    load_results,
    run_campaign,
    scenario_id,
    write_results,
)
from .corpus import (
    CorpusEntry,
    add_entry,
    load_corpus,
    replay_entry,
    save_corpus,
)
from .paramspace import (
    COMPOSITES,
    GRIDS,
    GridSpec,
    ParamSpace,
    grid_names,
    grid_scenarios,
)
from .harness import (
    RECOVERY_POLICY,
    RunResult,
    Station,
    System,
    build_system,
    run_scenario,
    run_system,
)
from .oracles import (
    ALL_CHECKS,
    DEFAULT_CHECKS,
    OracleViolation,
    check_containment_bound,
    check_equivalence,
    check_isolation,
    check_liveness,
    check_protocol,
    check_scenario,
    check_tlm,
    containment_bound_for,
    dump_falsifying_example,
    equivalence_label,
    evaluate_scenario,
    fingerprint_digest,
    isolation_bound_for,
    scenario_path_digests,
)
from .scenario import (
    FABRICS,
    FAMILIES,
    JOB_KINDS,
    MASTER_FAULTS,
    MEMORY_FAULT_FAMILIES,
    MEMORY_FAULTS,
    MasterFault,
    MemoryFault,
    PortPlan,
    Scenario,
    canonical_json,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "campaign_digest",
    "evaluate_record",
    "load_results",
    "run_campaign",
    "scenario_id",
    "write_results",
    "COMPOSITES",
    "GRIDS",
    "GridSpec",
    "ParamSpace",
    "grid_names",
    "grid_scenarios",
    "CorpusEntry",
    "add_entry",
    "load_corpus",
    "replay_entry",
    "save_corpus",
    "RECOVERY_POLICY",
    "RunResult",
    "Station",
    "System",
    "build_system",
    "run_scenario",
    "run_system",
    "ALL_CHECKS",
    "DEFAULT_CHECKS",
    "OracleViolation",
    "check_containment_bound",
    "check_equivalence",
    "check_isolation",
    "check_liveness",
    "check_protocol",
    "check_scenario",
    "check_tlm",
    "containment_bound_for",
    "dump_falsifying_example",
    "evaluate_scenario",
    "equivalence_label",
    "fingerprint_digest",
    "scenario_path_digests",
    "isolation_bound_for",
    "FABRICS",
    "FAMILIES",
    "JOB_KINDS",
    "MASTER_FAULTS",
    "MEMORY_FAULT_FAMILIES",
    "MEMORY_FAULTS",
    "MasterFault",
    "MemoryFault",
    "PortPlan",
    "Scenario",
    "canonical_json",
]
