"""``repro.verify`` — property-based fault-campaign verification.

The subsystem that scales PR 2's five hand-seeded fault scenarios out to
randomized campaigns (ROADMAP: *fault-campaign scale-out*): pure-data
:class:`Scenario` descriptions, a harness that builds any of four
topology families from them, oracle families (liveness, AXI protocol,
fast-vs-reference kernel equivalence, analytic containment bound), and a
replayable counterexample corpus.

Hypothesis strategies intentionally live in :mod:`repro.verify.
strategies` and are **not** imported here — the runtime package stays
import-clean without the test dependency.
"""

from .corpus import (
    CorpusEntry,
    add_entry,
    load_corpus,
    replay_entry,
    save_corpus,
)
from .harness import (
    RECOVERY_POLICY,
    RunResult,
    Station,
    System,
    build_system,
    run_scenario,
    run_system,
)
from .oracles import (
    OracleViolation,
    check_containment_bound,
    check_equivalence,
    check_liveness,
    check_protocol,
    check_scenario,
    containment_bound_for,
    dump_falsifying_example,
    fingerprint_digest,
)
from .scenario import (
    FAMILIES,
    MASTER_FAULTS,
    MEMORY_FAULT_FAMILIES,
    MEMORY_FAULTS,
    MasterFault,
    MemoryFault,
    PortPlan,
    Scenario,
    canonical_json,
)

__all__ = [
    "CorpusEntry",
    "add_entry",
    "load_corpus",
    "replay_entry",
    "save_corpus",
    "RECOVERY_POLICY",
    "RunResult",
    "Station",
    "System",
    "build_system",
    "run_scenario",
    "run_system",
    "OracleViolation",
    "check_containment_bound",
    "check_equivalence",
    "check_liveness",
    "check_protocol",
    "check_scenario",
    "containment_bound_for",
    "dump_falsifying_example",
    "fingerprint_digest",
    "FAMILIES",
    "MASTER_FAULTS",
    "MEMORY_FAULT_FAMILIES",
    "MEMORY_FAULTS",
    "MasterFault",
    "MemoryFault",
    "PortPlan",
    "Scenario",
    "canonical_json",
]
