"""Build and run :class:`~repro.verify.scenario.Scenario` objects.

One scenario runs as a fixed-length simulation (``scenario.horizon`` +
``scenario.settle`` cycles) so the reference and fast kernel paths walk
exactly the same wall of cycles; all oracle checks happen *after* the
run on the collected :class:`RunResult`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..axi import LinkChecker
from ..axi.port import AxiLink
from ..hyperconnect import HyperConnect, InOrderAdapter
from ..hypervisor import Hypervisor, RecoveryPolicy
from ..masters import AxiDma, FaultInjectingMaster, GreedyTrafficGenerator
from ..memory import (
    DramTiming,
    FaultInjectingMemory,
    MemoryStore,
    MemorySubsystem,
    MultiPortMemorySubsystem,
    OutOfOrderMemory,
)
from ..platforms import ZCU102
from ..sim import Simulator
from ..smartconnect import SmartConnect, smartconnect_master_link
from .scenario import PortPlan, Scenario

#: short retry leash so unrecoverable faults give up inside the horizon
RECOVERY_POLICY = RecoveryPolicy(max_retries=2, backoff_cycles=256,
                                 backoff_factor=2)
#: copy jobs write this far above their read address
COPY_DEST_OFFSET = 0x80_0000
#: bytes the beneficiary writes (then reads back) onto a re-granted
#: range right after a revocation commits
CHURN_WRITE_BYTES = 512
#: reduced-latency timing for the OOO family (row model armed so the
#: controller actually reorders)
OOO_TIMING = DramTiming(read_latency=12, write_latency=8, resp_latency=2,
                        row_miss_penalty=24)


@dataclass
class Station:
    """One leaf port of the built system: plan + live components."""

    plan_index: int
    plan: PortPlan
    engine: object
    hyperconnect: object          # HyperConnect or SmartConnect
    port_index: int
    checker: Optional[LinkChecker]
    jobs: List[object] = field(default_factory=list)

    @property
    def supervisor(self):
        """The port's Transaction Supervisor (None on SmartConnect)."""
        supervisors = getattr(self.hyperconnect, "supervisors", None)
        if supervisors is None:
            return None
        return supervisors[self.port_index]


@dataclass
class System:
    """Everything :func:`build_system` wired together."""

    sim: Simulator
    scenario: Scenario
    stations: List[Station]
    hyperconnects: List[HyperConnect]
    hypervisors: List[Hypervisor]
    memory: object
    memory_timing: DramTiming
    #: functional backing store (tenanted scenarios only; None otherwise)
    store: Optional[MemoryStore] = None


@dataclass(frozen=True)
class RunResult:
    """Deterministic observables of one finished scenario run."""

    fingerprint: tuple
    #: per-plan-index engine observables
    engines: Tuple[dict, ...]
    #: per-plan-index strict protocol violations (None = no checker)
    violations: Tuple[Optional[Tuple[str, ...]], ...]
    #: per-plan-index watchdog/protocol trip counts
    trips: Tuple[int, ...]
    #: latest job-completion cycle over non-rogue engines (None when no
    #: healthy job completed)
    healthy_done: Optional[int]
    now: int
    #: kernel event log (fault/recovery events), already dict-rendered
    events: Tuple[dict, ...] = ()
    #: per-plan-index latest job-completion cycle (None = none finished)
    done_cycles: Tuple[Optional[int], ...] = ()
    #: per-churn-op end-state snapshots (pure primitives, in scenario
    #: op order; empty unless the scenario scripts churn) — the
    #: stale-window oracle's raw material
    churn_probes: Tuple[dict, ...] = ()
    #: committed TLM fast-forward epochs (0 on non-TLM runs and on TLM
    #: runs that declined every window; deliberately outside the
    #: fingerprint so corpus digests stay pinned)
    tlm_epochs: int = 0


def _make_memory(sim: Simulator, scenario: Scenario, link: AxiLink,
                 timing: DramTiming, store: Optional[MemoryStore] = None):
    fault = scenario.memory
    if fault.kind == "none":
        return MemorySubsystem(sim, "mem", link, timing=timing,
                               store=store)
    kwargs: Dict[str, object] = {"seed": fault.seed}
    if fault.kind == "dead":
        kwargs["dead_after_beats"] = fault.dead_after_beats
    elif fault.kind == "freeze":
        kwargs["freeze_window"] = (fault.freeze_start,
                                   fault.freeze_start + fault.freeze_cycles)
    elif fault.kind == "stall":
        kwargs["stall_rate"] = fault.stall_rate
        kwargs["stall_cycles"] = fault.stall_cycles
    elif fault.kind == "error":
        kwargs["error_rate"] = fault.error_rate
    return FaultInjectingMemory(sim, "mem", link, timing=timing, **kwargs)


def _make_engine(sim: Simulator, name: str, plan: PortPlan, link):
    if plan.is_rogue:
        if plan.fault.mode == "wild_addr":
            # protocol-compliant engine; the misbehaviour is entirely in
            # the job addresses (outside the tenant's grant), which the
            # region filter contains at ingest
            return AxiDma(sim, name, link)
        return FaultInjectingMaster(
            sim, name, link, fault_mode=plan.fault.mode,
            hang_after_beats=plan.fault.hang_after_beats,
            persistent=plan.fault.persistent)
    if plan.is_greedy:
        __, window_base, job_bytes = plan.jobs[0]
        return GreedyTrafficGenerator(sim, name, link,
                                      job_bytes=job_bytes,
                                      window_base=window_base, depth=4)
    return AxiDma(sim, name, link)


def _arm(hypervisor: Hypervisor, scenario: Scenario,
         stations: List[Station]) -> None:
    hc = hypervisor.hyperconnect
    for station in stations:
        if station.hyperconnect is hc and station.plan.timeout is not None:
            hypervisor.driver.set_watchdog_timeout(
                station.port_index, station.plan.timeout)
    if scenario.equal_shares:
        share = 1.0 / hc.n_ports
        hypervisor.driver.set_bandwidth_shares(
            {port: share for port in range(hc.n_ports)},
            period=scenario.period)
    elif scenario.shares is not None:
        # flat family only: ports map 1:1 onto the single HyperConnect.
        # 0.0 decouples the port outright; 1.0 leaves it unreserved.
        for port, share in enumerate(scenario.shares):
            if share == 0.0:
                hypervisor.driver.decouple(port)
        reserved = {port: share
                    for port, share in enumerate(scenario.shares)
                    if 0.0 < share < 1.0}
        if reserved:
            hypervisor.driver.set_bandwidth_shares(
                reserved, period=scenario.period)
    hypervisor.default_recovery_policy = RECOVERY_POLICY
    hypervisor.enable_fault_recovery()


def _arm_tenants(hypervisor: Hypervisor, scenario: Scenario,
                 stations: List[Station],
                 store: MemoryStore) -> None:
    """Stamp one tenant domain per port with its scenario-pinned grant.

    Each domain gets a stage-2 identity window over the shared store,
    a control-plane access grant, and the port's data-plane region
    filter — so an out-of-grant access (``wild_addr`` rogue) trips
    containment at the HyperConnect instead of reaching memory.
    """
    hypervisor.attach_memory(store)
    hc = hypervisor.hyperconnect
    for st in stations:
        if st.hyperconnect is not hc:
            continue
        base, size = scenario.grants[st.plan_index]
        domain = hypervisor.create_domain(f"tenant{st.plan_index}")
        domain.ports.append(st.port_index)
        hypervisor.adopt_region(domain.name, base, size)


def churn_pattern(seed: int, nbytes: int) -> bytes:
    """Deterministic payload for churn writes (shared with the oracle).

    Payloads only carry data — the DRAM model's timing is
    payload-independent — so adding them never perturbs the cycle
    schedule; they exist so the stale-window check can prove which
    tenant's bytes actually landed in the contested range.
    """
    return bytes((seed * 37 + i * 131 + 11) & 0xFF
                 for i in range(nbytes))


def _arm_churn(hypervisor: Hypervisor, scenario: Scenario,
               stations: List[Station]) -> None:
    """Schedule the scenario's scripted revocations on the controller.

    Each op revokes the victim tenant's grant at its cycle; on commit
    the beneficiary (when any) immediately writes a known pattern into
    the re-granted range and reads it back, exercising the full
    revoke -> coalesce -> re-grant -> reuse path inside one run.
    """
    hypervisor.enable_revocation()
    for cycle, victim, beneficiary in scenario.churn:
        base, size = scenario.grants[victim]
        region = next(r for r in hypervisor.domain(f"tenant{victim}").regions
                      if r.base == base)
        regrant_to = f"tenant{beneficiary}" if beneficiary >= 0 else None
        beneficiary_station = (stations[beneficiary]
                               if beneficiary >= 0 else None)

        def on_commit(commit_cycle, order, st=beneficiary_station,
                      base=base, size=size, beneficiary=beneficiary):
            if st is None:
                return
            nbytes = min(CHURN_WRITE_BYTES, size)
            st.jobs.append(st.engine.enqueue_write(
                base, nbytes, data=churn_pattern(beneficiary, nbytes)))
            st.jobs.append(st.engine.enqueue_read(base, nbytes))

        hypervisor.revoke_memory(f"tenant{victim}", region,
                                 regrant_to=regrant_to, at=cycle,
                                 on_commit=on_commit)


def build_system(scenario: Scenario, fast: bool,
                 parallel: int = 0,
                 parallel_backend: str = "auto",
                 tlm: bool = False) -> System:
    """Instantiate the scenario's topology family on a fresh simulator.

    ``parallel`` is the sharded-engine worker count (0 = serial) and
    ``parallel_backend`` selects its engine ("auto" / "inline" /
    "threads" / "processes"); together they form the candidate legs of
    the kernel-equivalence oracle, exercised against the reference and
    serial-fast legs by ``check_equivalence``.  ``tlm`` enables the
    transaction-level fast-forward mode, the candidate leg of the
    ``tlm`` oracle (:func:`~repro.verify.oracles.check_tlm`).
    """
    sim = Simulator("verify", clock_hz=ZCU102.pl_clock_hz, fast=fast,
                    parallel=parallel, parallel_backend=parallel_backend,
                    tlm=tlm)
    timing = OOO_TIMING if scenario.family == "ooo" else ZCU102.dram
    plans = scenario.ports
    stations: List[Station] = []
    hyperconnects: List[HyperConnect] = []
    store: Optional[MemoryStore] = None

    def station(index: int, hc: HyperConnect, port: int) -> None:
        plan = plans[index]
        link = hc.port(port)
        engine = _make_engine(sim, f"ha{index}", plan, link)
        checker = None if plan.is_rogue else LinkChecker(link)
        stations.append(Station(index, plan, engine, hc, port, checker))

    if scenario.family == "cascade":
        # depth-d chain: each level before the innermost has 2 ports —
        # port 0 cascades inward, port 1 hosts one leaf — and the
        # innermost level hosts every remaining plan.  Depth 2 keeps the
        # historic "outer"/"inner" naming (corpus digests pin it).
        depth = scenario.cascade_depth
        link = AxiLink(sim, "m", data_bytes=16)
        outer = HyperConnect(sim, "outer", 2, link)
        memory = _make_memory(sim, scenario, link, timing)
        hyperconnects = [outer]
        for level in range(1, depth):
            innermost = level == depth - 1
            name = "inner" if innermost else f"mid{level}"
            n_ports = len(plans) - (depth - 1) if innermost else 2
            hyperconnects.append(HyperConnect(
                sim, name, n_ports, hyperconnects[-1].port(0)))
        station(0, outer, 1)
        for level in range(1, depth - 1):
            station(level, hyperconnects[level], 1)
        inner = hyperconnects[-1]
        for index in range(depth - 1, len(plans)):
            station(index, inner, index - (depth - 1))
    elif scenario.family == "multiport":
        hp0 = AxiLink(sim, "hp0", data_bytes=16)
        if scenario.fabric == "mixed":
            hp1 = smartconnect_master_link(sim, "hp1", data_bytes=16)
        else:
            hp1 = AxiLink(sim, "hp1", data_bytes=16)
        hc0 = HyperConnect(sim, "hc0", len(plans) - 1, hp0)
        hc1 = (SmartConnect(sim, "hc1", 1, hp1)
               if scenario.fabric == "mixed"
               else HyperConnect(sim, "hc1", 1, hp1))
        memory = MultiPortMemorySubsystem(sim, "mem", [hp0, hp1],
                                          timing=timing)
        hyperconnects = [hc0, hc1]
        for index in range(len(plans) - 1):
            station(index, hc0, index)
        station(len(plans) - 1, hc1, 0)
    else:  # flat / ooo share the single-interconnect layout
        if scenario.fabric == "smartconnect":
            link = smartconnect_master_link(sim, "m", data_bytes=16)
            hc = SmartConnect(sim, "hc", len(plans), link)
        else:
            link = AxiLink(sim, "m", data_bytes=16)
            hc = HyperConnect(sim, "hc", len(plans), link)
        if scenario.family == "ooo":
            down = AxiLink(sim, "down", data_bytes=16)
            InOrderAdapter(sim, "adapter", link, down)
            memory = OutOfOrderMemory(sim, "mem", down, timing=timing,
                                      lookahead=8)
        else:
            if scenario.is_tenanted:
                store = MemoryStore()  # functional data for tenants
            memory = _make_memory(sim, scenario, link, timing,
                                  store=store)
        hyperconnects = [hc]
        for index in range(len(plans)):
            station(index, hc, index)

    hypervisors = []
    for hc in hyperconnects:
        if not isinstance(hc, HyperConnect):
            continue               # SmartConnect has no hypervisor hooks
        hypervisor = Hypervisor(hc)
        _arm(hypervisor, scenario, stations)
        hypervisors.append(hypervisor)
    if scenario.is_tenanted:
        _arm_tenants(hypervisors[0], scenario, stations, store)
        if scenario.churn is not None:
            _arm_churn(hypervisors[0], scenario, stations)

    for index, plan in enumerate(plans):
        st = stations[index]
        for kind, address, nbytes in plan.jobs:
            if kind == "greedy":
                continue           # the engine self-issues its traffic
            if kind == "read":
                st.jobs.append(st.engine.enqueue_read(address, nbytes))
            elif kind == "write":
                # churn runs carry payload-bearing healthy writes so the
                # stale-window oracle can inspect what landed in memory
                # (payloads are timing-neutral; see churn_pattern)
                data = None
                if scenario.churn is not None and not plan.is_rogue:
                    data = churn_pattern(100 + index, nbytes)
                st.jobs.append(st.engine.enqueue_write(address, nbytes,
                                                       data=data))
            elif kind == "copy":
                st.jobs.append(st.engine.enqueue_copy(
                    address, address + COPY_DEST_OFFSET, nbytes))
            else:
                raise ValueError(f"unknown job kind {kind!r}")

    return System(sim, scenario, stations, hyperconnects, hypervisors,
                  memory, timing, store=store)


def _engine_observables(station: Station) -> dict:
    engine = station.engine
    return {
        "name": engine.name,
        "bytes_read": engine.bytes_read,
        "bytes_written": engine.bytes_written,
        "jobs_completed": len(engine.jobs_completed),
        "jobs_enqueued": len(station.jobs),
        "error_responses": engine.error_responses,
        "outstanding": engine.outstanding,
        "hung": bool(getattr(engine, "is_hung", False)),
    }


def _churn_probe(system: System, op: Tuple[int, int, int]) -> dict:
    """End-state snapshot of one churn op (pure primitives only).

    Folded into the fingerprint for churn scenarios, so the equivalence
    oracle forces the revocation state machine — not just the traffic —
    to land bit-identically on every kernel path.
    """
    op_cycle, victim, beneficiary = op
    base, size = system.scenario.grants[victim]
    hypervisor = system.hypervisors[0]
    victim_station = system.stations[victim]
    supervisor = victim_station.supervisor
    stats = supervisor.fault_stats
    victim_table = hypervisor.stage2(f"tenant{victim}")
    beneficiary_window = False
    if beneficiary >= 0:
        beneficiary_window = (hypervisor.stage2(f"tenant{beneficiary}")
                              .window_for_host(base) is not None)
    return {
        "op_cycle": op_cycle,
        "victim": victim,
        "beneficiary": beneficiary,
        "base": base,
        "size": size,
        "victim_revocations": supervisor.revocations,
        "victim_outstanding": (supervisor.outstanding_reads
                               + supervisor.outstanding_writes),
        "victim_coupled": bool(
            hypervisor.driver.is_coupled(victim_station.port_index)),
        "victim_window": victim_table.window_for_host(base) is not None,
        "victim_regions": len(hypervisor.domain(f"tenant{victim}").regions),
        "victim_synth_beats": stats.synth_r_beats + stats.synth_b_beats,
        "epoch": hypervisor.driver.region_epoch(victim_station.port_index),
        "beneficiary_window": beneficiary_window,
        "store_digest": hashlib.sha256(
            system.store.read(base, size)).hexdigest(),
    }


def run_system(system: System) -> RunResult:
    """Run the fixed horizon and collect the deterministic observables."""
    scenario = system.scenario
    sim = system.sim
    sim.run(scenario.horizon)
    sim.run(scenario.settle)
    engines = tuple(_engine_observables(st) for st in system.stations)
    violations = tuple(
        tuple(str(v) for v in st.checker.violations)
        if st.checker is not None else None
        for st in system.stations)
    trips = tuple(
        (st.supervisor.fault_stats.watchdog_trips
         + st.supervisor.fault_stats.protocol_trips)
        if st.supervisor is not None else 0
        for st in system.stations)
    done_cycles: List[Optional[int]] = []
    for st in system.stations:
        done: Optional[int] = None
        for job in st.jobs:
            if job.completed is not None:
                if done is None or job.completed > done:
                    done = job.completed
        done_cycles.append(done)
    healthy_done: Optional[int] = None
    for st, done in zip(system.stations, done_cycles):
        if st.plan.is_rogue or done is None:
            continue
        if healthy_done is None or done > healthy_done:
            healthy_done = done
    events = tuple(sim.events.as_dicts())
    fingerprint = (
        tuple(tuple(sorted(info.items())) for info in engines),
        tuple(tuple(sorted(d.items())) for d in events),
        tuple(tuple(sorted(st.supervisor.fault_stats.as_dict().items()))
              if st.supervisor is not None else ()
              for st in system.stations),
        sim.now,
    )
    churn_probes: Tuple[dict, ...] = ()
    if scenario.churn is not None:
        churn_probes = tuple(_churn_probe(system, op)
                             for op in scenario.churn)
        # churn-free scenarios keep their historic 4-element fingerprint
        # (corpus and golden campaign digests stay pinned)
        fingerprint = fingerprint + (
            tuple(tuple(sorted(p.items())) for p in churn_probes),)
    return RunResult(fingerprint=fingerprint, engines=engines,
                     violations=violations, trips=trips,
                     healthy_done=healthy_done, now=sim.now,
                     events=events, done_cycles=tuple(done_cycles),
                     churn_probes=churn_probes,
                     tlm_epochs=sim.skip_stats.tlm_epochs)


def run_scenario(scenario: Scenario, fast: bool,
                 parallel: int = 0,
                 parallel_backend: str = "auto",
                 tlm: bool = False) -> RunResult:
    """Convenience: build then run."""
    return run_system(build_system(scenario, fast, parallel=parallel,
                                   parallel_backend=parallel_backend,
                                   tlm=tlm))
