"""The checked-in counterexample corpus and its replay machinery.

Every scenario that ever falsified an oracle (plus the original five
hand-seeded campaign scenarios) lives in
``tests/data/fault_corpus.json`` together with the sha-256 digest of its
reference-run fingerprint.  The replay test re-runs each entry through
the full oracle stack and requires the digest to match **byte-for-byte**
— so a corpus entry simultaneously pins

* that the historic failure stays fixed (oracles pass),
* that the simulation's observable behaviour on that scenario has not
  drifted (digest identity), on both kernel paths (the equivalence
  oracle runs inside :func:`~repro.verify.oracles.check_scenario`).

Promotion workflow: take the ``falsified-*.json`` artifact a CI fuzz
failure uploaded, fix the defect, then append the scenario here via
:func:`add_entry` with the freshly computed digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from .harness import RunResult
from .oracles import check_scenario, fingerprint_digest
from .scenario import Scenario

CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable regression scenario."""

    name: str
    scenario: Scenario
    #: sha-256 of the reference run's fingerprint at check-in time
    digest: str


def load_corpus(path) -> List[CorpusEntry]:
    data = json.loads(Path(path).read_text())
    if data.get("version") != CORPUS_VERSION:
        raise ValueError(f"unsupported corpus version {data.get('version')}")
    return [
        CorpusEntry(name=entry["name"],
                    scenario=Scenario.from_dict(entry["scenario"]),
                    digest=entry["digest"])
        for entry in data["entries"]
    ]


def save_corpus(path, entries: List[CorpusEntry]) -> None:
    payload = {
        "version": CORPUS_VERSION,
        "entries": [
            {"name": entry.name,
             "scenario": entry.scenario.to_dict(),
             "digest": entry.digest}
            for entry in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def add_entry(path, name: str, scenario: Scenario) -> CorpusEntry:
    """Run the scenario, record its digest, and append it to the corpus."""
    result = check_scenario(scenario)
    entry = CorpusEntry(name=name, scenario=scenario,
                        digest=fingerprint_digest(result))
    entries = load_corpus(path) if Path(path).exists() else []
    if any(existing.name == name for existing in entries):
        raise ValueError(f"corpus already has an entry named {name!r}")
    entries.append(entry)
    save_corpus(path, entries)
    return entry


def replay_entry(entry: CorpusEntry) -> Tuple[RunResult, str]:
    """Re-run one corpus entry through every oracle; returns the
    reference result and its digest (callers assert digest identity)."""
    result = check_scenario(entry.scenario)
    return result, fingerprint_digest(result)


def run_corpus_campaign(path, workers: int = 0, kernel_parallel: int = 2):
    """Replay the whole corpus through the campaign runner.

    Returns ``(entries, CampaignResult)`` with records in corpus order;
    callers assert ``result.ok`` and per-record ``digest`` identity
    against each entry's checked-in digest.  This is the corpus replay
    (`tests/test_verify_corpus.py`) running on the same machinery as the
    large grid campaigns, so the runner itself is regression-covered by
    the corpus digests.
    """
    from .campaign import CampaignConfig, run_campaign

    entries = load_corpus(path)
    result = run_campaign(
        [entry.scenario for entry in entries], workers=workers,
        config=CampaignConfig(kernel_parallel=kernel_parallel))
    return entries, result
