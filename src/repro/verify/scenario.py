"""Declarative fault-campaign scenarios.

A :class:`Scenario` is a *pure-data* description of one randomized
verification run: the topology family, the per-port work and watchdog
programming, and at most one fault program (a misbehaving master **or** a
misbehaving memory).  Scenarios are deliberately JSON-serializable and
hashable-by-content so that

* hypothesis can shrink them (`repro.verify.strategies` builds them from
  primitive draws),
* falsified examples can be checked into the regression corpus
  (`tests/data/fault_corpus.json`) and replayed byte-identically,
* a scenario prints as something a human can re-run by hand.

The harness (:mod:`repro.verify.harness`) is the only code that turns a
scenario into live simulator components.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

#: supported topology families
FAMILIES = ("flat", "cascade", "ooo", "multiport")
#: interconnect fabrics: pure HyperConnect, pure SmartConnect (flat
#: only), or mixed — HyperConnect + SmartConnect side by side on the
#: multi-port memory subsystem
FABRICS = ("hyperconnect", "smartconnect", "mixed")
#: master misbehaviours (mirrors repro.masters.faulty.FAULT_MODES, plus
#: "wild_addr": a protocol-compliant master whose jobs target addresses
#: outside its tenant grant — only meaningful in tenanted scenarios,
#: where the HyperConnect's region filter contains it with DECERR)
MASTER_FAULTS = ("none", "hung_r", "withheld_w", "illegal_burst",
                 "wild_addr")
#: granularity of tenant grants (mirrors the region-filter registers)
GRANT_GRANULE = 4096
#: memory misbehaviours (mirrors FaultInjectingMemory's knobs)
MEMORY_FAULTS = ("none", "dead", "freeze", "stall", "error")
#: families served by the in-order DRAM model, where the fault-injecting
#: memory wrapper exists; OOO/multi-port memories have no faulty variant
MEMORY_FAULT_FAMILIES = ("flat", "cascade")
#: job kinds a PortPlan may carry; "greedy" turns the whole port into a
#: saturating traffic generator (window base + job size, no completion
#: accounting) for bandwidth-sweep campaigns
JOB_KINDS = ("read", "write", "copy", "greedy")


@dataclass(frozen=True)
class MasterFault:
    """One port's misbehaviour program (``mode="none"`` = compliant)."""

    mode: str = "none"
    hang_after_beats: int = 16
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MASTER_FAULTS:
            raise ValueError(f"unknown master fault mode {self.mode!r}")
        if self.hang_after_beats < 0:
            raise ValueError("hang_after_beats must be >= 0")


@dataclass(frozen=True)
class MemoryFault:
    """The memory subsystem's misbehaviour program."""

    kind: str = "none"
    dead_after_beats: int = 64
    freeze_start: int = 400
    freeze_cycles: int = 800
    stall_rate: float = 0.05
    stall_cycles: int = 20
    error_rate: float = 0.05
    seed: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MEMORY_FAULTS:
            raise ValueError(f"unknown memory fault kind {self.kind!r}")


@dataclass(frozen=True)
class PortPlan:
    """One leaf port: its workload, watchdog, and (optional) fault.

    ``jobs`` is a tuple of ``(kind, address, nbytes)`` with ``kind`` in
    ``read`` / ``write`` / ``copy`` (copies write to ``address +
    0x80_0000``).  ``timeout`` is the port's ``PORT_TIMEOUT`` programming
    (``None`` = disarmed).
    """

    jobs: Tuple[Tuple[str, int, int], ...] = ()
    timeout: Optional[int] = None
    fault: MasterFault = field(default_factory=MasterFault)

    def __post_init__(self) -> None:
        greedy = [job for job in self.jobs if job[0] == "greedy"]
        if greedy:
            if len(self.jobs) != 1:
                raise ValueError("a greedy port carries exactly one job "
                                 "(its window base and job size)")
            if self.fault.mode != "none":
                raise ValueError("greedy ports cannot carry a fault "
                                 "program")

    @property
    def is_rogue(self) -> bool:
        return self.fault.mode != "none"

    @property
    def is_greedy(self) -> bool:
        return bool(self.jobs) and self.jobs[0][0] == "greedy"


@dataclass(frozen=True)
class Scenario:
    """One randomized verification run, fully determined by its fields.

    Family layouts (see :func:`repro.verify.harness.build_system`):

    * ``flat`` — ``len(ports)`` ports on one HyperConnect over the
      in-order DRAM model;
    * ``cascade`` — ``ports[0]`` directly on the outer HyperConnect,
      ``ports[1:]`` on an inner HyperConnect cascaded into the outer's
      port 0 (requires >= 2 ports);
    * ``ooo`` — flat HyperConnect, but the memory is the out-of-order
      controller behind the in-order adapter;
    * ``multiport`` — ``ports[:-1]`` on one HyperConnect, ``ports[-1]``
      on a second, both into the multi-port memory subsystem (requires
      >= 2 ports).

    ``equal_shares`` arms the fig. 5-style symmetric bandwidth
    reservation with period ``period`` on every HyperConnect; ``shares``
    instead reserves explicit per-port fractions on a flat fabric (0.0
    decouples the port, 1.0 leaves it unreserved).  ``cascade_depth``
    deepens the cascade family beyond the paper's two levels: each extra
    level hosts one leaf port and forwards the rest inward.  ``fabric``
    swaps the interconnect: ``smartconnect`` builds the flat family on
    the baseline SmartConnect, ``mixed`` puts the multiport family's
    last port on a SmartConnect beside the HyperConnect.  At most one
    fault program may be active: either exactly one rogue
    :class:`PortPlan` or a non-``none`` :class:`MemoryFault`.
    """

    family: str
    ports: Tuple[PortPlan, ...]
    memory: MemoryFault = field(default_factory=MemoryFault)
    equal_shares: bool = False
    period: int = 2048
    horizon: int = 12_000
    settle: int = 256
    cascade_depth: int = 2
    fabric: str = "hyperconnect"
    shares: Optional[Tuple[float, ...]] = None
    #: per-port tenant grants ``(base, size)`` — non-None marks a
    #: *tenanted* scenario: one domain per port, disjoint stage-2
    #: grants, HyperConnect region filters armed, and (unlike the
    #: single-fault campaigns) any number of rogue tenants at once
    grants: Optional[Tuple[Tuple[int, int], ...]] = None
    #: scripted live revocations ``(cycle, victim, beneficiary)`` —
    #: at ``cycle`` the victim port's grant is revoked mid-burst
    #: (quiesce -> drain -> retarget -> coalesce) and, when
    #: ``beneficiary`` >= 0, immediately re-granted to that port's
    #: domain (``-1`` = revoke only).  Requires tenant grants; victims
    #: and beneficiaries must be distinct healthy (non-rogue,
    #: non-greedy) tenants, at most one revocation per victim
    churn: Optional[Tuple[Tuple[int, int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.fabric not in FABRICS:
            raise ValueError(f"unknown fabric {self.fabric!r}")
        if not self.ports:
            raise ValueError("a scenario needs at least one port")
        if self.family in ("cascade", "multiport") and len(self.ports) < 2:
            raise ValueError(f"{self.family} needs >= 2 ports")
        rogues = [p for p in self.ports if p.is_rogue]
        if self.grants is None:
            if len(rogues) > 1:
                raise ValueError("at most one rogue master per "
                                 "(untenanted) scenario")
            if any(p.fault.mode == "wild_addr" for p in self.ports):
                raise ValueError("wild_addr faults need tenant grants "
                                 "(nothing confines an untenanted port)")
        else:
            if self.family != "flat":
                raise ValueError("tenant grants only build the flat "
                                 "family")
            if self.fabric != "hyperconnect":
                raise ValueError("tenant grants need the hyperconnect "
                                 "fabric (region filters)")
            if self.memory.kind != "none":
                raise ValueError("tenanted scenarios model master-side "
                                 "faults only; drop the memory fault")
            if len(self.grants) != len(self.ports):
                raise ValueError("grants must name a (base, size) per "
                                 "port")
            spans = []
            for index, (base, size) in enumerate(self.grants):
                if base < 0 or size <= 0:
                    raise ValueError(
                        f"grant {index}: base must be >= 0 and size > 0")
                if base % GRANT_GRANULE or size % GRANT_GRANULE:
                    raise ValueError(
                        f"grant {index}: base/size must be multiples of "
                        f"0x{GRANT_GRANULE:x}")
                spans.append((base, base + size, index))
            spans.sort()
            for (b0, e0, i0), (b1, e1, i1) in zip(spans, spans[1:]):
                if b1 < e0:
                    raise ValueError(
                        f"grants {i0} and {i1} overlap "
                        f"([0x{b0:x},0x{e0:x}) vs [0x{b1:x},0x{e1:x}))")
        if self.churn is not None:
            if self.grants is None:
                raise ValueError("churn (live revocation) needs tenant "
                                 "grants to revoke")
            if not self.churn:
                raise ValueError("churn must be None or non-empty")
            victims = set()
            beneficiaries = set()
            for op_index, op in enumerate(self.churn):
                if len(op) != 3:
                    raise ValueError(
                        f"churn op {op_index}: expected (cycle, victim, "
                        f"beneficiary), got {op!r}")
                cycle, victim, beneficiary = op
                if not 1 <= cycle < self.horizon:
                    raise ValueError(
                        f"churn op {op_index}: cycle {cycle} outside "
                        f"[1, horizon)")
                if not 0 <= victim < len(self.ports):
                    raise ValueError(
                        f"churn op {op_index}: victim {victim} is not a "
                        "port index")
                if beneficiary != -1 and not 0 <= beneficiary < len(
                        self.ports):
                    raise ValueError(
                        f"churn op {op_index}: beneficiary {beneficiary} "
                        "must be -1 (revoke only) or a port index")
                if beneficiary == victim:
                    raise ValueError(
                        f"churn op {op_index}: a port cannot be granted "
                        "the region it is losing")
                if victim in victims:
                    raise ValueError(
                        f"churn op {op_index}: one revocation per victim "
                        "port")
                for role, index in (("victim", victim),
                                    ("beneficiary", beneficiary)):
                    if index == -1:
                        continue
                    plan = self.ports[index]
                    if plan.is_rogue:
                        raise ValueError(
                            f"churn op {op_index}: {role} {index} is a "
                            "rogue — revoking a faulted tenant is the "
                            "recovery ladder's job")
                    if plan.is_greedy:
                        raise ValueError(
                            f"churn op {op_index}: {role} {index} is a "
                            "greedy port (no grant-confined workload)")
                victims.add(victim)
                if beneficiary != -1:
                    beneficiaries.add(beneficiary)
            if victims & beneficiaries:
                raise ValueError("churn: a beneficiary cannot also be a "
                                 "victim")
        if rogues and self.memory.kind != "none":
            raise ValueError("one fault program per scenario: master "
                             "fault and memory fault are exclusive")
        if (self.memory.kind != "none"
                and self.family not in MEMORY_FAULT_FAMILIES):
            raise ValueError(
                f"memory faults need an in-order DRAM family "
                f"({MEMORY_FAULT_FAMILIES}); {self.family!r} has no "
                "fault-injecting memory variant")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        if self.cascade_depth < 2:
            raise ValueError("cascade_depth must be >= 2")
        if self.family != "cascade" and self.cascade_depth != 2:
            raise ValueError("cascade_depth only applies to the cascade "
                             "family")
        if self.family == "cascade" and len(self.ports) < self.cascade_depth:
            raise ValueError(
                f"a depth-{self.cascade_depth} cascade hosts one port per "
                f"outer level plus >= 1 at the innermost: needs >= "
                f"{self.cascade_depth} ports, got {len(self.ports)}")
        if self.fabric != "hyperconnect":
            if self.fabric == "smartconnect" and self.family != "flat":
                raise ValueError("the smartconnect fabric only builds the "
                                 "flat family")
            if self.fabric == "mixed" and self.family != "multiport":
                raise ValueError("the mixed fabric only builds the "
                                 "multiport family")
            if rogues or self.memory.kind != "none":
                raise ValueError("fault programs need the hyperconnect "
                                 "fabric (SmartConnect has no containment "
                                 "or recovery path)")
            if self.equal_shares or self.shares is not None:
                raise ValueError("bandwidth reservation needs the "
                                 "hyperconnect fabric")
            if any(p.timeout is not None for p in self.ports):
                raise ValueError("per-port watchdogs need the "
                                 "hyperconnect fabric")
        if self.shares is not None:
            if self.family != "flat":
                raise ValueError("explicit shares only apply to the flat "
                                 "family")
            if self.equal_shares:
                raise ValueError("equal_shares and explicit shares are "
                                 "exclusive")
            if len(self.shares) != len(self.ports):
                raise ValueError("shares must name a fraction per port")
            if any(not 0.0 <= s <= 1.0 for s in self.shares):
                raise ValueError("shares must lie in [0, 1]")
            reserved = sum(s for s in self.shares if s < 1.0)
            if reserved > 1.0 + 1e-9:
                raise ValueError("reserved shares must sum to <= 1")
            if rogues or self.memory.kind != "none":
                raise ValueError("share sweeps are fault-free campaigns; "
                                 "drop the fault program")

    # ------------------------------------------------------------------

    @property
    def rogue_index(self) -> Optional[int]:
        """Index of the (single) rogue port, if any.

        Tenanted scenarios may carry several rogues; this returns the
        first (use :attr:`rogue_indices` for the full set).
        """
        for index, plan in enumerate(self.ports):
            if plan.is_rogue:
                return index
        return None

    @property
    def rogue_indices(self) -> Tuple[int, ...]:
        """Indices of every rogue port (possibly several, tenanted)."""
        return tuple(index for index, plan in enumerate(self.ports)
                     if plan.is_rogue)

    @property
    def is_tenanted(self) -> bool:
        """True when the scenario stamps per-port tenant domains."""
        return self.grants is not None

    @property
    def churn_victims(self) -> Tuple[int, ...]:
        """Port indices losing their grant mid-run (sorted)."""
        if self.churn is None:
            return ()
        return tuple(sorted(victim for _, victim, _ in self.churn))

    @property
    def churn_beneficiaries(self) -> Tuple[int, ...]:
        """Port indices receiving a re-granted range (sorted)."""
        if self.churn is None:
            return ()
        return tuple(sorted({b for _, _, b in self.churn if b >= 0}))

    @property
    def churn_involved(self) -> Tuple[int, ...]:
        """Victims and beneficiaries together (sorted)."""
        return tuple(sorted(set(self.churn_victims)
                            | set(self.churn_beneficiaries)))

    def baseline(self) -> "Scenario":
        """The fault-free twin used to measure interference deltas.

        The rogue port keeps its place in the topology but loses both
        its fault and its workload (matching how `bench_fault_campaign`
        measures healthy-port interference); a memory fault is simply
        stripped.  Scripted churn is *kept*: the twin of a churn-storm
        scenario revokes on the same schedule, so healthy bystanders see
        the same planned transitions and stay bit-comparable (the
        churn-free twin used by the stale-window oracle is
        ``replace(scenario, churn=None)`` instead).
        """
        ports = tuple(
            replace(plan, fault=MasterFault(), jobs=())
            if plan.is_rogue else plan
            for plan in self.ports)
        return replace(self, ports=ports, memory=MemoryFault())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Purely JSON-native types (lists, not tuples) all the way
        down, so ``to_dict() == json.loads(to_json())`` exactly."""
        data = asdict(self)
        data["ports"] = list(data["ports"])
        for plan in data["ports"]:
            plan["jobs"] = [list(job) for job in plan["jobs"]]
        if data["shares"] is not None:
            data["shares"] = list(data["shares"])
        if data["grants"] is None:
            # omitted-when-absent: untenanted scenarios keep the exact
            # canonical JSON (and scenario_id) they had before tenancy
            # existed — corpus and golden campaign digests stay pinned
            del data["grants"]
        else:
            data["grants"] = [list(grant) for grant in data["grants"]]
        if data["churn"] is None:
            # same omitted-when-absent contract as grants
            del data["churn"]
        else:
            data["churn"] = [list(op) for op in data["churn"]]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        ports = tuple(
            PortPlan(
                jobs=tuple((str(k), int(a), int(n))
                           for k, a, n in plan["jobs"]),
                timeout=plan["timeout"],
                fault=MasterFault(**plan["fault"]),
            )
            for plan in data["ports"])
        shares = data.get("shares")
        grants = data.get("grants")
        churn = data.get("churn")
        return cls(
            family=data["family"],
            ports=ports,
            memory=MemoryFault(**data["memory"]),
            equal_shares=data["equal_shares"],
            period=data["period"],
            horizon=data["horizon"],
            settle=data.get("settle", 256),
            cascade_depth=int(data.get("cascade_depth", 2)),
            fabric=data.get("fabric", "hyperconnect"),
            shares=(None if shares is None
                    else tuple(float(s) for s in shares)),
            grants=(None if grants is None
                    else tuple((int(b), int(s)) for b, s in grants)),
            churn=(None if churn is None
                   else tuple((int(c), int(v), int(b))
                              for c, v, b in churn)),
        )

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — stable for hashing."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


def canonical_json(value) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))
