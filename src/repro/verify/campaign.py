"""Shared-nothing multi-process campaign runner.

A *campaign* streams many independent JSON-serializable
:class:`~repro.verify.scenario.Scenario` objects across worker
processes, runs the oracle families
(:func:`~repro.verify.oracles.evaluate_scenario`) on each, and
aggregates verdicts plus perf stats into a JSON-lines results file.
This is the ROADMAP's "millions of users" traffic shape: many
independent simulations run at throughput, not one big one —
scenarios/sec is the first-class benchmark
(``benchmarks/bench_campaign_throughput.py``).

Design points:

* **shared-nothing** — workers receive scenario JSON strings and return
  plain-dict records; each worker builds its simulators from scratch,
  so there is no shared simulator state to race on;
* **crash containment** — any exception a scenario raises inside a
  worker (bad job kind, harness bug, oracle crash) becomes an
  ``"error"`` verdict on that record; the campaign always completes;
* **determinism** — records are keyed and re-ordered by scenario index,
  so the results file and the campaign verdict digest are byte-identical
  for any worker count (the regression tests and the throughput bench
  both pin 1-worker vs N-worker digest equality).

The record schema is golden-file pinned
(``tests/data/golden_campaign_results.jsonl``); bump
:data:`RESULT_SCHEMA` when changing fields so downstream aggregation
scripts fail loudly instead of silently.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .oracles import ALL_CHECKS, DEFAULT_CHECKS, OracleViolation, \
    evaluate_scenario, fingerprint_digest
from .scenario import Scenario, canonical_json

#: bump when the record schema changes field names or meanings
RESULT_SCHEMA = 1
#: start method: fork where the platform has it (cheap, inherits the
#: already-imported package), spawn otherwise; override via env for A/B
START_METHOD_ENV = "REPRO_CAMPAIGN_START"
#: volatile per-record fields excluded from the campaign verdict digest
VOLATILE_FIELDS = ("elapsed_ms",)


@dataclass(frozen=True)
class CampaignConfig:
    """What the workers run on every scenario."""

    #: oracle families (subset of ALL_CHECKS; "tlm" is opt-in)
    checks: Tuple[str, ...] = DEFAULT_CHECKS
    #: sharded-kernel worker count for the parallel equivalence leg
    #: (0 = reference vs fast only)
    kernel_parallel: int = 0
    #: embed the full scenario dict in each record (replayability)
    embed_scenario: bool = True
    #: wall-clock seconds one record may take before its worker is
    #: declared hung and the straggler becomes an ``error`` verdict
    #: (reason "timeout"); ``None`` (default) waits forever, preserving
    #: historic digests.  Only enforced with ``workers >= 2`` — the
    #: inline path cannot interrupt a wedged evaluation.
    record_timeout: Optional[float] = None
    #: test hook: evaluate scenarios with this callable instead of
    #: :func:`~repro.verify.oracles.evaluate_scenario` (must be a
    #: picklable top-level function so it survives the worker handoff)
    evaluate_hook: Optional[Callable] = None

    def __post_init__(self) -> None:
        unknown = set(self.checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(f"unknown oracle checks {sorted(unknown)}")
        if self.record_timeout is not None and self.record_timeout <= 0:
            raise ValueError("record_timeout must be > 0 seconds")


@dataclass(frozen=True)
class CampaignResult:
    """One finished campaign: ordered records plus aggregate stats."""

    records: Tuple[dict, ...]
    #: sha-256 over the ordered records minus volatile timing fields
    digest: str
    counts: Dict[str, int]
    wall_s: float
    scenarios_per_sec: float
    total_cycles: int
    workers: int

    @property
    def ok(self) -> bool:
        """True when every verdict is ``pass``."""
        return set(self.counts) <= {"pass"}


def scenario_id(scenario: Scenario) -> str:
    """Short content hash naming a scenario across result files."""
    return sha256(scenario.to_json().encode()).hexdigest()[:16]


def evaluate_record(index: int, scenario_json: str,
                    config: CampaignConfig) -> dict:
    """Run one scenario through the oracles; never raises.

    The record's ``verdict`` is ``pass`` (all selected oracles hold),
    ``fail`` (an oracle was falsified — ``oracle``/``detail`` name it),
    or ``error`` (the scenario could not be evaluated at all; the
    exception is recorded, the campaign continues).
    """
    started = time.perf_counter()
    record = {
        "schema": RESULT_SCHEMA,
        "index": index,
        "scenario_id": None,
        "verdict": "pass",
        "oracle": None,
        "detail": None,
        "digest": None,
        "cycles": None,
        "engines": None,
        "elapsed_ms": None,
        "scenario": None,
    }
    scenario: Optional[Scenario] = None
    try:
        scenario = Scenario.from_json(scenario_json)
        record["scenario_id"] = scenario_id(scenario)
        if config.embed_scenario:
            record["scenario"] = scenario.to_dict()
        evaluate = config.evaluate_hook or evaluate_scenario
        reference = evaluate(scenario, checks=config.checks,
                             parallel=config.kernel_parallel)
        record["digest"] = fingerprint_digest(reference)
        record["cycles"] = reference.now
        # per-port engine observables (byte counts etc.), so campaigns
        # double as measurement sweeps (e.g. the reservation ablation)
        record["engines"] = [dict(info) for info in reference.engines]
    except OracleViolation as violation:
        record["verdict"] = "fail"
        record["oracle"] = violation.oracle
        record["detail"] = str(violation).splitlines()[0]
    except Exception as error:   # noqa: BLE001 - crash containment
        record["verdict"] = "error"
        record["detail"] = f"{type(error).__name__}: {error}"
    record["elapsed_ms"] = round(
        (time.perf_counter() - started) * 1e3, 3)
    return record


# ----------------------------------------------------------------------
# the multi-process pump
# ----------------------------------------------------------------------

_WORKER_CONFIG: Optional[CampaignConfig] = None


def _init_worker(config: CampaignConfig) -> None:
    global _WORKER_CONFIG
    _WORKER_CONFIG = config


def _worker(item: Tuple[int, str]) -> dict:
    index, scenario_json = item
    assert _WORKER_CONFIG is not None
    return evaluate_record(index, scenario_json, _WORKER_CONFIG)


def _context() -> multiprocessing.context.BaseContext:
    method = os.environ.get(START_METHOD_ENV)
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(method)


def _timeout_record(index: int, scenario_json: str,
                    config: CampaignConfig) -> dict:
    """An ``error`` verdict for a record whose worker never returned."""
    record = {
        "schema": RESULT_SCHEMA,
        "index": index,
        "scenario_id": None,
        "verdict": "error",
        "oracle": None,
        "detail": f"timeout: record exceeded {config.record_timeout}s "
                  "wall clock; worker terminated",
        "digest": None,
        "cycles": None,
        "engines": None,
        "elapsed_ms": None,
        "scenario": None,
    }
    try:
        scenario = Scenario.from_json(scenario_json)
        record["scenario_id"] = scenario_id(scenario)
        if config.embed_scenario:
            record["scenario"] = scenario.to_dict()
    except Exception:  # noqa: BLE001 - id fields stay None
        pass
    return record


def campaign_digest(records: Iterable[dict]) -> str:
    """Verdict digest: stable hash of the ordered, timing-free records."""
    hasher = sha256()
    for record in records:
        stable = {key: value for key, value in record.items()
                  if key not in VOLATILE_FIELDS}
        hasher.update(canonical_json(stable).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def run_campaign(scenarios: Iterable[Scenario], workers: int = 0,
                 config: CampaignConfig = CampaignConfig(),
                 output: Optional[os.PathLike] = None,
                 progress: Optional[Callable[[dict], None]] = None
                 ) -> CampaignResult:
    """Stream scenarios through the oracles on ``workers`` processes.

    ``workers`` <= 1 runs inline (no processes) — the determinism
    reference for the N-worker digest-equality regression.  ``output``
    writes the ordered records as canonical JSON-lines.  ``progress``
    is called once per finished record (completion order, not index
    order — useful for live reporting only).
    """
    payloads = [(index, scenario.to_json())
                for index, scenario in enumerate(scenarios)]
    started = time.perf_counter()
    if workers <= 1:
        records = []
        for index, scenario_json in payloads:
            record = evaluate_record(index, scenario_json, config)
            if progress is not None:
                progress(record)
            records.append(record)
    else:
        context = _context()
        records = []
        chunksize = max(1, len(payloads) // (workers * 8) or 1)
        if config.record_timeout is not None:
            chunksize = 1  # a hung record must not strand its chunk-mates
        with context.Pool(processes=workers, initializer=_init_worker,
                          initargs=(config,)) as pool:
            results = pool.imap_unordered(_worker, payloads,
                                          chunksize=chunksize)
            pending = {index for index, __ in payloads}
            try:
                while pending:
                    try:
                        record = results.next(
                            timeout=config.record_timeout)
                    except StopIteration:
                        break
                    pending.discard(record["index"])
                    if progress is not None:
                        progress(record)
                    records.append(record)
            except multiprocessing.TimeoutError:
                # a worker is hung: abandon the pool and report every
                # unfinished record as a timeout error — the campaign
                # always terminates
                pool.terminate()
                for index, scenario_json in payloads:
                    if index not in pending:
                        continue
                    record = _timeout_record(index, scenario_json,
                                             config)
                    if progress is not None:
                        progress(record)
                    records.append(record)
        records.sort(key=lambda record: record["index"])
    wall_s = time.perf_counter() - started
    counts: Dict[str, int] = {}
    total_cycles = 0
    for record in records:
        counts[record["verdict"]] = counts.get(record["verdict"], 0) + 1
        total_cycles += record["cycles"] or 0
    result = CampaignResult(
        records=tuple(records),
        digest=campaign_digest(records),
        counts=counts,
        wall_s=wall_s,
        scenarios_per_sec=(len(records) / wall_s if wall_s > 0
                           else float("inf")),
        total_cycles=total_cycles,
        workers=max(1, workers),
    )
    if output is not None:
        write_results(output, records)
    return result


# ----------------------------------------------------------------------
# JSON-lines results files
# ----------------------------------------------------------------------

def write_results(path: os.PathLike, records: Iterable[dict]) -> None:
    """Write records as canonical JSON-lines (one record per line)."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(canonical_json(record) + "\n")


def load_results(path: os.PathLike) -> List[dict]:
    """Read a JSON-lines results file back into record dicts."""
    import json

    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported campaign result schema "
                f"{record.get('schema')!r} (expected {RESULT_SCHEMA})")
        records.append(record)
    return records
