"""Oracle families checked on every fuzzed scenario.

Three oracle families from the verification plan, plus the analytic
containment bound:

1. **liveness** — every healthy port's outstanding transactions complete
   (genuinely or via synthesized error responses) within the run;
2. **protocol** — strict :class:`~repro.axi.LinkChecker` monitors on
   every compliant master's port stay clean;
3. **equivalence** — the labeled kernel paths (reference, fast, and
   the sharded engine on its threads and processes backends) produce
   bit-identical observables (traffic, events, fault statistics,
   elapsed time);
4. **containment bound** — for single-rogue-master scenarios the
   measured healthy-port completion delta against the fault-free
   baseline respects
   :class:`~repro.analysis.containment.ContainmentBound`;
5. **isolation** — on tenanted (multi-domain) scenarios, every faulted
   tenant is contained, quarantined, and either recovered or retired
   (graceful degradation), while every healthy tenant's traffic is
   bit-identical to the fault-free baseline and its completion delay
   respects the serialized multi-fault containment bound.  A no-op on
   untenanted scenarios, so legacy campaign digests are unaffected.
   On scenarios that script live grant churn the family additionally
   runs the **stale-window** oracle (:func:`check_stale_window`)
   against a churn-free twin: after a revocation commits, no beat may
   translate through the torn-down stage-2 window — the evicted tenant
   drains with ``DECERR``, the re-granted range carries exactly the
   beneficiary's bytes over scrubbed zeros, and uninvolved tenants stay
   bit-identical to the twin within the analytic churn delay bound.
6. **tlm** (opt-in, outside :data:`DEFAULT_CHECKS`) — the
   transaction-level fast-forward path (:mod:`repro.sim.tlm`) is either
   *exact* or *bounded*: a run whose every window demoted to
   cycle-accurate execution must be bit-identical to the reference,
   while a run that committed fast-forwarded epochs must respect the
   analytic traffic bounds (shared-bus capacity, per-port reservation
   budgets), make progress wherever the reference did, and synthesize
   no spurious error responses.

:func:`check_scenario` composes the default families; on failure it
dumps the falsifying scenario as JSON (for CI artifact upload and
corpus promotion) and raises :class:`OracleViolation`.
"""

from __future__ import annotations

import os
from dataclasses import replace
from hashlib import sha256
from pathlib import Path
from typing import Dict, Optional, Set

from ..analysis import ContainmentBound
from .harness import CHURN_WRITE_BYTES, RunResult, churn_pattern, run_scenario
from .scenario import Scenario, canonical_json

#: where falsifying examples are written (CI uploads this directory)
ARTIFACT_DIR_ENV = "VERIFY_ARTIFACT_DIR"
DEFAULT_ARTIFACT_DIR = "fuzz-artifacts"
#: the oracle families, in the order :func:`evaluate_scenario` runs them;
#: campaigns subset this (e.g. greedy bandwidth sweeps drop "liveness")
DEFAULT_CHECKS = ("equivalence", "liveness", "protocol", "containment",
                  "isolation")
#: every selectable family: the defaults plus the opt-in "tlm" oracle
#: (one extra run per scenario, so grids opt in explicitly)
ALL_CHECKS = DEFAULT_CHECKS + ("tlm",)
#: per-port bytes the TLM flush may credit instantly at each epoch
#: boundary: at most 8 outstanding transactions of at most 64 beats on
#: the verify harness's 16-byte bus (engines there run the defaults —
#: 8 outstanding, 16-beat bursts — so this is deliberately generous)
TLM_FLUSH_SLACK_BYTES = 8 * 64 * 16


class OracleViolation(AssertionError):
    """A scenario falsified one of the verification oracles."""

    def __init__(self, oracle: str, message: str,
                 scenario: Scenario) -> None:
        super().__init__(f"[{oracle}] {message}\nscenario: "
                         f"{scenario.to_json()}")
        self.oracle = oracle
        self.scenario = scenario


def fingerprint_digest(result: RunResult) -> str:
    """Stable content hash of a run's observables (corpus currency)."""
    return sha256(canonical_json(_plain(result.fingerprint))
                  .encode()).hexdigest()


def _plain(value):
    """Fingerprint tuples -> JSON-representable lists/scalars."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# individual oracles
# ----------------------------------------------------------------------

def check_liveness(scenario: Scenario, result: RunResult) -> None:
    """Oracle 1: no healthy port may end the run owed anything.

    A hung reader is the one legitimate exception — it *refuses* its
    answers, so its synthesized beats pile up behind its own closed
    gate.  Ports that never tripped and saw a healthy memory must also
    have finished every job, error-free.  Greedy (saturating) ports and
    deliberately decoupled ports (share 0.0) have no completion
    obligation and are skipped.
    """
    churn_victims = set(scenario.churn_victims)
    for index, (info, trip_count) in enumerate(zip(result.engines,
                                                   result.trips)):
        plan = scenario.ports[index]
        if plan.is_greedy:
            continue
        if (scenario.shares is not None
                and scenario.shares[index] == 0.0):
            continue
        if plan.is_rogue and scenario.is_tenanted:
            # a tenant retired by the recovery policy (giveup) may end
            # the run owed work; the isolation oracle governs it
            continue
        if index in churn_victims:
            # an evicted tenant legitimately ends the run with DECERR'd
            # jobs (and, once retired, unissued ones); the stale-window
            # oracle pins down exactly what it must look like instead
            continue
        if info["hung"]:
            continue
        if info["outstanding"] != 0:
            raise OracleViolation(
                "liveness",
                f"{info['name']} ended with {info['outstanding']} "
                "outstanding transactions", scenario)
        untripped_healthy = (trip_count == 0
                             and scenario.memory.kind == "none")
        if untripped_healthy:
            if info["jobs_completed"] != info["jobs_enqueued"]:
                raise OracleViolation(
                    "liveness",
                    f"{info['name']} completed {info['jobs_completed']}"
                    f"/{info['jobs_enqueued']} jobs with no fault on its "
                    "path", scenario)
            if info["error_responses"] != 0:
                raise OracleViolation(
                    "liveness",
                    f"{info['name']} saw {info['error_responses']} error "
                    "responses with no fault on its path", scenario)


def check_protocol(scenario: Scenario, result: RunResult) -> None:
    """Oracle 2: strict AXI monitors on compliant ports stay clean."""
    for info, violations in zip(result.engines, result.violations):
        if violations:
            raise OracleViolation(
                "protocol",
                f"{info['name']} port monitor flagged: {violations[0]} "
                f"(+{len(violations) - 1} more)", scenario)


def check_equivalence(scenario: Scenario, reference: RunResult,
                      candidate: RunResult, label: str = "fast") -> None:
    """Oracle 3: a candidate kernel path must agree bit-for-bit with the
    reference path.  ``label`` names the candidate ("fast",
    "parallel=2:threads", ...) in the violation message, which also
    carries both paths' corpus digests for cross-run triage."""
    if reference.fingerprint != candidate.fingerprint:
        detail = f"{label} fingerprint differs from reference"
        for index, (r, f) in enumerate(zip(reference.fingerprint,
                                           candidate.fingerprint)):
            if r != f:
                detail = (f"{label} fingerprint component {index} "
                          f"differs: {r!r} != {f!r}")
                break
        detail += (f" [digests: reference="
                   f"{fingerprint_digest(reference)[:12]} "
                   f"{label}={fingerprint_digest(candidate)[:12]}]")
        raise OracleViolation("equivalence", detail, scenario)


def containment_bound_for(scenario: Scenario) -> Optional[ContainmentBound]:
    """The analytic bound instance governing a scenario, if applicable.

    Applicable exactly when one rogue master misbehaves over a healthy
    memory with its watchdog armed: then containment (not the fault)
    bounds the healthy ports' extra delay.
    """
    rogue = scenario.rogue_index
    if rogue is None or scenario.memory.kind != "none":
        return None
    if len(scenario.rogue_indices) > 1:
        return None  # multi-fault scenarios are governed by "isolation"
    timeout = scenario.ports[rogue].timeout
    if timeout is None:
        return None
    from .harness import OOO_TIMING
    from ..platforms import ZCU102
    timing = OOO_TIMING if scenario.family == "ooo" else ZCU102.dram
    return ContainmentBound(
        n_ports=len(scenario.ports), nominal_burst=16, memory=timing,
        timeout_cycles=timeout, rogue_outstanding=8,
        period=scenario.period if scenario.equal_shares else None)


def check_containment_bound(scenario: Scenario, result: RunResult,
                            baseline: RunResult) -> None:
    """Oracle 4: measured healthy-port interference respects the bound."""
    bound = containment_bound_for(scenario)
    if bound is None:
        return
    if result.healthy_done is None or baseline.healthy_done is None:
        return  # no healthy work to compare (liveness handles the rest)
    limit = bound.healthy_port_delay_bound()
    if scenario.family == "cascade":
        limit += bound.cascade_slack(levels=scenario.cascade_depth)
    delta = result.healthy_done - baseline.healthy_done
    if delta > limit:
        raise OracleViolation(
            "containment-bound",
            f"healthy ports finished {delta} cycles later than the "
            f"fault-free baseline; analytic bound is {limit} "
            f"(detection={bound.detection_cycles} "
            f"drain={bound.drain_cycles})", scenario)


def isolation_bound_for(scenario: Scenario) -> Optional[ContainmentBound]:
    """The per-tenant bound governing a tenanted fault scenario.

    Applicable when every non-``wild_addr`` rogue has its watchdog
    armed over a healthy memory.  ``wild_addr`` rogues need no timeout
    — the region filter catches them at ingest — so an all-wild storm
    uses a nominal 1-cycle detection term.  The largest armed timeout
    governs the shared detection window otherwise.
    """
    if not scenario.is_tenanted or not scenario.rogue_indices:
        return None
    if scenario.memory.kind != "none":
        return None
    timeouts = []
    for index in scenario.rogue_indices:
        plan = scenario.ports[index]
        if plan.fault.mode == "wild_addr":
            continue
        if plan.timeout is None:
            return None  # undetectable fault: no analytic bound
        timeouts.append(plan.timeout)
    from ..platforms import ZCU102
    return ContainmentBound(
        n_ports=len(scenario.ports), nominal_burst=16,
        memory=ZCU102.dram,
        timeout_cycles=max(timeouts) if timeouts else 1,
        rogue_outstanding=8,
        period=scenario.period if scenario.equal_shares else None)


def check_isolation(scenario: Scenario, result: RunResult,
                    baseline: RunResult) -> None:
    """Oracle 5: a tenant's fault stays inside its own domain.

    Structural checks, per faulted tenant:

    * the rogue port actually tripped (containment engaged);
    * the hypervisor quarantined it and then either recoupled it or
      gave up — graceful degradation, never a silent wedge;

    and per healthy tenant:

    * traffic observables (bytes moved, jobs completed, error
      responses) are bit-identical to the fault-free baseline — no
      data or bandwidth leakage across domain boundaries;
    * job completion is delayed at most the serialized multi-fault
      containment bound
      (:meth:`~repro.analysis.containment.ContainmentBound.multi_fault_delay_bound`).
    """
    if not scenario.is_tenanted:
        return
    rogues = set(scenario.rogue_indices)
    if not rogues:
        return
    # flat family only (scenario validation pins it), so the event-log
    # port index is the plan index
    recovery: Dict[int, Set[str]] = {}
    for event in result.events:
        if event.get("event") == "port_recovery":
            recovery.setdefault(event["port"], set()).add(event["kind"])
    for index in sorted(rogues):
        info = result.engines[index]
        if result.trips[index] == 0:
            raise OracleViolation(
                "isolation",
                f"rogue tenant {info['name']} was never contained "
                "(0 trips)", scenario)
        kinds = recovery.get(index, set())
        if "quarantine" not in kinds:
            raise OracleViolation(
                "isolation",
                f"rogue tenant {info['name']} tripped but was never "
                "quarantined", scenario)
        if not kinds & {"recouple", "giveup"}:
            raise OracleViolation(
                "isolation",
                f"rogue tenant {info['name']} left in limbo: recovery "
                "neither recoupled nor gave up within the run", scenario)
    bound = isolation_bound_for(scenario)
    limit = (bound.multi_fault_delay_bound(len(rogues))
             if bound is not None else None)
    churn_involved = set(scenario.churn_involved)
    for index, (info, base) in enumerate(zip(result.engines,
                                             baseline.engines)):
        if index in rogues:
            continue
        if index in churn_involved:
            # the baseline revokes on the same schedule, but a rogue's
            # containment can legitimately shift *when* the victim's
            # drain lands (synth beat counts) and when the beneficiary's
            # post-commit jobs run; the stale-window oracle governs both
            continue
        for key in ("bytes_read", "bytes_written", "jobs_completed",
                    "error_responses"):
            if info[key] != base[key]:
                raise OracleViolation(
                    "isolation",
                    f"healthy tenant {info['name']} {key} changed under "
                    f"a neighbour's fault: {info[key]} != baseline "
                    f"{base[key]}", scenario)
        if limit is None or not result.done_cycles:
            continue
        done = result.done_cycles[index]
        base_done = baseline.done_cycles[index]
        if done is None or base_done is None:
            continue
        delta = done - base_done
        if delta > limit:
            raise OracleViolation(
                "isolation",
                f"healthy tenant {info['name']} finished {delta} cycles "
                f"after its fault-free baseline; serialized containment "
                f"bound for {len(rogues)} fault(s) is {limit}", scenario)


def churn_delay_bound_for(scenario: Scenario) -> int:
    """Analytic bystander-delay bound for scripted grant churn.

    Each revocation reuses the containment ladder with an immediate
    (1-cycle detection) quiesce, so the serialized multi-fault bound
    applies with ``timeout_cycles=1``; on top of that every re-granting
    op injects the beneficiary's post-commit write + readback (each at
    most ``CHURN_WRITE_BYTES`` = 32 beats on the 16-byte bus), charged
    as up to 64 beats of extra round-robin interference per port.
    """
    from ..platforms import ZCU102
    n_ops = len(scenario.churn or ())
    bound = ContainmentBound(
        n_ports=len(scenario.ports), nominal_burst=16,
        memory=ZCU102.dram, timeout_cycles=1, rogue_outstanding=8,
        period=scenario.period if scenario.equal_shares else None)
    return (bound.multi_fault_delay_bound(n_ops)
            + n_ops * 64 * len(scenario.ports))


def check_stale_window(scenario: Scenario, result: RunResult,
                       churnfree: RunResult) -> None:
    """Stale-window oracle (isolation family, churn scenarios only).

    For every scripted revocation, against the churn-free twin
    (``replace(scenario, churn=None)``):

    * the victim's supervisor actually entered revocation containment,
      drained to zero outstanding beats, and — when the op left the
      domain grantless — stayed decoupled (retired), else recoupled;
    * the victim's stage-2 window over the revoked range is gone and
      the port's region-filter epoch recorded the retarget, so no beat
      can translate through the old window after the commit;
    * a victim that was provably mid-burst (its churn-free twin
      finishes well after the op cycle) drained via synthesized beats,
      and synthesized beats surfaced as ``DECERR`` at its engine;
    * the contested physical range ends the run carrying exactly the
      beneficiary's pattern over scrubbed zeros (or all zeros on a
      revoke-only op) — proof the old tenant's bytes neither survived
      nor reappeared;
    * the beneficiary received, completed, and error-free'd its
      post-commit write + readback through its own new window;
    * every uninvolved healthy tenant is bit-identical to the
      churn-free twin, finishing within the analytic churn delay
      bound.
    """
    if scenario.churn is None:
        return
    for probe in result.churn_probes:
        victim = probe["victim"]
        name = result.engines[victim]["name"]
        where = (f"range [{probe['base']:#x}+{probe['size']:#x}] "
                 f"revoked from {name} at cycle {probe['op_cycle']}")
        if probe["victim_revocations"] < 1:
            raise OracleViolation(
                "stale-window",
                f"{where}: the supervisor never entered revocation "
                "containment", scenario)
        if probe["victim_window"]:
            raise OracleViolation(
                "stale-window",
                f"{where}: stale stage-2 window survived the commit",
                scenario)
        if probe["victim_outstanding"] != 0:
            raise OracleViolation(
                "stale-window",
                f"{where}: victim still owed "
                f"{probe['victim_outstanding']} beats after the drain",
                scenario)
        if probe["victim_regions"] == 0 and probe["victim_coupled"]:
            raise OracleViolation(
                "stale-window",
                f"{where}: grantless evicted tenant left coupled to "
                "the bus", scenario)
        if probe["victim_regions"] > 0 and not probe["victim_coupled"]:
            raise OracleViolation(
                "stale-window",
                f"{where}: victim kept {probe['victim_regions']} "
                "region(s) but was never recoupled", scenario)
        if probe["epoch"] < 2:
            raise OracleViolation(
                "stale-window",
                f"{where}: region-filter epoch register never recorded "
                f"the retarget (epoch={probe['epoch']})", scenario)
        twin_done = (churnfree.done_cycles[victim]
                     if churnfree.done_cycles else None)
        if (twin_done is not None
                and twin_done > probe["op_cycle"] + 16
                and probe["victim_synth_beats"] == 0):
            raise OracleViolation(
                "stale-window",
                f"{where}: victim was mid-burst (churn-free twin "
                f"finishes at cycle {twin_done}) yet the drain "
                "synthesized no beats", scenario)
        if (probe["victim_synth_beats"] > 0
                and result.engines[victim]["error_responses"] == 0):
            raise OracleViolation(
                "stale-window",
                f"{where}: drain synthesized "
                f"{probe['victim_synth_beats']} beats but the evicted "
                "tenant never saw DECERR", scenario)
        beneficiary = probe["beneficiary"]
        size = probe["size"]
        if beneficiary < 0:
            expected = sha256(bytes(size)).hexdigest()
            label = "scrubbed zeros"
        else:
            info = result.engines[beneficiary]
            if not probe["beneficiary_window"]:
                raise OracleViolation(
                    "stale-window",
                    f"{where}: re-granted range never appeared in "
                    f"beneficiary {info['name']}'s stage-2 table",
                    scenario)
            planned = len(scenario.ports[beneficiary].jobs)
            if info["jobs_enqueued"] != planned + 2:
                raise OracleViolation(
                    "stale-window",
                    f"{where}: beneficiary {info['name']} never "
                    "received its post-commit write + readback "
                    f"({info['jobs_enqueued']} jobs, expected "
                    f"{planned + 2})", scenario)
            if info["jobs_completed"] != info["jobs_enqueued"]:
                raise OracleViolation(
                    "stale-window",
                    f"{where}: beneficiary {info['name']} completed "
                    f"{info['jobs_completed']}/{info['jobs_enqueued']} "
                    "jobs — re-granted range never reused within the "
                    "horizon", scenario)
            if info["error_responses"] != 0:
                raise OracleViolation(
                    "stale-window",
                    f"{where}: beneficiary {info['name']} saw "
                    f"{info['error_responses']} error responses on the "
                    "re-granted range", scenario)
            nbytes = min(CHURN_WRITE_BYTES, size)
            expected = sha256(churn_pattern(beneficiary, nbytes)
                              + bytes(size - nbytes)).hexdigest()
            label = f"{info['name']}'s pattern over scrubbed zeros"
        if probe["store_digest"] != expected:
            raise OracleViolation(
                "stale-window",
                f"{where}: contested range ends the run with digest "
                f"{probe['store_digest'][:12]}, expected {label} "
                f"({expected[:12]}) — a stale-window beat landed",
                scenario)
    limit = churn_delay_bound_for(scenario)
    involved = set(scenario.churn_involved) | set(scenario.rogue_indices)
    for index, (info, twin) in enumerate(zip(result.engines,
                                             churnfree.engines)):
        if index in involved or scenario.ports[index].is_greedy:
            continue
        for key in ("bytes_read", "bytes_written", "jobs_completed",
                    "error_responses"):
            if info[key] != twin[key]:
                raise OracleViolation(
                    "stale-window",
                    f"uninvolved tenant {info['name']} {key} changed "
                    f"under a neighbour's revocation: {info[key]} != "
                    f"churn-free {twin[key]}", scenario)
        if not result.done_cycles or not churnfree.done_cycles:
            continue
        done = result.done_cycles[index]
        twin_done = churnfree.done_cycles[index]
        if done is None or twin_done is None:
            continue
        delta = done - twin_done
        if delta > limit:
            raise OracleViolation(
                "stale-window",
                f"uninvolved tenant {info['name']} finished {delta} "
                "cycles after its churn-free twin; analytic churn "
                f"delay bound for {len(scenario.churn)} op(s) is "
                f"{limit}", scenario)


def check_tlm(scenario: Scenario, reference: RunResult,
              candidate: RunResult) -> None:
    """Oracle 6: the TLM fast-forward path is either exact or bounded.

    The candidate is the scenario re-run with ``tlm=True``.  Two
    regimes, split on :attr:`RunResult.tlm_epochs`:

    * **0 committed epochs** — the engine declined every window, so by
      construction it executed the serial fast path cycle-for-cycle;
      the run must be *bit-identical* to the reference
      (:func:`check_equivalence` with label ``tlm``).
    * **>= 1 committed epochs** — per-cycle observables are summarized,
      so exact equality is out; instead the analytic models that drove
      the fast-forward must hold on the outcome:

      - aggregate traffic fits the shared bus (one beat per cycle per
        memory link) plus the per-epoch in-flight flush slack;
      - every reserved port (``0 < share < 1``) moved at most its
        programmed budget's worth of beats per reservation period
        (:meth:`~repro.analysis.reservation.ReservationAnalysis.for_share`),
        again plus flush slack;
      - every healthy port that made progress under the reference made
        progress under TLM (fast-forwarding must not starve anyone);
      - no error responses appear on healthy ports over a healthy
        memory when the reference saw none.
    """
    if candidate.tlm_epochs == 0:
        check_equivalence(scenario, reference, candidate, label="tlm")
        return
    beat_bytes = 16                   # the verify harness's bus width
    links = 2 if scenario.family == "multiport" else 1
    slack = candidate.tlm_epochs * TLM_FLUSH_SLACK_BYTES
    total = sum(info["bytes_read"] + info["bytes_written"]
                for info in candidate.engines)
    capacity = (candidate.now * beat_bytes * links
                + len(scenario.ports) * slack)
    if total > capacity:
        raise OracleViolation(
            "tlm",
            f"TLM run moved {total} bytes over a bus whose "
            f"{candidate.now}-cycle capacity (plus flush slack for "
            f"{candidate.tlm_epochs} epochs) is {capacity}", scenario)
    shares = None
    if scenario.equal_shares:
        shares = tuple(1.0 / len(scenario.ports)
                       for __ in scenario.ports)
    elif scenario.shares is not None:
        shares = scenario.shares
    if shares is not None:
        from ..analysis.reservation import ReservationAnalysis
        periods = candidate.now // scenario.period + 2
        for index, share in enumerate(shares):
            if not 0.0 < share < 1.0:
                continue       # decoupled (0.0) / unreserved (1.0)
            analysis = ReservationAnalysis.for_share(share,
                                                     scenario.period)
            info = candidate.engines[index]
            moved = info["bytes_read"] + info["bytes_written"]
            limit = (analysis.budget * analysis.nominal_burst
                     * beat_bytes * periods + slack)
            if moved > limit:
                raise OracleViolation(
                    "tlm",
                    f"reserved port {info['name']} (share {share}) "
                    f"moved {moved} bytes under TLM; budget "
                    f"{analysis.budget}/{scenario.period} caps "
                    f"{periods} periods (plus flush slack) at {limit}",
                    scenario)
    for index, (info, ref) in enumerate(zip(candidate.engines,
                                            reference.engines)):
        if scenario.ports[index].is_rogue:
            continue
        if (ref["bytes_read"] + ref["bytes_written"] > 0
                and info["bytes_read"] + info["bytes_written"] == 0):
            raise OracleViolation(
                "tlm",
                f"{info['name']} moved bytes under the reference but "
                "none under TLM — fast-forwarding starved the port",
                scenario)
        if (scenario.memory.kind == "none"
                and ref["error_responses"] == 0
                and info["error_responses"] != 0):
            raise OracleViolation(
                "tlm",
                f"{info['name']} saw {info['error_responses']} error "
                "responses under TLM where the reference saw none",
                scenario)


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------

def dump_falsifying_example(scenario: Scenario, oracle: str) -> Path:
    """Persist a falsifying scenario for CI artifact upload / triage."""
    directory = Path(os.environ.get(ARTIFACT_DIR_ENV,
                                    DEFAULT_ARTIFACT_DIR))
    directory.mkdir(parents=True, exist_ok=True)
    digest = sha256(scenario.to_json().encode()).hexdigest()[:12]
    path = directory / f"falsified-{oracle}-{digest}.json"
    path.write_text(canonical_json({
        "oracle": oracle,
        "scenario": scenario.to_dict(),
    }) + "\n")
    return path


def equivalence_label(parallel: int, backend: str) -> str:
    """The candidate-leg label for one sharded-engine configuration.

    ``"auto"`` keeps the historic bare ``parallel=N`` label (corpus
    digests and falsifying-example messages pin it); explicit backends
    are named so a four-way violation says which engine diverged.
    """
    if backend == "auto":
        return f"parallel={parallel}"
    return f"parallel={parallel}:{backend}"


def scenario_path_digests(scenario: Scenario, parallel: int = 2,
                          backends: tuple = ("threads", "processes"),
                          ) -> Dict[str, str]:
    """Corpus digest of every kernel path's observables, keyed by label.

    The labeled per-path map ("reference" / "fast" / one entry per
    sharded backend) is what the corpus replay tests compare: every
    value must be identical, byte for byte.
    """
    digests = {
        "reference": fingerprint_digest(run_scenario(scenario,
                                                     fast=False)),
        "fast": fingerprint_digest(run_scenario(scenario, fast=True)),
    }
    for backend in backends:
        digests[equivalence_label(parallel, backend)] = (
            fingerprint_digest(run_scenario(
                scenario, fast=False, parallel=parallel,
                parallel_backend=backend)))
    return digests


def evaluate_scenario(scenario: Scenario,
                      checks: tuple = DEFAULT_CHECKS,
                      parallel: int = 2,
                      parallel_backends: Optional[tuple] = None,
                      ) -> RunResult:
    """Run the selected oracle families on one scenario.

    ``checks`` subsets :data:`ALL_CHECKS`; "equivalence" runs the
    scenario on the fast kernel path and — with ``parallel`` > 0 — on
    the sharded parallel engine once per entry of ``parallel_backends``
    (default ``("auto",)``), against the reference; "tlm" adds the
    transaction-level fast-forward leg (:func:`check_tlm`);
    "containment" additionally runs the fault-free baseline when the
    analytic bound applies.  Raises :class:`OracleViolation` on the
    first falsified oracle; returns the reference run.  This is the
    worker body of the campaign runner (:mod:`repro.verify.campaign`),
    which records violations as verdicts instead of raising.
    """
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        raise ValueError(f"unknown oracle checks {sorted(unknown)}")
    if parallel_backends is None:
        parallel_backends = ("auto",)
    reference = run_scenario(scenario, fast=False)
    if "equivalence" in checks:
        fast = run_scenario(scenario, fast=True)
        check_equivalence(scenario, reference, fast, label="fast")
        if parallel:
            for backend in parallel_backends:
                sharded = run_scenario(scenario, fast=False,
                                       parallel=parallel,
                                       parallel_backend=backend)
                check_equivalence(
                    scenario, reference, sharded,
                    label=equivalence_label(parallel, backend))
    if "tlm" in checks:
        check_tlm(scenario, reference,
                  run_scenario(scenario, fast=True, tlm=True))
    if "liveness" in checks:
        check_liveness(scenario, reference)
    if "protocol" in checks:
        check_protocol(scenario, reference)
    baseline: Optional[RunResult] = None
    if ("containment" in checks
            and containment_bound_for(scenario) is not None):
        baseline = run_scenario(scenario.baseline(), fast=False)
        check_containment_bound(scenario, reference, baseline)
    if ("isolation" in checks and scenario.is_tenanted
            and scenario.rogue_indices):
        if baseline is None:
            baseline = run_scenario(scenario.baseline(), fast=False)
        check_isolation(scenario, reference, baseline)
    if "isolation" in checks and scenario.churn is not None:
        # the stale-window oracle's twin strips *only* the churn (the
        # fault storm stays), unlike baseline() which keeps churn and
        # strips faults — the two twins probe orthogonal properties
        churnfree = run_scenario(replace(scenario, churn=None),
                                 fast=False)
        check_stale_window(scenario, reference, churnfree)
    return reference


def check_scenario(scenario: Scenario, parallel: int = 2,
                   parallel_backends: tuple = ("threads", "processes"),
                   ) -> RunResult:
    """Run every oracle family on one scenario; returns the reference run.

    Runs the scenario on all four labeled kernel paths — reference,
    fast, and the sharded parallel engine once per backend in
    ``parallel_backends`` (default threads *and* processes; ``parallel``
    = 0 skips both sharded legs) — plus the fault-free baseline
    (reference path) when the containment bound applies.  A topology
    whose shards are not process-exportable still runs the processes
    leg: the request degrades to threads inside the engine, so the leg
    doubles as a regression test of the graceful fallback.  On
    violation, the scenario is dumped to the artifact directory and the
    :class:`OracleViolation` re-raised for hypothesis to shrink.
    """
    try:
        return evaluate_scenario(scenario, parallel=parallel,
                                 parallel_backends=parallel_backends)
    except OracleViolation as violation:
        dump_falsifying_example(scenario, violation.oracle)
        raise
