"""Hypothesis strategies over fault-campaign scenarios.

Kept out of ``repro.verify``'s package ``__init__`` so the runtime
package never imports hypothesis — only the test-suite (and anything
else that explicitly wants randomized scenarios) pays that dependency.

The strategies compose the randomized dimensions the ROADMAP scale-out
item names: topology family and port count, per-port workloads, hang
points, freeze windows, per-port ``PORT_TIMEOUT`` values, and bandwidth
reservations.  Constraints that keep a draw *meaningful* (a hung reader
must actually receive enough beats to hang; an illegal burst must
actually straddle a 4 KiB boundary; healthy watchdogs must not false-trip
during containment) are encoded here so every generated scenario tests
what it claims to.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import strategies as st

from .scenario import (
    FAMILIES,
    GRANT_GRANULE,
    MEMORY_FAULT_FAMILIES,
    MasterFault,
    MemoryFault,
    PortPlan,
    Scenario,
)

#: leaf-port counts per family (cascade/multiport need the extra port)
PORT_RANGE = {"flat": (2, 4), "cascade": (3, 4), "ooo": (2, 3),
              "multiport": (3, 4)}
#: job sizes in bytes (multiples of the 16-byte beat)
SIZES = (256, 512, 1024, 2048)
BEAT_BYTES = 16
#: healthy ports are either disarmed or armed far beyond
#: ContainmentBound.min_safe_timeout() for every rogue timeout below
SAFE_HEALTHY_TIMEOUT = 4000
ROGUE_TIMEOUT = st.integers(min_value=150, max_value=500)
#: reads at this 4 KiB offset make an un-legalized 16-beat burst straddle
ILLEGAL_OFFSET = 0xF80


def _address(port_index: int, job_index: int) -> int:
    return 0x1000_0000 + (port_index << 22) + job_index * 0x1_0000


@st.composite
def _jobs(draw, port_index: int, kinds=("read", "write", "copy"),
          min_jobs: int = 1, max_jobs: int = 3):
    count = draw(st.integers(min_jobs, max_jobs))
    return tuple(
        (draw(st.sampled_from(kinds)), _address(port_index, job),
         draw(st.sampled_from(SIZES)))
        for job in range(count))


def _beats(jobs, kinds) -> int:
    return sum(nbytes // BEAT_BYTES for kind, _, nbytes in jobs
               if kind in kinds)


@st.composite
def _rogue_plan(draw, port_index: int):
    mode = draw(st.sampled_from(("hung_r", "withheld_w", "illegal_burst")))
    timeout = draw(ROGUE_TIMEOUT)
    if mode == "illegal_burst":
        # one guaranteed-straddling read; the ingest guard DECERRs it
        jobs = ((("read", _address(port_index, 0) + ILLEGAL_OFFSET,
                  1024),)
                + draw(_jobs(port_index, min_jobs=0, max_jobs=1)))
        return PortPlan(jobs=jobs, timeout=timeout,
                        fault=MasterFault(mode=mode))
    data_kinds = ("read", "copy") if mode == "hung_r" else ("write", "copy")
    jobs = draw(_jobs(port_index, kinds=data_kinds, min_jobs=1,
                      max_jobs=2))
    trigger_beats = _beats(jobs, ("read", "copy") if mode == "hung_r"
                           else ("write", "copy"))
    hang = draw(st.integers(0, max(0, min(trigger_beats - 1, 63))))
    persistent = (draw(st.booleans()) if mode == "withheld_w" else False)
    return PortPlan(jobs=jobs, timeout=timeout,
                    fault=MasterFault(mode=mode, hang_after_beats=hang,
                                      persistent=persistent))


@st.composite
def _healthy_plan(draw, port_index: int, armed: bool):
    timeout = (draw(st.integers(300, 600)) if armed
               else draw(st.sampled_from((None, SAFE_HEALTHY_TIMEOUT))))
    return PortPlan(jobs=draw(_jobs(port_index)), timeout=timeout)


@st.composite
def _memory_fault(draw):
    kind = draw(st.sampled_from(("dead", "freeze", "stall", "error")))
    return MemoryFault(
        kind=kind,
        dead_after_beats=draw(st.integers(0, 96)),
        freeze_start=draw(st.integers(200, 600)),
        freeze_cycles=draw(st.integers(300, 1000)),
        stall_rate=draw(st.sampled_from((0.02, 0.05, 0.08))),
        stall_cycles=draw(st.integers(10, 30)),
        error_rate=draw(st.sampled_from((0.02, 0.05, 0.10))),
        seed=draw(st.integers(1, 1 << 16)),
    )


@st.composite
def tenanted_scenarios(draw, max_domains: int = 12):
    """Draw one tenanted (multi-domain) :class:`Scenario`.

    Every port is a tenant domain with a disjoint granule-aligned
    grant; any subset of tenants (possibly several at once — unlike the
    single-fault campaigns) misbehaves with ``wild_addr`` (jobs aimed
    into a neighbour's grant) or ``hung_r`` faults.  Healthy tenants
    keep their watchdogs disarmed so fair-share queueing at scale can
    never false-trip them; the horizon scales with the total enqueued
    work so the liveness obligation is satisfiable at every draw.
    """
    n = draw(st.integers(3, max_domains))
    span_pages = draw(st.sampled_from((8, 16, 32)))
    span = span_pages * GRANT_GRANULE
    n_faulted = draw(st.integers(0, min(4, n - 1)))
    faulted = sorted(draw(st.permutations(range(n)))[:n_faulted])
    plans = []
    total_bytes = 0
    for index in range(n):
        base = index * span
        if index in faulted:
            if draw(st.booleans()):
                target = ((index + 1) % n) * span
                plans.append(PortPlan(
                    jobs=(("read", target, 512),),
                    fault=MasterFault(mode="wild_addr")))
                total_bytes += 512
            else:
                # 1 KiB = 64 beats: even a 31-beat hang leaves more
                # beats undeliverable than the 32-deep eFIFO data queue
                # can hide, so the watchdog provably has work to age
                plans.append(PortPlan(
                    jobs=(("read", base, 1024),),
                    timeout=draw(ROGUE_TIMEOUT),
                    fault=MasterFault(mode="hung_r",
                                      hang_after_beats=draw(
                                          st.integers(0, 31)),
                                      persistent=draw(st.booleans()))))
                total_bytes += 1024
        else:
            kind = draw(st.sampled_from(("read", "write")))
            nbytes = draw(st.sampled_from((256, 512, 1024)))
            plans.append(PortPlan(jobs=((kind, base, nbytes),)))
            total_bytes += nbytes
    horizon = 6_000 + 6 * (total_bytes // BEAT_BYTES)
    return Scenario(
        family="flat",
        ports=tuple(plans),
        grants=tuple((index * span, span) for index in range(n)),
        equal_shares=draw(st.booleans()),
        period=2048,
        horizon=horizon,
        settle=512,
    )


@st.composite
def scenarios(draw, families=FAMILIES, allow_faults: bool = True):
    """Draw one complete :class:`Scenario`.

    At most one fault program per scenario: a rogue master on any
    family, or a memory fault on the in-order DRAM families.  Roughly a
    quarter of draws are fully healthy — the oracles must also hold
    vacuously.  Healthy draws occasionally swap the interconnect fabric
    (baseline SmartConnect / mixed HC+SC) or reserve explicit per-port
    shares; cascade draws occasionally deepen the chain to three levels.
    """
    family = draw(st.sampled_from(families))
    lo, hi = PORT_RANGE[family]
    n_ports = draw(st.integers(lo, hi))
    cascade_depth = (draw(st.sampled_from((2, 2, 2, 3)))
                     if family == "cascade" else 2)
    choices = ["healthy"]
    if allow_faults:
        choices += ["master", "master"]
        if family in MEMORY_FAULT_FAMILIES:
            choices += ["memory", "memory"]
    program = draw(st.sampled_from(choices))
    memory = MemoryFault()
    plans = []
    if program == "master":
        rogue_index = draw(st.integers(0, n_ports - 1))
        for index in range(n_ports):
            if index == rogue_index:
                plans.append(draw(_rogue_plan(index)))
            else:
                plans.append(draw(_healthy_plan(index, armed=False)))
    elif program == "memory":
        # every port is a victim: all watchdogs armed, as in the seeded
        # dead-slave campaign scenario
        memory = draw(_memory_fault())
        for index in range(n_ports):
            plans.append(draw(_healthy_plan(index, armed=True)))
    else:
        for index in range(n_ports):
            plans.append(draw(_healthy_plan(index, armed=False)))
    equal_shares = draw(st.booleans())
    fabric = "hyperconnect"
    shares = None
    if program == "healthy":
        # ~1 in 4 healthy draws swap the fabric (flat -> SmartConnect,
        # multiport -> mixed); non-HC fabrics carry no watchdogs or
        # reservations, so those knobs are stripped
        if family == "flat" and draw(st.integers(0, 3)) == 0:
            fabric = "smartconnect"
        elif family == "multiport" and draw(st.integers(0, 3)) == 0:
            fabric = "mixed"
        if fabric != "hyperconnect":
            equal_shares = False
            plans = [replace(plan, timeout=None) for plan in plans]
        elif family == "flat" and draw(st.integers(0, 3)) == 0:
            # explicit per-port reservation: port 0 reserved (or
            # decoupled at 0.0), the rest left unreserved
            share0 = draw(st.sampled_from((0.0, 0.25, 0.5, 0.75)))
            shares = (share0,) + (1.0,) * (n_ports - 1)
            equal_shares = False
            # a decoupled/reserved port stalls by design; watchdogs off
            plans = [replace(plan, timeout=None) for plan in plans]
    return Scenario(
        family=family,
        ports=tuple(plans),
        memory=memory,
        equal_shares=equal_shares,
        period=2048,
        horizon=12_000,
        cascade_depth=cascade_depth,
        fabric=fabric,
        shares=shares,
    )
