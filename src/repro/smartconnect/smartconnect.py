"""Behavioural model of the Xilinx AXI SmartConnect (the baseline).

The SmartConnect is closed-source, so — like the paper's authors — we can
only characterize it by its externally observable behaviour:

* **measured propagation latencies** (paper Fig. 3a, ZCU102, default
  Vivado auto-tuned configuration): AR/AW 12 cycles, R 11 cycles, W 3
  cycles, B 2 cycles.  Modelled as pipeline depths of the input-side and
  master-side channel stages.
* **round-robin arbitration, ignoring the AxQOS signals** (PG247 pp. 6
  and 8) with a **variable grant granularity**: the paper found
  experimentally that SmartConnect can keep granting the same master for
  up to ``g`` back-to-back transactions before rotating, which inflates
  the worst-case interference per transaction to ``g * (N - 1)``.
* **no burst equalization and no bandwidth reservation**: bursts are
  forwarded unmodified, so masters issuing longer bursts receive a
  proportionally larger share of the data bus ([11]'s unfairness result).
* full streaming throughput: one beat per channel per cycle — the paper
  measures identical throughput for SmartConnect and HyperConnect on
  large transfers.

The model exposes the same structural interface as
:class:`~repro.hyperconnect.hyperconnect.HyperConnect` (``ports`` list +
``master_link``), so experiments can swap interconnects freely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set

from ..axi.payloads import AddrBeat, WriteBeat
from ..axi.port import AxiLink
from ..axi.types import AxiVersion
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.events import PortFaultEvent

#: Input-side pipeline depth per channel (HA -> arbitration core).
INPUT_STAGE_LATENCY = {"AR": 6, "AW": 6, "W": 1, "R": 5, "B": 1}
#: Master-side pipeline depth per channel (arbitration core -> PS).
#: Totals match the paper's measured Fig. 3(a) latencies:
#: AR/AW = 12, R = 11, W = 3, B = 2 cycles.
OUTPUT_STAGE_LATENCY = {"AR": 6, "AW": 6, "W": 2, "R": 6, "B": 1}

#: Default maximum round-robin granularity (transactions granted
#: back-to-back to one master before rotating).  Vivado auto-tunes the
#: real IP; 8 reflects the order of magnitude observed in [3].
DEFAULT_MAX_GRANULARITY = 8


class SmartConnect(Component):
    """N-slave-port, single-master-port SmartConnect model.

    Parameters
    ----------
    n_ports:
        Number of slave ports.
    master_link:
        Link towards the FPGA-PS interface.  Construct it with
        :func:`smartconnect_master_link` so the output-stage latencies are
        applied (a plain unit-latency link underestimates the latency the
        paper measured).
    max_granularity:
        The variable round-robin granularity bound ``g``.
    timeout_cycles:
        Optional transaction watchdog, mirroring the HyperConnect's.
        When armed, a port whose oldest granted transaction stays
        unanswered for this many cycles is declared dead: its pending
        routes are drained (read beats dropped, missing write beats
        flushed as null beats, responses discarded) and it is excluded
        from arbitration.  Unlike the HyperConnect there is *no* orphan
        completion and *no* recovery path — the hung master never sees a
        response and stays hung, which is exactly the baseline behaviour
        the paper's hypervisor-level containment improves upon.
    """

    def __init__(self, sim, name: str, n_ports: int, master_link: AxiLink,
                 max_granularity: int = DEFAULT_MAX_GRANULARITY,
                 timeout_cycles: Optional[int] = None,
                 data_bytes: Optional[int] = None,
                 version: Optional[AxiVersion] = None,
                 addr_depth: int = 8, data_depth: int = 64) -> None:
        super().__init__(sim, name)
        if n_ports < 1:
            raise ConfigurationError("SmartConnect needs >= 1 port")
        if max_granularity < 1:
            raise ConfigurationError("max_granularity must be >= 1")
        self.n_ports = n_ports
        self.master_link = master_link
        self.max_granularity = max_granularity
        data_bytes = (master_link.data_bytes if data_bytes is None
                      else data_bytes)
        version = master_link.version if version is None else version
        self.ports: List[AxiLink] = [
            AxiLink(sim, f"{name}.p{i}", data_bytes=data_bytes,
                    version=version, latency=dict(INPUT_STAGE_LATENCY),
                    addr_depth=addr_depth, data_depth=data_depth)
            for i in range(n_ports)
        ]
        self._rr_ar = 0
        self._rr_aw = 0
        self._hold_ar: Optional[int] = None
        self._hold_aw: Optional[int] = None
        self._streak_ar = 0
        self._streak_aw = 0
        self._route_r: Deque[list] = deque()
        self._route_w: Deque[list] = deque()
        self._route_b: Deque[int] = deque()
        self.grants_ar = 0
        self.grants_aw = 0
        if timeout_cycles is not None and timeout_cycles < 1:
            raise ConfigurationError("timeout_cycles must be >= 1 or None")
        self.timeout_cycles = timeout_cycles
        # absolute-cycle deadlines of granted transactions, per port, in
        # grant order (responses retire per port in grant order too)
        self._read_deadlines: List[Deque[int]] = [deque()
                                                  for _ in range(n_ports)]
        self._write_deadlines: List[Deque[int]] = [deque()
                                                   for _ in range(n_ports)]
        self._dead_ports: Set[int] = set()
        self.watchdog_trips = 0
        self.dropped_beats = 0
        self.flushed_w_beats = 0

    # ------------------------------------------------------------------
    # variable-granularity round-robin
    # ------------------------------------------------------------------

    def _pick(self, channels: List, pointer: int, holder: Optional[int],
              streak: int) -> tuple:
        """Choose the port to grant next; returns (port, holder, streak).

        While the held port keeps presenting back-to-back requests and its
        streak is below ``max_granularity``, it retains the grant — the
        behaviour that penalizes SmartConnect's worst case.
        """
        if (holder is not None and holder not in self._dead_ports
                and streak < self.max_granularity
                and channels[holder].can_pop()):
            return holder, holder, streak + 1
        for offset in range(self.n_ports):
            port = (pointer + offset) % self.n_ports
            if port in self._dead_ports:
                continue
            if channels[port].can_pop():
                return port, port, 1
        return None, None, 0

    # ------------------------------------------------------------------
    # mirror watchdog (no containment quality: drop, don't complete)
    # ------------------------------------------------------------------

    def _check_watchdogs(self, cycle: int) -> None:
        for port in range(self.n_ports):
            if port in self._dead_ports:
                continue
            reads = self._read_deadlines[port]
            writes = self._write_deadlines[port]
            if not ((reads and reads[0] <= cycle)
                    or (writes and writes[0] <= cycle)):
                continue
            self._dead_ports.add(port)
            self.watchdog_trips += 1
            self.sim.events.publish(PortFaultEvent(
                cycle=cycle, source=self.name, port=port,
                kind="watchdog_timeout", age=self.timeout_cycles,
                outstanding_reads=len(reads),
                outstanding_writes=len(writes)))
            reads.clear()
            writes.clear()

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if self.timeout_cycles is not None:
            self._check_watchdogs(cycle)
        # AR arbitration: at most one grant per cycle
        if self.master_link.ar.can_push():
            ar_channels = [link.ar for link in self.ports]
            port, self._hold_ar, self._streak_ar = self._pick(
                ar_channels, self._rr_ar, self._hold_ar, self._streak_ar)
            if port is not None:
                beat: AddrBeat = ar_channels[port].pop()
                beat.port = port
                beat.stamps["sc_grant"] = cycle
                self.master_link.ar.push(beat)
                self.grants_ar += 1
                self._rr_ar = (port + 1) % self.n_ports
                self._route_r.append([port, beat, beat.length])
                if self.timeout_cycles is not None:
                    self._read_deadlines[port].append(
                        cycle + self.timeout_cycles)
        # AW arbitration
        if self.master_link.aw.can_push():
            aw_channels = [link.aw for link in self.ports]
            port, self._hold_aw, self._streak_aw = self._pick(
                aw_channels, self._rr_aw, self._hold_aw, self._streak_aw)
            if port is not None:
                beat = aw_channels[port].pop()
                beat.port = port
                beat.stamps["sc_grant"] = cycle
                self.master_link.aw.push(beat)
                self.grants_aw += 1
                self._rr_aw = (port + 1) % self.n_ports
                self._route_w.append([port, beat, beat.length])
                self._route_b.append(port)
                if self.timeout_cycles is not None:
                    self._write_deadlines[port].append(
                        cycle + self.timeout_cycles)
        self._route_write_data()
        self._route_read_data()
        self._route_write_responses()

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick`, including one subtlety: an arbitration
        attempt that finds *no* requester still clears the held-grant
        state (``_pick`` returns ``(None, None, 0)``), so a cycle with a
        pushable master address channel and a live holder/streak is a
        state change and must not be skipped.
        """
        if self.timeout_cycles is not None:
            for port in range(self.n_ports):
                if port in self._dead_ports:
                    continue
                reads = self._read_deadlines[port]
                writes = self._write_deadlines[port]
                if ((reads and reads[0] <= cycle)
                        or (writes and writes[0] <= cycle)):
                    return False  # a watchdog would trip this cycle
        master = self.master_link
        dead = self._dead_ports
        if master.ar.can_push():
            if self._hold_ar is not None or self._streak_ar != 0:
                return False
            for index, link in enumerate(self.ports):
                if index not in dead and link.ar.can_pop():
                    return False
        if master.aw.can_push():
            if self._hold_aw is not None or self._streak_aw != 0:
                return False
            for index, link in enumerate(self.ports):
                if index not in dead and link.aw.can_pop():
                    return False
        if (self._route_w and master.w.can_push()
                and (self._route_w[0][0] in dead
                     or self.ports[self._route_w[0][0]].w.can_pop())):
            return False
        if (self._route_r and master.r.can_pop()
                and (self._route_r[0][0] in dead
                     or self.ports[self._route_r[0][0]].r.can_push())):
            return False
        if (self._route_b and master.b.can_pop()
                and (self._route_b[0] in dead
                     or self.ports[self._route_b[0]].b.can_push())):
            return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest armed watchdog deadline over the live ports."""
        if self.timeout_cycles is None:
            return None
        horizon: Optional[int] = None
        for port in range(self.n_ports):
            if port in self._dead_ports:
                continue
            for deadlines in (self._read_deadlines[port],
                              self._write_deadlines[port]):
                if deadlines and (horizon is None
                                  or deadlines[0] < horizon):
                    horizon = deadlines[0]
        return horizon

    def wake_channels(self) -> list:
        """Master-side channels plus every slave port's five channels.

        A live held grant with a full master address channel stays
        dormant until that channel frees a slot — a commit on the watched
        master channel — so the holder/streak subtlety needs no extra
        wake source.  Watchdog deadlines ride :meth:`next_event_cycle`.
        """
        master = self.master_link
        channels = [master.ar, master.aw, master.w, master.r, master.b]
        for link in self.ports:
            channels.extend((link.ar, link.aw, link.w, link.r, link.b))
        return channels

    # ------------------------------------------------------------------
    # data-path routing (no equalization: bursts pass through unmodified)
    # ------------------------------------------------------------------

    def _route_write_data(self) -> None:
        if not self._route_w or not self.master_link.w.can_push():
            return
        entry = self._route_w[0]
        port, request, beats_left = entry
        if port in self._dead_ports:
            # the hung master withholds its W beats; flush null beats so
            # the already-granted burst completes downstream
            self.master_link.w.push(WriteBeat(last=beats_left == 1,
                                              addr_beat=request))
            self.flushed_w_beats += 1
        else:
            source = self.ports[port].w
            if not source.can_pop():
                return
            self.master_link.w.push(source.pop())
        entry[2] = beats_left - 1
        if entry[2] == 0:
            self._route_w.popleft()

    def _route_read_data(self) -> None:
        if not self.master_link.r.can_pop() or not self._route_r:
            return
        entry = self._route_r[0]
        port, __, beats_left = entry
        if port in self._dead_ports:
            self.master_link.r.pop()
            self.dropped_beats += 1
        else:
            destination = self.ports[port].r
            if not destination.can_push():
                return
            destination.push(self.master_link.r.pop())
        entry[2] = beats_left - 1
        if entry[2] == 0:
            self._route_r.popleft()
            if self._read_deadlines[port]:
                self._read_deadlines[port].popleft()

    def _route_write_responses(self) -> None:
        if not self.master_link.b.can_pop() or not self._route_b:
            return
        port = self._route_b[0]
        if port in self._dead_ports:
            self.master_link.b.pop()
            self.dropped_beats += 1
        else:
            destination = self.ports[port].b
            if not destination.can_push():
                return
            destination.push(self.master_link.b.pop())
        self._route_b.popleft()
        if self._write_deadlines[port]:
            self._write_deadlines[port].popleft()

    # ------------------------------------------------------------------

    def port(self, index: int) -> AxiLink:
        """The slave link HAs connect to (HyperConnect-compatible API)."""
        return self.ports[index]

    def idle(self) -> bool:
        """True when nothing is queued inside the interconnect."""
        return (all(link.is_idle() for link in self.ports)
                and not self._route_r and not self._route_w
                and not self._route_b)


def smartconnect_master_link(sim, name: str, data_bytes: int = 16,
                             version: AxiVersion = AxiVersion.AXI4,
                             addr_depth: int = 16,
                             data_depth: int = 64) -> AxiLink:
    """Master-side link with the SmartConnect output-stage latencies."""
    return AxiLink(sim, name, data_bytes=data_bytes, version=version,
                   latency=dict(OUTPUT_STAGE_LATENCY),
                   addr_depth=addr_depth, data_depth=data_depth)
