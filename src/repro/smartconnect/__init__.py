"""Baseline interconnect: behavioural Xilinx AXI SmartConnect model."""

from .smartconnect import (
    DEFAULT_MAX_GRANULARITY,
    INPUT_STAGE_LATENCY,
    OUTPUT_STAGE_LATENCY,
    SmartConnect,
    smartconnect_master_link,
)

__all__ = [
    "DEFAULT_MAX_GRANULARITY",
    "INPUT_STAGE_LATENCY",
    "OUTPUT_STAGE_LATENCY",
    "SmartConnect",
    "smartconnect_master_link",
]
