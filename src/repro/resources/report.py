"""Table I rendering: resource consumption report."""

from __future__ import annotations

from typing import List

from ..platforms.zynq import Platform
from .model import (
    ResourceEstimate,
    hyperconnect_resources,
    smartconnect_resources,
)


def _row(name: str, estimate: ResourceEstimate,
         platform: Platform) -> str:
    util = estimate.utilization(platform.resources)
    return (f"{name:<14} {estimate.lut:>6} ({util['lut'] * 100:4.1f}%)  "
            f"{estimate.ff:>6} ({util['ff'] * 100:4.1f}%)  "
            f"{estimate.bram:>4}  {estimate.dsp:>4}")


def resource_table(platform: Platform, n_ports: int = 2,
                   data_bytes: int = 16) -> str:
    """Render Table I for a platform/configuration as text."""
    lines: List[str] = [
        f"Resource consumption — {platform.name} "
        f"(N={n_ports}, {data_bytes * 8}-bit)",
        f"{'':<14} {'LUT (' + str(platform.resources.lut) + ')':>14}  "
        f"{'FF (' + str(platform.resources.ff) + ')':>14}  BRAM   DSP",
        _row("HyperConnect",
             hyperconnect_resources(n_ports, data_bytes), platform),
        _row("SmartConnect",
             smartconnect_resources(n_ports, data_bytes), platform),
    ]
    return "\n".join(lines)
