"""Parametric FPGA resource-consumption model (Table I).

The paper reports post-synthesis resource usage on the ZCU102 for the
two-input case-study configuration (Vivado 2018.2):

===============  ======  ======  =====  ====
IP               LUT     FF      BRAM   DSP
===============  ======  ======  =====  ====
HyperConnect     3 020   1 289   0      0
SmartConnect     3 785   7 137   0      0
===============  ======  ======  =====  ====

We cannot run Vivado, so this module provides an *analytic estimator*:
per-module LUT/FF costs (linear in the number of ports, scaled by bus
width) whose coefficients are calibrated such that the N=2, 128-bit
configuration reproduces the paper's numbers exactly.  The per-module
breakdown follows the architecture (eFIFOs dominate registers, the TS
dominates logic); neither IP uses BRAM (the circular buffers map to
distributed LUT-RAM) nor DSPs.

The estimator is useful beyond Table I: it extrapolates the scaling trend
to other port counts and widths, which the benchmarks exercise as an
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.errors import ConfigurationError

#: reference bus width the coefficients are calibrated at
_REFERENCE_WIDTH_BITS = 128

# HyperConnect per-module coefficients (LUT, FF) at 128-bit width,
# calibrated to Table I (N=2: 3020 LUT / 1289 FF)
_HC_EFIFO_SLAVE = (430, 170)     # per port
_HC_TS = (520, 210)              # per port
_HC_EXBAR_BASE = (180, 60)
_HC_EXBAR_PER_PORT = (115, 40)
_HC_EFIFO_MASTER = (430, 170)
_HC_CENTRAL = (280, 219)         # central unit + register file

# SmartConnect coefficients, calibrated to Table I (N=2: 3785 / 7137).
# The heavy FF count reflects its deep pipeline stages.
_SC_BASE = (1501, 2001)
_SC_PER_PORT = (1142, 2568)


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of one IP configuration."""

    lut: int
    ff: int
    bram: int = 0
    dsp: int = 0

    def utilization(self, totals) -> Dict[str, float]:
        """Fraction of a platform's resources consumed (0..1 each)."""
        return {
            "lut": self.lut / totals.lut,
            "ff": self.ff / totals.ff,
            "bram": self.bram / totals.bram if totals.bram else 0.0,
            "dsp": self.dsp / totals.dsp if totals.dsp else 0.0,
        }

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(self.lut + other.lut, self.ff + other.ff,
                                self.bram + other.bram,
                                self.dsp + other.dsp)


def _width_factor(data_bytes: int) -> float:
    """Width scaling: datapath resources grow ~linearly with bus width,
    control logic does not; a 50/50 split fits FIFO-dominated IPs."""
    if data_bytes < 1:
        raise ConfigurationError("data_bytes must be >= 1")
    return 0.5 + 0.5 * (data_bytes * 8) / _REFERENCE_WIDTH_BITS


def _scale(pair, factor: float, count: int = 1) -> ResourceEstimate:
    lut, ff = pair
    return ResourceEstimate(round(lut * factor) * count,
                            round(ff * factor) * count)


def hyperconnect_resources(n_ports: int,
                           data_bytes: int = 16) -> ResourceEstimate:
    """Estimated HyperConnect usage for ``n_ports`` ports."""
    if n_ports < 1:
        raise ConfigurationError("n_ports must be >= 1")
    factor = _width_factor(data_bytes)
    total = ResourceEstimate(0, 0)
    total = total + _scale(_HC_EFIFO_SLAVE, factor, n_ports)
    total = total + _scale(_HC_TS, factor, n_ports)
    total = total + _scale(_HC_EXBAR_BASE, factor)
    total = total + _scale(_HC_EXBAR_PER_PORT, factor, n_ports)
    total = total + _scale(_HC_EFIFO_MASTER, factor)
    total = total + _scale(_HC_CENTRAL, 1.0)  # control logic: width-free
    return total


def hyperconnect_breakdown(n_ports: int,
                           data_bytes: int = 16
                           ) -> Dict[str, ResourceEstimate]:
    """Per-module breakdown of :func:`hyperconnect_resources`."""
    factor = _width_factor(data_bytes)
    return {
        "efifo_slave_ports": _scale(_HC_EFIFO_SLAVE, factor, n_ports),
        "transaction_supervisors": _scale(_HC_TS, factor, n_ports),
        "exbar": (_scale(_HC_EXBAR_BASE, factor)
                  + _scale(_HC_EXBAR_PER_PORT, factor, n_ports)),
        "efifo_master": _scale(_HC_EFIFO_MASTER, factor),
        "central_unit": _scale(_HC_CENTRAL, 1.0),
    }


def smartconnect_resources(n_ports: int,
                           data_bytes: int = 16) -> ResourceEstimate:
    """Estimated SmartConnect usage for ``n_ports`` ports."""
    if n_ports < 1:
        raise ConfigurationError("n_ports must be >= 1")
    factor = _width_factor(data_bytes)
    return _scale(_SC_BASE, factor) + _scale(_SC_PER_PORT, factor, n_ports)
