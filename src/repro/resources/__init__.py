"""Parametric FPGA resource estimation (Table I)."""

from .model import (
    ResourceEstimate,
    hyperconnect_breakdown,
    hyperconnect_resources,
    smartconnect_resources,
)
from .report import resource_table

__all__ = [
    "ResourceEstimate",
    "hyperconnect_breakdown",
    "hyperconnect_resources",
    "smartconnect_resources",
    "resource_table",
]
