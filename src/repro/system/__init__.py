"""High-level system assembly and experiment harnesses."""

from .builder import SocSystem
from .report import BusUtilizationMonitor
from .experiment import (
    CASE_STUDY_DMA_BYTES,
    CaseStudyResult,
    ChannelLatencies,
    measure_access_time,
    measure_channel_latencies,
    run_case_study,
)

__all__ = [
    "SocSystem",
    "BusUtilizationMonitor",
    "CASE_STUDY_DMA_BYTES",
    "CaseStudyResult",
    "ChannelLatencies",
    "measure_access_time",
    "measure_channel_latencies",
    "run_case_study",
]
