"""System builder: assemble a complete simulated FPGA SoC in one call.

:class:`SocSystem` wires together the pieces every experiment needs — a
simulator clocked at the platform's PL frequency, an interconnect
(HyperConnect or the SmartConnect baseline), the FPGA-PS-side memory
subsystem, and optionally a functional backing store — exposing the
interconnect's slave ports for hardware accelerators to attach to.

This is the library's main entry point::

    from repro.system import SocSystem
    from repro.platforms import ZCU102

    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2)
    dma = AxiDma(soc.sim, "dma", soc.port(0))
    ...
    soc.sim.run(100_000)
"""

from __future__ import annotations

import os
from typing import Optional, Union

from ..axi.port import AxiLink
from ..hyperconnect.driver import HyperConnectDriver
from ..hyperconnect.hyperconnect import HyperConnect
from ..memory.dram import MemorySubsystem
from ..memory.store import MemoryStore
from ..platforms.zynq import ZCU102, Platform
from ..sim.errors import ConfigurationError
from ..sim.kernel import Simulator
from ..smartconnect.smartconnect import (
    SmartConnect,
    smartconnect_master_link,
)

Interconnect = Union[HyperConnect, SmartConnect]


class SocSystem:
    """A fully wired FPGA SoC simulation.

    Build instances with :meth:`build`; the constructor is the low-level
    wiring path for callers that need custom links.
    """

    def __init__(self, sim: Simulator, platform: Platform,
                 interconnect: Interconnect, memory: MemorySubsystem,
                 store: Optional[MemoryStore]) -> None:
        self.sim = sim
        self.platform = platform
        self.interconnect = interconnect
        self.memory = memory
        self.store = store
        self.driver: Optional[HyperConnectDriver] = None
        if isinstance(interconnect, HyperConnect):
            self.driver = HyperConnectDriver(interconnect)

    # ------------------------------------------------------------------

    @classmethod
    def build(cls, platform: Platform = ZCU102,
              interconnect: str = "hyperconnect", n_ports: int = 2,
              period: int = 65536, with_store: bool = False,
              max_granularity: Optional[int] = None,
              name: str = "soc", fast: bool = False,
              parallel: Optional[int] = None,
              parallel_backend: Optional[str] = None,
              tlm: Optional[bool] = None) -> "SocSystem":
        """Assemble a system.

        Parameters
        ----------
        platform:
            Clock/width/DRAM-timing source (default ZCU102, the paper's
            reported platform).
        interconnect:
            ``"hyperconnect"`` or ``"smartconnect"``.
        n_ports:
            Number of interconnect slave ports (the paper's case study
            uses 2).
        period:
            HyperConnect reservation period T (ignored for SmartConnect).
        with_store:
            Attach a functional :class:`MemoryStore` (needed only when
            experiments verify data contents).
        max_granularity:
            Override the SmartConnect's variable round-robin granularity.
        fast:
            Enable the simulator's quiescence-aware fast path (same
            results, fewer Python-level ticks; see ``repro.sim.kernel``).
        parallel:
            Worker count for the sharded parallel tick engine (same
            results again; see ``repro.sim.parallel``).  ``None`` reads
            the ``REPRO_PARALLEL`` environment variable (default 0,
            i.e. disabled), so whole experiment suites can be switched
            over without touching call sites.
        parallel_backend:
            Engine backend for the sharded tick engine ("auto",
            "inline", "threads", or "processes").  ``None`` reads the
            ``REPRO_PARALLEL_BACKEND`` environment variable (default
            "auto"), mirroring ``REPRO_PARALLEL``.
        tlm:
            Transaction-level fast-forward mode (see ``repro.sim.tlm``):
            steady-state reservation traffic advances one epoch per
            step, demoting to cycle-accurate execution at every
            non-predictable edge.  ``None`` reads the ``REPRO_TLM``
            environment variable (default off), mirroring
            ``REPRO_PARALLEL``.
        """
        if parallel is None:
            parallel = int(os.environ.get("REPRO_PARALLEL", "0") or 0)
        if parallel_backend is None:
            parallel_backend = os.environ.get(
                "REPRO_PARALLEL_BACKEND", "auto") or "auto"
        if tlm is None:
            tlm = os.environ.get("REPRO_TLM", "") not in ("", "0")
        sim = Simulator(name, clock_hz=platform.pl_clock_hz, fast=fast,
                        parallel=parallel,
                        parallel_backend=parallel_backend, tlm=tlm)
        store = MemoryStore() if with_store else None
        if interconnect == "hyperconnect":
            master = AxiLink(sim, f"{name}.m",
                             data_bytes=platform.hp_data_bytes)
            fabric: Interconnect = HyperConnect(
                sim, f"{name}.hc", n_ports, master, period=period)
        elif interconnect == "smartconnect":
            master = smartconnect_master_link(
                sim, f"{name}.m", data_bytes=platform.hp_data_bytes)
            kwargs = {}
            if max_granularity is not None:
                kwargs["max_granularity"] = max_granularity
            fabric = SmartConnect(sim, f"{name}.sc", n_ports, master,
                                  **kwargs)
        else:
            raise ConfigurationError(
                f"unknown interconnect {interconnect!r} "
                f"(expected 'hyperconnect' or 'smartconnect')")
        memory = MemorySubsystem(sim, f"{name}.mem", master,
                                 timing=platform.dram, store=store)
        return cls(sim, platform, fabric, memory, store)

    # ------------------------------------------------------------------

    def port(self, index: int) -> AxiLink:
        """Slave port ``index`` of the interconnect (attach an HA here)."""
        return self.interconnect.ports[index]

    @property
    def master_link(self) -> AxiLink:
        """The interconnect's master-side link (towards the PS)."""
        return self.interconnect.master_link

    def run_until_quiescent(self, settle_cycles: int = 64,
                            max_cycles: int = 10_000_000) -> int:
        """Run until all traffic has drained; returns elapsed cycles."""
        start = self.sim.now

        def _quiet() -> bool:
            return (self.sim.idle() and self.memory.idle()
                    and self.interconnect.idle())

        quiet_since = [None]

        def _done() -> bool:
            if _quiet():
                if quiet_since[0] is None:
                    quiet_since[0] = self.sim.now
                return self.sim.now - quiet_since[0] >= settle_cycles
            quiet_since[0] = None
            return False

        self.sim.run_until(_done, max_cycles=max_cycles)
        return self.sim.now - start
