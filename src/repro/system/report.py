"""Bus utilization monitoring and text reporting.

Answers the operations questions a system integrator asks after wiring a
design: how busy is the FPGA-PS port, who is consuming it, and how did
that evolve over time?  The monitor taps the interconnect's master-side
data channels, attributes every beat to its originating input port (via
the routing metadata the interconnect stamps on address beats), and bins
the counts into fixed windows.

The renderer produces terminal-friendly tables and bar charts — no
plotting dependencies, consistent with the library's zero-dependency
policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..axi.port import AxiLink

_UNATTRIBUTED = -1


class BusUtilizationMonitor:
    """Windowed per-port accounting of data beats on a link.

    Parameters
    ----------
    link:
        The interconnect's master-side link (or any link to observe).
    window:
        Bin width in cycles for the time series.
    """

    def __init__(self, link: AxiLink, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.link = link
        self.window = window
        #: window index -> port -> beats
        self._bins: Dict[int, Dict[int, int]] = {}
        self.total_beats = 0
        self.read_beats = 0
        self.write_beats = 0
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None
        link.r.subscribe_pop(self._on_read)
        link.w.subscribe_pop(self._on_write)

    # ------------------------------------------------------------------

    @staticmethod
    def _port_of(beat) -> int:
        addr_beat = getattr(beat, "addr_beat", None)
        if addr_beat is None or addr_beat.port is None:
            return _UNATTRIBUTED
        return addr_beat.port

    def _record(self, cycle: int, beat) -> None:
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle
        self.total_beats += 1
        window_index = cycle // self.window
        bucket = self._bins.setdefault(window_index, {})
        port = self._port_of(beat)
        bucket[port] = bucket.get(port, 0) + 1

    def _on_read(self, cycle: int, beat) -> None:
        self.read_beats += 1
        self._record(cycle, beat)

    def _on_write(self, cycle: int, beat) -> None:
        self.write_beats += 1
        self._record(cycle, beat)

    # ------------------------------------------------------------------

    def utilization(self) -> float:
        """Average data-bus utilization over the observed span (0..1)."""
        if self.total_beats == 0 or self._last_cycle is None:
            return 0.0
        span = max(1, self._last_cycle - (self._first_cycle or 0) + 1)
        return min(1.0, self.total_beats / span)

    def port_shares(self) -> Dict[int, float]:
        """Fraction of observed beats attributable to each port."""
        counts: Dict[int, int] = {}
        for bucket in self._bins.values():
            for port, beats in bucket.items():
                counts[port] = counts.get(port, 0) + beats
        if not counts:
            return {}
        total = sum(counts.values())
        return {port: beats / total for port, beats in counts.items()}

    def series(self) -> List[Dict[int, int]]:
        """Per-window port->beats dictionaries, oldest first."""
        if not self._bins:
            return []
        first = min(self._bins)
        last = max(self._bins)
        return [dict(self._bins.get(index, {}))
                for index in range(first, last + 1)]

    # ------------------------------------------------------------------

    def render(self, width: int = 50) -> str:
        """Terminal report: totals, per-port split, and a timeline."""
        lines = [
            f"bus utilization: {self.utilization():.1%} "
            f"({self.total_beats} beats: {self.read_beats} R / "
            f"{self.write_beats} W; window {self.window} cycles)",
        ]
        shares = self.port_shares()
        for port in sorted(shares):
            label = ("unattributed" if port == _UNATTRIBUTED
                     else f"port {port}")
            bar = "#" * round(shares[port] * width)
            lines.append(f"  {label:<14}{shares[port]:>7.1%}  {bar}")
        series = self.series()
        if series:
            lines.append("timeline (beats per window, all ports):")
            peak = max((sum(bucket.values()) for bucket in series),
                       default=1) or 1
            for index, bucket in enumerate(series):
                total = sum(bucket.values())
                bar = "#" * round(total / peak * width)
                lines.append(f"  w{index:<4}{total:>8}  {bar}")
        return "\n".join(lines)
