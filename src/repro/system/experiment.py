"""Reusable experiment harnesses for the paper's evaluation.

Each function reproduces the measurement procedure of one part of
Section VI on the simulated platform, parameterized by interconnect kind.
The benchmark scripts in ``benchmarks/`` and the shape tests in
``tests/test_end_to_end.py`` both call these, so the numbers reported by
either always come from the same procedure.

Workload scaling: the paper's case study moves 4 MiB per DMA round and
runs full GoogleNet frames.  Cycle-accurate simulation of minutes of
traffic is unnecessary to reproduce the *shapes* (rate ratios between
configurations), so the harnesses accept a ``scale`` knob that shrinks
both workloads proportionally; ratios are preserved.  EXPERIMENTS.md
records the scales used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..axi.monitor import PropagationProbe
from ..masters.chaidnn import ChaiDnnAccelerator
from ..masters.dma import AxiDma, DmaDescriptor
from ..platforms.zynq import ZCU102, Platform
from .builder import SocSystem

#: paper's case-study DMA payload (4 MiB in + 4 MiB out per round)
CASE_STUDY_DMA_BYTES = 4 << 20


@dataclass(frozen=True)
class ChannelLatencies:
    """Per-channel propagation latency through an interconnect, cycles."""

    ar: int
    aw: int
    r: int
    w: int
    b: int

    def as_dict(self) -> Dict[str, int]:
        return {"AR": self.ar, "AW": self.aw, "R": self.r, "W": self.w,
                "B": self.b}

    @property
    def read_total(self) -> int:
        """d_AR + d_R: total added to every read transaction."""
        return self.ar + self.r

    @property
    def write_total(self) -> int:
        """d_AW + d_W + d_B: total added to every write transaction."""
        return self.aw + self.w + self.b


def measure_channel_latencies(interconnect: str,
                              platform: Platform = ZCU102,
                              fast: bool = False,
                              parallel: Optional[int] = None,
                              ) -> ChannelLatencies:
    """Fig. 3(a) procedure: per-channel propagation in isolation.

    One DMA issues a read and a write; probes time each beat from its
    appearance on the HA-side channel to its consumption on the PS side
    (and vice versa for the return channels).  The W channel is measured
    with spaced-out beats so the interconnect pipeline is observed
    without producer-side queueing (see the engine's ``w_beat_gap``).
    """
    soc = SocSystem.build(platform, interconnect=interconnect, n_ports=2,
                          fast=fast, parallel=parallel)
    probes = {
        "AR": PropagationProbe(soc.port(0).ar, soc.master_link.ar),
        "AW": PropagationProbe(soc.port(0).aw, soc.master_link.aw),
        "W": PropagationProbe(soc.port(0).w, soc.master_link.w),
        "R": PropagationProbe(soc.master_link.r, soc.port(0).r),
        "B": PropagationProbe(soc.master_link.b, soc.port(0).b),
    }
    dma = AxiDma(soc.sim, "probe-dma", soc.port(0), w_beat_gap=16)
    dma.enqueue_read(0x1000_0000, 16 * platform.hp_data_bytes)
    dma.enqueue_write(0x2000_0000, 16 * platform.hp_data_bytes)
    soc.run_until_quiescent()
    return ChannelLatencies(
        ar=int(probes["AR"].latency_max),
        aw=int(probes["AW"].latency_max),
        r=int(probes["R"].latency_max),
        w=int(probes["W"].stats.minimum),   # steady-state (no queueing)
        b=int(probes["B"].latency_max),
    )


def measure_access_time(interconnect: str, nbytes: int,
                        platform: Platform = ZCU102,
                        fast: bool = False,
                        parallel: Optional[int] = None) -> int:
    """Fig. 3(b) procedure: memory access time for one transfer size.

    A single DMA reads ``nbytes`` through an otherwise idle system; the
    result is the cycles from the first AR to the last R beat (the
    paper's "maximum memory access time" — max equals the single
    measurement here because the system is deterministic in isolation).
    """
    soc = SocSystem.build(platform, interconnect=interconnect, n_ports=2,
                          fast=fast, parallel=parallel)
    dma = AxiDma(soc.sim, "dma", soc.port(0))
    job = dma.enqueue_read(0x1000_0000, nbytes)
    soc.run_until_quiescent(max_cycles=50_000_000)
    assert job.latency is not None
    return job.latency


@dataclass(frozen=True)
class CaseStudyResult:
    """Outcome of one case-study run (Fig. 4 / Fig. 5 procedure)."""

    chaidnn_fps: float
    dma_rate: float
    chaidnn_frames: int
    dma_rounds: int
    window_cycles: int
    #: the kernel's skip/fast-forward counters for the run
    #: (:meth:`repro.sim.stats.KernelSkipStats.as_dict`) — how the
    #: window was actually executed: cycles skipped by the fast path,
    #: TLM epochs committed, demotion reasons.  Benchmarks surface
    #: these in their JSON sidecars.  Excluded from equality: it
    #: describes the execution strategy, not the result, and differs
    #: between equivalent kernel modes by design.
    skip_stats: Optional[Dict[str, object]] = field(default=None,
                                                    compare=False)


def run_case_study(interconnect: str,
                   run_chaidnn: bool = True,
                   run_dma: bool = True,
                   shares: Optional[Dict[int, float]] = None,
                   scale: float = 1 / 64,
                   window_cycles: int = 400_000,
                   platform: Platform = ZCU102,
                   period: int = 2048,
                   dma_burst_len: int = 64,
                   fast: bool = False,
                   parallel: Optional[int] = None,
                   tlm: Optional[bool] = None) -> CaseStudyResult:
    """Sections VI-C procedure: CHaiDNN (port 0) + greedy DMA (port 1).

    ``shares`` maps port index to a reserved bandwidth fraction (the
    HC-X-Y configurations); only valid with the HyperConnect.  ``scale``
    shrinks both workloads equally (CHaiDNN layer bytes/MACs and the DMA
    round payload), preserving rate *ratios* between configurations.

    ``dma_burst_len`` makes HA_DMA "more greedy in accessing the bus"
    than the 16-beat CHaiDNN: through a variable-granularity round-robin
    with no equalization it then takes most of the bandwidth.  64 beats
    (4x the CHaiDNN burst) reproduces the starvation shape within
    simulation windows short enough for repeated benchmarking.
    """
    soc = SocSystem.build(platform, interconnect=interconnect, n_ports=2,
                          period=period, fast=fast, parallel=parallel,
                          tlm=tlm)
    chaidnn = None
    dma = None
    if run_chaidnn:
        chaidnn = ChaiDnnAccelerator(soc.sim, "chaidnn", soc.port(0),
                                     scale=scale)
        chaidnn.start()
    if run_dma:
        beat = platform.hp_data_bytes
        dma_bytes = max(4096, int(CASE_STUDY_DMA_BYTES * scale))
        dma_bytes = (dma_bytes // beat) * beat   # bus-width aligned
        dma = AxiDma(soc.sim, "ha-dma", soc.port(1),
                     burst_len=dma_burst_len)
        dma.program([DmaDescriptor("read", 0x1000_0000, dma_bytes),
                     DmaDescriptor("write", 0x2000_0000, dma_bytes)],
                    repeat=True)
        dma.start()
    if shares:
        if soc.driver is None:
            raise ValueError(
                "bandwidth shares require the HyperConnect; the "
                "SmartConnect has no reservation mechanism (the paper's "
                "point)")
        soc.driver.set_bandwidth_shares(shares)
    soc.sim.run(window_cycles)
    return CaseStudyResult(
        chaidnn_fps=(chaidnn.frame_rate.rate(window_cycles)
                     if chaidnn else 0.0),
        dma_rate=dma.round_rate.rate(window_cycles) if dma else 0.0,
        chaidnn_frames=chaidnn.frames_completed if chaidnn else 0,
        dma_rounds=dma.rounds_completed if dma else 0,
        window_cycles=window_cycles,
        skip_stats=soc.sim.skip_stats.as_dict(),
    )
