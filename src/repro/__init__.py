"""repro — cycle-accurate reproduction of the AXI HyperConnect (DAC 2020).

A production-quality Python simulation library reproducing *"AXI
HyperConnect: A Predictable, Hypervisor-level Interconnect for Hardware
Accelerators in FPGA SoC"* (Restuccia, Biondi, Marinoni, Cicero, Buttazzo —
DAC 2020): the HyperConnect IP itself, a SmartConnect baseline, the AXI
protocol substrate, the PS/DRAM memory subsystem, DMA and CHaiDNN-like
accelerator models, a hypervisor layer, and closed-form predictability
analysis.

Quickstart::

    from repro.system import SocSystem
    from repro.platforms import ZCU102
    from repro.masters import AxiDma

    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2)
    dma = AxiDma(soc.sim, "dma0", soc.port(0))
    dma.enqueue_read(0x1000_0000, 4096)
    soc.run_until_quiescent()
    print(dma.job_latency.as_dict())
"""

__version__ = "1.0.0"

from . import axi, masters, memory, platforms, sim
from .hyperconnect import HyperConnect, HyperConnectDriver
from .smartconnect import SmartConnect
from .system import SocSystem

__all__ = [
    "axi",
    "masters",
    "memory",
    "platforms",
    "sim",
    "HyperConnect",
    "HyperConnectDriver",
    "SmartConnect",
    "SocSystem",
    "__version__",
]
