"""Transaction-level fast-forward engine (``Simulator(tlm=True)``).

The saturated-contention window is the honest ceiling of skip-based
scheduling: with every component busy every cycle there are no freezable
cycles, so the fast path pays full per-cycle cost.  This module goes past
that ceiling the way the TLM literature does (Prediction Packetizing
Scheme; Rapid Cycle-Accurate Simulator for HLS): when the pending traffic
of every awake component matches a closed-form pattern, a whole
*epoch* — up to one reservation period — is advanced in a single step
using the analytic latency/reservation models in :mod:`repro.analysis`,
and the kernel drops back to cycle-accurate execution at every edge the
models cannot predict.

The protocol per attempted epoch is *predict / commit / rollback*:

1. **Detect** (:meth:`TlmEngine._classify`): static eligibility (exactly
   one HyperConnect fabric — one :class:`CentralUnit`, one
   :class:`Exbar` — a plain timing-only memory, whitelisted master
   engines on the ports) plus dynamic eligibility (no faults armed
   in-window, no revocation orders pending, watchdogs disarmed, region
   filters off, no foreign channel listeners, all non-fabric channels
   idle, every unclassified component quiescent past the epoch end).
   Any failed check *declines* the epoch with a recorded demotion reason
   and the window runs cycle-accurately — byte-identical to
   ``fast=True`` by construction, because the decline path mutates
   nothing.
2. **Snapshot**: a generic shallow-copy snapshot of every component,
   link checker, job and fabric channel (plus the global transaction
   serial counter), so a mispredicted epoch can be rolled back and
   replayed cycle-accurately with identical results.
3. **Flush**: in-flight traffic (outstanding bursts, routed beats,
   queued memory commands, expected W beats) is credited as complete and
   cleared, putting the fabric in the regular state the analytic models
   describe.
4. **Account**: a virtual-cycle bus cursor serves one supervisor-split
   sub-burst per engine per round-robin turn — the EXBAR's
   granularity-1 fairness — deducting reservation budgets whole-request
   up front, driving accelerator phase machines and completion
   callbacks at their virtual completion cycles, until the epoch's bus
   capacity is spent.  Partially-served bursts are re-queued as
   remainder requests so cycle-accurate execution resumes seamlessly.
5. **Commit / rollback**: on success the clock jumps to the epoch end
   and every component is woken; on any validation failure (or the
   test-only forced-mispredict hook) the snapshot is restored, the
   rollback is counted, and the same window replays cycle-accurately.

Fidelity contract: committed epochs preserve *byte totals, job
completion, budget enforcement and rate behaviour* within analytic
bounds (checked by the ``tlm`` oracle in :mod:`repro.verify.oracles`),
but do not reproduce per-cycle observables (transaction stamps,
queue-delay samples, per-cycle stall counters).  Windows in which no
epoch engages remain byte-identical to ``fast=True``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional

from ..analysis.latency import AccessTimeModel, hyperconnect_propagation
from ..axi import payloads
from ..axi.checker import LinkChecker
from ..axi.idgen import IdAllocator
from ..axi.payloads import Transaction, make_read_request, make_write_request
from ..hyperconnect.central import CentralUnit
from ..hyperconnect.exbar import Exbar
from ..hyperconnect.hyperconnect import MasterEFifo
from ..hyperconnect.supervisor import PortConfig, TransactionSupervisor
from ..masters.accelerator import PhasedAccelerator
from ..masters.dma import AxiDma
from ..masters.engine import AxiMasterEngine, Job
from ..masters.traffic import GreedyTrafficGenerator
from ..memory.dram import MemorySubsystem
from .stats import OnlineStats, PortFaultStats, RateCounter

#: shortest window worth attempting an epoch over; below this the
#: prediction/flush bookkeeping costs more than it saves
MIN_EPOCH = 64
#: cycle-accurate cycles run after every committed epoch before the next
#: attempt, so pipelines refill and rate/latency stats keep real samples
RESYNC_WINDOW = 128
#: cycles to wait after a declined epoch before re-attempting (most
#: decline causes — faults, churn, foreign listeners — persist a while)
DECLINE_HOLDOFF = 192

#: leaf statistic objects nested one level inside components whose
#: in-place mutation the generic snapshot must also capture
_LEAF_TYPES = (OnlineStats, PortFaultStats, RateCounter, PortConfig)


class _Decline(Exception):
    """Internal: this window is not TLM-eligible; run it cycle-accurately.

    ``reason`` keys :attr:`KernelSkipStats.tlm_demotions`; ``resume`` (a
    cycle, optional) overrides the default decline holdoff for causes
    with a known expiry (e.g. a recharge boundary inside the window).
    """

    def __init__(self, reason: str, resume: Optional[int] = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.resume = resume


class _Mispredict(Exception):
    """Internal: speculative epoch state failed validation; roll back."""


# ----------------------------------------------------------------------
# generic shallow snapshot
# ----------------------------------------------------------------------

def _copy_value(value):
    """Shallow, type-preserving copy of one attribute value."""
    if isinstance(value, deque):
        return deque(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, set):
        return set(value)
    return value


def _save_object(obj):
    """Capture an object's state: ``("dict"|"slots", {name: copy})``."""
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return "dict", {key: _copy_value(value) for key, value in d.items()}
    saved = {}
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if hasattr(obj, name):
                saved[name] = _copy_value(getattr(obj, name))
    return "slots", saved


def _restore_object(obj, kind, saved) -> None:
    if kind == "dict":
        d = obj.__dict__
        d.clear()
        d.update(saved)
    else:
        for name, value in saved.items():
            setattr(obj, name, value)


def _save_channel(channel):
    """Channel state touched by :meth:`Channel.clear` (and nothing else
    during an epoch), captured for in-place restore — the queue/staged
    containers keep their identity because the commit cohorts hold
    references to them."""
    return (deque(channel._queue), list(channel._staged),
            channel._occupancy, channel._popped_this_cycle,
            channel._dirty, channel.pushed_total, channel.popped_total)


def _restore_channel(channel, saved) -> None:
    queue, staged, occupancy, popped, dirty, pushed_total, popped_total = saved
    live_queue = channel._queue
    live_queue.clear()
    live_queue.extend(queue)
    live_staged = channel._staged
    live_staged.clear()
    live_staged.extend(staged)
    channel._occupancy = occupancy
    channel._popped_this_cycle = popped
    channel._dirty = dirty
    channel.pushed_total = pushed_total
    channel.popped_total = popped_total


def _collect_jobs(engine) -> List[Job]:
    """Every :class:`Job` reachable from the engine's containers.

    Depth-2 scan: jobs appear as direct attribute values
    (``_waiting_job``), container elements (``_jobs``, ``_active_jobs``,
    ``jobs_completed``) and members of per-entry tuples/lists
    (``_issue_queue``, ``_outstanding_reads``, ``_outstanding_writes``).
    """
    jobs: Dict[int, Job] = {}

    def note(candidate) -> None:
        if isinstance(candidate, Job):
            jobs[id(candidate)] = candidate

    for value in vars(engine).values():
        note(value)
        if isinstance(value, (list, deque, tuple)):
            for item in value:
                note(item)
                if isinstance(item, (list, tuple)):
                    for member in item:
                        note(member)
    return list(jobs.values())


class _Snapshot:
    __slots__ = ("cycle", "serial", "objects", "channels")


class _Lane:
    """Per accounted engine: its port supervisor and serving state."""

    __slots__ = ("engine", "sup", "nominal", "quota", "current", "phased")

    def __init__(self, engine, sup) -> None:
        self.engine = engine
        self.sup = sup
        self.nominal = sup.config.nominal_burst
        budget = sup.config.budget
        self.quota = sup.budget_remaining if budget is not None else None
        #: in-service request: [request, job, beats_left, beats_served]
        self.current = None
        self.phased = isinstance(engine, PhasedAccelerator)


class _EpochPlan:
    __slots__ = ("S", "E", "central", "exbar", "memory", "sups", "lanes",
                 "checkers", "fabric_channels", "model")


class TlmEngine:
    """Hybrid transaction-level fast-forward driver for one simulator.

    Created lazily by :meth:`Simulator._advance` when ``tlm=True``;
    :meth:`advance` replaces the plain ``_run_fast`` window loop,
    interleaving cycle-accurate stretches with committed epochs.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self.min_epoch = MIN_EPOCH
        self.resync_window = RESYNC_WINDOW
        self.decline_holdoff = DECLINE_HOLDOFF
        #: first cycle at which the next epoch may be attempted
        self._next_attempt = 0
        #: speculative epochs entered (committed or rolled back)
        self._speculated = 0
        #: test hook: force every speculation from the Nth (1-based) on
        #: to mispredict after accounting, exercising the
        #: rollback/replay path; with 1 the whole run must be
        #: byte-identical to ``fast=True``
        self._force_mispredict_after: Optional[int] = None
        #: last swallowed unexpected exception (debugging aid)
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # outer loop
    # ------------------------------------------------------------------

    def advance(self, end: int) -> None:
        """Advance to ``end``, committing epochs wherever traffic allows."""
        sim = self._sim
        while sim._cycle < end:
            cycle = sim._cycle
            if cycle < self._next_attempt:
                # inside a holdoff / resync window: cycle-accurate
                sim._run_fast(min(end, self._next_attempt))
                continue
            if end - cycle < self.min_epoch:
                # too close to the window end to be worth predicting;
                # not a demotion — run_until strides land here constantly
                sim._run_fast(end)
                continue
            self._attempt_epoch(end)

    # ------------------------------------------------------------------
    # one epoch attempt
    # ------------------------------------------------------------------

    def _attempt_epoch(self, end: int) -> None:
        sim = self._sim
        start = sim._cycle
        stats = sim.skip_stats
        snapshot = None
        try:
            plan = self._classify(start, end)
            snapshot = self._take_snapshot(plan)
            self._speculated += 1
            self._flush_in_flight(plan)
            self._account(plan)
            if (self._force_mispredict_after is not None
                    and self._speculated >= self._force_mispredict_after):
                raise _Mispredict("forced")
            self._commit(plan)
        except _Decline as exc:
            self._record_demotion(exc.reason)
            resume = exc.resume
            if resume is None:
                resume = start + self.decline_holdoff
            self._next_attempt = max(resume, start + 1)
        except _Mispredict as exc:
            self._restore(snapshot)
            stats.tlm_rollbacks += 1
            self._record_demotion(f"mispredict:{exc}")
            self._next_attempt = start + self.decline_holdoff
        except Exception as exc:   # safety net: fall back, stay correct
            if snapshot is not None:
                self._restore(snapshot)
            self.last_error = exc
            self._record_demotion(f"error:{type(exc).__name__}")
            self._next_attempt = start + self.decline_holdoff

    def _record_demotion(self, reason: str) -> None:
        demotions = self._sim.skip_stats.tlm_demotions
        demotions[reason] = demotions.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def _classify(self, start: int, end: int) -> _EpochPlan:
        """Build the epoch plan, or raise :class:`_Decline`."""
        sim = self._sim
        if sim._dirty_channels:
            # uncommitted pushes from outside a run (e.g. a job enqueued
            # between run() calls); one polled cycle commits them
            raise _Decline("dirty", resume=start + 1)
        components = sim._components

        centrals = [c for c in components if isinstance(c, CentralUnit)]
        exbars = [c for c in components if isinstance(c, Exbar)]
        if len(centrals) != 1 or len(exbars) != 1:
            raise _Decline("topology")
        central, exbar = centrals[0], exbars[0]
        if not getattr(central, "_enabled", True):
            raise _Decline("central-disabled")

        recharge = central._next_recharge
        if recharge <= start:
            raise _Decline("recharge-due", resume=start + 1)
        epoch_end = min(recharge - 1, end - 1)
        if epoch_end - start + 1 < self.min_epoch:
            raise _Decline("short-period", resume=recharge + 1)

        memories = [c for c in components if isinstance(c, MemorySubsystem)]
        if len(memories) != 1 or type(memories[0]) is not MemorySubsystem:
            raise _Decline("memory")
        memory = memories[0]
        if memory.store is not None:
            raise _Decline("memory-store")
        if memory.timing.row_miss_penalty is not None:
            raise _Decline("memory-rowmiss")
        if memory.link is not exbar.master_link:
            raise _Decline("memory")

        links = list(exbar.ha_links)
        sups = list(exbar.supervisors)
        if len(sups) != len(links) or not sups:
            raise _Decline("topology")
        for sup in sups:
            if type(sup) is not TransactionSupervisor:
                raise _Decline("supervisor")
            if sup.faulted:
                raise _Decline("fault")
            if sup._revoking:
                raise _Decline("revocation")
            config = sup.config
            if config.timeout_cycles is not None:
                raise _Decline("watchdog")
            if config.region_bytes:
                raise _Decline("region-filter")
            if not sup.enabled or not sup.coupled:
                raise _Decline("decoupled")
            if sup._w_skip_push or sup._w_residue:
                raise _Decline("w-ledger")

        fabric_ids = {id(central), id(exbar), id(memory)}
        fabric_ids.update(id(s) for s in sups)

        # engines: whitelisted burst-issuing masters on the HA ports;
        # everything else must be provably inert for the whole epoch
        lanes_by_port: Dict[int, _Lane] = {}
        others = []
        for comp in components:
            if id(comp) in fabric_ids or isinstance(comp, MasterEFifo):
                continue
            if isinstance(comp, AxiMasterEngine) and (
                    type(comp) in (AxiMasterEngine, AxiDma,
                                   GreedyTrafficGenerator)
                    or isinstance(comp, PhasedAccelerator)):
                port = next((i for i, link in enumerate(links)
                             if link is comp.link), None)
                if port is None:
                    others.append(comp)
                    continue
                if not comp._active:
                    if comp.busy:
                        raise _Decline("inactive-busy")
                    continue   # tri-stated and empty: no traffic to model
                if port in lanes_by_port:
                    raise _Decline("port-shared")
                self._check_engine(comp)
                lanes_by_port[port] = _Lane(comp, sups[port])
            else:
                others.append(comp)

        for comp in others:
            quiescent = getattr(comp, "is_quiescent", None)
            if quiescent is None or not quiescent(start):
                raise _Decline(f"component:{comp.name}")
            hint = getattr(comp, "next_event_cycle", None)
            when = hint(start) if hint is not None else None
            if when is not None and when <= epoch_end:
                raise _Decline(f"component:{comp.name}")

        lanes = [lanes_by_port[port] for port in sorted(lanes_by_port)]
        if not any(lane.engine.busy for lane in lanes):
            # nothing to fast-forward; the freeze path handles idle best
            raise _Decline("idle")

        # channel census: fabric channels may carry in-flight beats
        # (flushed at entry); every other channel must be empty, since
        # nothing will drain it during the epoch
        fabric_channels = set()
        for link in links:
            fabric_channels.update(
                (link.ar, link.aw, link.w, link.r, link.b))
        fabric_channels.update(exbar.ts_ar)
        fabric_channels.update(exbar.ts_aw)
        fabric_channels.add(exbar.out_ar)
        fabric_channels.add(exbar.out_aw)
        master = exbar.master_link
        fabric_channels.update(
            (master.ar, master.aw, master.w, master.r, master.b))

        checkers: Dict[int, LinkChecker] = {}
        for channel in sim._channels:
            if channel in fabric_channels:
                listeners = (tuple(channel._push_listeners)
                             + tuple(channel._pop_listeners))
                for callback in listeners:
                    owner = getattr(callback, "__self__", None)
                    if isinstance(owner, LinkChecker):
                        checkers[id(owner)] = owner
                    elif owner is None or id(owner) not in fabric_ids:
                        # tracers, probes, monitors: they expect to see
                        # every beat, which an epoch does not produce
                        raise _Decline("listener")
            elif channel._queue or channel._staged:
                raise _Decline("channel")

        plan = _EpochPlan()
        plan.S = start
        plan.E = epoch_end
        plan.central = central
        plan.exbar = exbar
        plan.memory = memory
        plan.sups = sups
        plan.lanes = lanes
        plan.checkers = list(checkers.values())
        plan.fabric_channels = list(fabric_channels)
        plan.model = AccessTimeModel(hyperconnect_propagation(),
                                     memory.timing)
        return plan

    def _check_engine(self, engine) -> None:
        """Dynamic eligibility of one accounted engine."""
        if engine.w_beat_gap:
            raise _Decline("engine-wgap")
        if engine.collect_data:
            raise _Decline("engine-data")
        if engine._copy_buffer:
            raise _Decline("copy")
        for job in itertools.chain(engine._jobs, engine._active_jobs):
            if job.kind == "copy":
                raise _Decline("copy")
            if job.kind == "write" and job.data is not None:
                raise _Decline("write-data")
        for callback in engine._completion_callbacks:
            if getattr(callback, "__self__", None) is not engine:
                raise _Decline("callback")
        for callback in getattr(engine, "_frame_callbacks", ()):
            if getattr(callback, "__self__", None) is not engine:
                raise _Decline("callback")

    # ------------------------------------------------------------------
    # snapshot / rollback
    # ------------------------------------------------------------------

    def _take_snapshot(self, plan: _EpochPlan) -> _Snapshot:
        sim = self._sim
        snap = _Snapshot()
        snap.cycle = sim._cycle
        # itertools.count cannot be peeked: consume one value, then
        # rebuild the counter at that same value — net effect nil
        serial = next(payloads._txn_counter)
        payloads._txn_counter = itertools.count(serial)
        snap.serial = serial

        seen = set()
        objects = []

        def add(obj) -> None:
            if id(obj) not in seen:
                seen.add(id(obj))
                objects.append(obj)

        for comp in sim._components:
            add(comp)
            for value in vars(comp).values():
                if isinstance(value, _LEAF_TYPES):
                    add(value)
        for checker in plan.checkers:
            add(checker)
        add(sim.events)
        for lane in plan.lanes:
            for job in _collect_jobs(lane.engine):
                add(job)
        snap.objects = [(obj,) + _save_object(obj) for obj in objects]
        snap.channels = [(channel, _save_channel(channel))
                         for channel in plan.fabric_channels]
        return snap

    def _restore(self, snap: _Snapshot) -> None:
        sim = self._sim
        for obj, kind, saved in snap.objects:
            _restore_object(obj, kind, saved)
        for channel, saved in snap.channels:
            _restore_channel(channel, saved)
        payloads._txn_counter = itertools.count(snap.serial)
        sim._cycle = snap.cycle
        sim._dirty_channels = [c for c in sim._channels if c._dirty]
        sim._quiescent_until = 0
        # normalize scheduling: everything awake, hysteresis reset; the
        # wake heap keeps stale entries (they fire as harmless spurious
        # wakes) and sleepers re-push fresh hints when they re-sleep
        awake = {}
        for comp in sim._components:
            comp._k_asleep = False
            comp._k_quiet = 0
            awake[comp] = True
        sim._awake = awake
        sim._asleep = {}

    # ------------------------------------------------------------------
    # flush: credit and clear in-flight traffic
    # ------------------------------------------------------------------

    def _flush_in_flight(self, plan: _EpochPlan) -> None:
        """Complete all in-flight work instantly at the epoch start.

        Every outstanding burst is credited its remaining beats (the
        cycle-accurate path would deliver them within one pipeline depth
        — the slack term the analytic-bound oracle allows) and the
        fabric's transient state is cleared, leaving exactly the regular
        state the closed-form accounting describes.
        """
        start = plan.S
        model = plan.model
        for lane in plan.lanes:
            engine = lane.engine
            finished: List[Job] = []
            for request, beats_left, job in engine._outstanding_reads:
                nbytes = beats_left * request.size_bytes
                engine.bytes_read += nbytes
                job.read_bytes_done += nbytes
                engine.read_latency.add(
                    model.read_access_cycles(request.length))
                finished.append(job)
            for request, job in engine._outstanding_writes:
                nbytes = request.length * request.size_bytes
                engine.bytes_written += nbytes
                job.write_bytes_done += nbytes
                engine.write_latency.add(
                    model.write_access_cycles(request.length))
                finished.append(job)
            engine._outstanding_reads.clear()
            engine._outstanding_writes.clear()
            engine._n_outstanding = 0
            engine._write_data.clear()
            engine._w_gap_until = 0
            engine._ids = IdAllocator(
                engine._ids.capacity.bit_length() - 1)
            completed = set()
            for job in finished:
                if id(job) not in completed:
                    completed.add(id(job))
                    engine._maybe_finish(job, start)

        for sup in plan.sups:
            sup._pending_ar.clear()
            sup._pending_aw.clear()
            sup._inflight_reads.clear()
            sup._inflight_writes.clear()
            sup._w_expected.clear()
            sup.outstanding_reads = 0
            sup.outstanding_writes = 0
            sup._read_issue_cycles.clear()
            sup._write_issue_cycles.clear()

        exbar = plan.exbar
        exbar._route_r.clear()
        exbar._route_w.clear()
        exbar._route_b.clear()

        memory = plan.memory
        commands = list(memory._commands)
        if memory._current is not None:
            commands.append(memory._current)
        for command in commands:
            memory.beats_served += command.beats_left
            if command.is_read:
                memory.reads_served += 1
            else:
                memory.writes_served += 1
        memory._commands.clear()
        memory._current = None
        memory._write_beats.clear()
        memory._pending_b.clear()
        memory._bus_free_at = start

        for checker in plan.checkers:
            checker._pending_writes.clear()
            checker._early_w.clear()
            checker._pending_reads.clear()
            checker._awaiting_b = 0

        for channel in plan.fabric_channels:
            channel.clear()

    # ------------------------------------------------------------------
    # accounting: virtual-cycle bus cursor
    # ------------------------------------------------------------------

    def _account(self, plan: _EpochPlan) -> None:
        """Serve the epoch's traffic analytically over [S, E].

        The shared memory bus moves at most one data beat per cycle, so
        ``E - S + 1`` beats of capacity are dealt out to the lanes one
        supervisor-split sub-burst at a time, round-robin — the same
        granularity-1 fairness the EXBAR arbitrates.  ``sim._cycle``
        tracks the virtual cycle throughout so completion callbacks
        (DMA round relaunches, accelerator frame machines, greedy
        refills) observe monotonically advancing time.
        """
        sim = self._sim
        start, epoch_end = plan.S, plan.E
        memory = plan.memory
        exbar = plan.exbar
        model = plan.model
        lanes = plan.lanes
        capacity = epoch_end - start + 1
        cursor = 0
        while cursor < capacity:
            progressed = False
            for lane in lanes:
                if cursor >= capacity:
                    break
                virtual = start + cursor
                if virtual > epoch_end:
                    virtual = epoch_end
                if virtual > sim._cycle:   # monotone for callbacks
                    sim._cycle = virtual
                current = lane.current
                if current is None:
                    current = self._next_request(lane, virtual)
                    if current is None:
                        continue
                    lane.current = current
                request = current[0]
                sub_beats = min(lane.nominal, current[2])
                cursor += sub_beats
                current[2] -= sub_beats
                current[3] += sub_beats
                nbytes = sub_beats * request.size_bytes
                config = lane.sup.config
                if request.is_read:
                    lane.engine.bytes_read += nbytes
                    current[1].read_bytes_done += nbytes
                    memory.reads_served += 1
                    config.issued_read += 1
                    exbar.grants_ar += 1
                else:
                    lane.engine.bytes_written += nbytes
                    current[1].write_bytes_done += nbytes
                    memory.writes_served += 1
                    config.issued_write += 1
                    exbar.grants_aw += 1
                memory.beats_served += sub_beats
                progressed = True
                if current[2] == 0:
                    if request.is_read:
                        access = model.read_access_cycles(request.length)
                        lane.engine.read_latency.add(access)
                    else:
                        access = model.write_access_cycles(request.length)
                        lane.engine.write_latency.add(access)
                    # the bus cursor only counts data beats; completion
                    # trails it by the access-time pipeline (and real
                    # latency is never below the isolated access time),
                    # so an uncontended job still observes the analytic
                    # latency instead of beat-count cycles
                    done = max(start + cursor, current[4] + access)
                    if done > epoch_end:
                        done = epoch_end
                    if done > sim._cycle:
                        sim._cycle = done
                    lane.current = None
                    lane.engine._maybe_finish(current[1], done)
            if not progressed:
                jump = self._compute_jump(lanes, start, cursor, epoch_end)
                if jump is None:
                    break
                cursor = jump
        self._requeue_partials(lanes)

    def _next_request(self, lane: _Lane, virtual: int):
        """Pop the lane's next issueable request, or None if blocked.

        Drives the accelerator phase machine and the job-expansion
        top-up exactly as :meth:`AxiMasterEngine.tick` would, then
        applies reservation admission: the supervisor deducts a whole
        request's worth of sub-burst budget up front (its split queue
        never starves mid-burst in the regular pattern).
        """
        engine = lane.engine
        if lane.phased and engine._running:
            engine._advance(virtual)
        while (engine._jobs
               and len(engine._issue_queue) < 2 * engine.burst_len):
            engine._prepare_job(engine._jobs.popleft(), virtual)
        if not engine._issue_queue:
            return None
        request, job = engine._issue_queue[0]
        if job.kind == "copy" or request.length <= 0:
            raise _Mispredict("job-shape")
        if (not request.is_read and request.txn is not None
                and request.txn.data is not None):
            raise _Mispredict("write-data")
        subs_needed = -(-request.length // lane.nominal)
        if lane.quota is not None:
            if lane.quota < subs_needed:
                return None   # blocked on reservation budget
            lane.quota -= subs_needed
        engine._issue_queue.popleft()
        if subs_needed > 1:
            lane.sup.splits_performed += 1
        if job.started is None:
            job.started = virtual
        return [request, job, request.length, 0, virtual]

    @staticmethod
    def _compute_jump(lanes, start, cursor, epoch_end):
        """When every lane is blocked, the only in-epoch event left is a
        compute phase finishing; jump the cursor there (virtual idle bus
        cycles)."""
        jump = None
        virtual = start + cursor
        for lane in lanes:
            engine = lane.engine
            if (lane.phased and engine._running
                    and engine._waiting_job is None
                    and engine._compute_until > virtual):
                target = engine._compute_until - start
                if target <= epoch_end - start and (
                        jump is None or target < jump):
                    jump = target
        if jump is not None and jump <= cursor:
            return None
        return jump

    def _requeue_partials(self, lanes) -> None:
        """Re-queue the unserved tail of bus-truncated requests so the
        cycle-accurate resync window resumes them seamlessly."""
        for lane in lanes:
            current = lane.current
            if current is None:
                continue
            request, job, beats_left, served, _issued = current
            beat = request.size_bytes
            address = request.address + served * beat
            engine = lane.engine
            if request.is_read:
                txn = Transaction("read", engine.name, address,
                                  beats_left, beat)
                remainder = make_read_request(txn, txn_id=0,
                                              qos=engine.qos)
            else:
                txn = Transaction("write", engine.name, address,
                                  beats_left, beat)
                remainder = make_write_request(txn, txn_id=0,
                                               qos=engine.qos)
            engine._issue_queue.appendleft((remainder, job))
            lane.current = None

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, plan: _EpochPlan) -> None:
        sim = self._sim
        sim._cycle = plan.E + 1
        sim._wake_all_direct()
        stats = sim.skip_stats
        stats.tlm_epochs += 1
        stats.tlm_cycles_skipped += plan.E + 1 - plan.S
        # the central unit's recharge fires naturally at E+1 (its tick
        # condition is cycle >= _next_recharge and E = _next_recharge-1
        # whenever the period bounded the epoch)
        self._next_attempt = plan.E + 1 + self.resync_window
