"""Boundary-beat wire format for the ``processes`` shard backend.

When a shard runs inside a worker process, the only state that crosses
the process boundary per epoch is the set of *boundary-channel* queue
entries — ``(ready_cycle, payload)`` pairs, exactly the layout the
cohort commit (:mod:`repro.sim.commit`) stages them in.  This module
packs a channel's entries into a single frame for the pipe:

* **SoA fast path** — when every payload is a plain tuple of ints of
  uniform arity (the shape every packed-beat workload uses), the frame
  is one ``int64`` matrix: column 0 the ready cycles, columns 1..k the
  payload fields.  Serializing it is a single buffer copy — the barrier
  cost is a bulk memcpy, not per-beat pickling.  numpy builds the
  matrix when available; the stdlib ``array`` module is the fallback
  and shares the same byte layout.
* **raw fallback** — anything else ships as the entry list and pays
  normal pickling.  Correct for arbitrary picklable payloads, just
  slower; the eligibility analysis never *requires* SoA-able payloads.

Frames are ``(tag, ...)`` tuples so the unpacker is self-describing and
a mixed stream (some channels SoA, some raw) needs no negotiation.
"""

from __future__ import annotations

from array import array
from typing import Any, List, Sequence, Tuple

try:  # optional, as in repro.sim.commit
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard env
    _np = None

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: frame tags
SOA = "soa"
RAW = "raw"


def _soa_shape(entries: Sequence[Tuple[int, Any]]) -> int:
    """Payload arity if every entry fits the SoA layout, else -1.

    The check is strict on purpose: ``bool`` is an ``int`` subclass and
    floats truncate silently under an int64 cast, either of which would
    round-trip to a *different* payload and break byte-identity — so
    only exact ``int`` fields within int64 range qualify.
    """
    arity = -1
    for _ready, payload in entries:
        if type(payload) is not tuple:
            return -1
        if arity < 0:
            arity = len(payload)
        elif len(payload) != arity:
            return -1
        for value in payload:
            if type(value) is not int:
                return -1
            if not (_INT64_MIN <= value <= _INT64_MAX):
                return -1
    return arity


def pack_entries(entries: Sequence[Tuple[int, Any]]) -> Tuple:
    """Pack channel queue entries into a self-describing frame."""
    if not entries:
        return (RAW, [])
    arity = _soa_shape(entries)
    if arity < 0:
        return (RAW, list(entries))
    if _np is not None:
        matrix = _np.empty((len(entries), arity + 1), dtype=_np.int64)
        for row, (ready, payload) in enumerate(entries):
            matrix[row, 0] = ready
            if arity:
                matrix[row, 1:] = payload
        return (SOA, len(entries), arity, matrix.tobytes())
    flat = array("q")
    for ready, payload in entries:
        flat.append(ready)
        flat.extend(payload)
    return (SOA, len(entries), arity, flat.tobytes())


def unpack_entries(frame: Tuple) -> List[Tuple[int, Any]]:
    """Invert :func:`pack_entries`, restoring ``(ready, payload)`` pairs."""
    tag = frame[0]
    if tag == RAW:
        return list(frame[1])
    if tag != SOA:
        raise ValueError(f"unknown shardwire frame tag {tag!r}")
    _tag, count, arity, payload_bytes = frame
    stride = arity + 1
    if _np is not None:
        matrix = _np.frombuffer(payload_bytes, dtype=_np.int64)
        rows = matrix.reshape(count, stride).tolist()
    else:
        flat = array("q")
        flat.frombytes(payload_bytes)
        rows = [flat[i * stride:(i + 1) * stride]
                for i in range(count)]
    return [(int(row[0]), tuple(int(v) for v in row[1:])) for row in rows]
