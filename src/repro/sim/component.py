"""Base class for clocked hardware components."""

from __future__ import annotations


class Component:
    """A synchronous hardware block ticked once per clock cycle.

    Subclasses implement :meth:`tick`, which runs once per simulated cycle.
    All communication with other components must go through
    :class:`repro.sim.Channel` links; thanks to the channels' two-phase
    commit, the order in which components are ticked within a cycle is
    irrelevant to the simulation outcome.

    Components register themselves with the simulator on construction, so
    building a component is enough to make it run.
    """

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        # Kernel-managed scheduling state (see Simulator._rebuild_wiring):
        # whether the fast path may put this component to sleep, whether it
        # is currently asleep, and the poll-backoff stride mask / miss
        # counter.  Kept as plain attributes for speed; components never
        # touch them.
        self._k_sleepable = False
        self._k_asleep = False
        self._k_mask = 0
        self._k_miss = 0
        self._k_quiet = 0
        sim._register_component(self)

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle.

        ``cycle`` equals ``self.sim.now``; it is passed explicitly because
        nearly every implementation needs it and the attribute lookup is a
        measurable cost in large simulations.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # fast-path contract (quiescence)
    # ------------------------------------------------------------------

    def is_quiescent(self, cycle: int) -> bool:
        """Return ``True`` iff :meth:`tick` would be a pure no-op this cycle.

        "Pure no-op" is a strict promise: calling ``tick(cycle)`` would not
        change any component state (including counters, RNG streams, and
        statistics), would not push to or pop from any channel, and would
        not raise.  The fast kernel path uses this to skip the call; a wrong
        ``True`` silently changes simulation results, so implementations
        must be conservative — when in doubt, return ``False``.

        The hook is re-polled every simulated cycle against the current
        channel state, so ``True`` only ever skips the *current* cycle; a
        component cannot strand itself by returning ``True`` once.

        The default is ``False`` (never skip), which keeps every existing
        component exactly as it was.
        """
        return False

    def next_event_cycle(self, cycle: int) -> "int | None":
        """Earliest future cycle at which this component may act on its own.

        Only consulted when :meth:`is_quiescent` returned ``True`` for
        ``cycle`` and the whole system is otherwise frozen.  A component
        with a pending *internal* timer (e.g. a periodic release, a
        countdown expressed as an absolute cycle) must report it here so
        the bulk-skip horizon does not jump past it.  ``None`` means "I
        will only wake because a channel delivers something", which the
        kernel tracks itself.  Returning an earlier cycle than necessary
        is always safe (it merely shortens the skip).
        """
        return None

    def wake_channels(self) -> "list | None":
        """Channels whose activity can end this component's quiescence.

        The fast kernel path uses this to let a component *sleep*: once
        it reports quiescent, it is neither polled nor ticked again until
        one of the returned channels commits activity, its
        :meth:`next_event_cycle` hint comes due on the wake heap, or an
        explicit :meth:`wake` / :meth:`Simulator.wake` arrives.

        Returning a list is therefore a stronger promise than
        :meth:`is_quiescent` alone: *while quiescent, every input that
        could make the next tick a non-no-op is either a commit on one of
        these channels, an event at* ``next_event_cycle()``, *or an
        external mutation that calls* :meth:`wake`.  In particular,
        ``next_event_cycle`` must be complete whenever ``is_quiescent``
        is true — not only when the whole system is frozen.

        The default ``None`` opts out: the component is polled every
        cycle, exactly as before this protocol existed.  An empty list is
        valid and means "timer/wake-driven only" (e.g. a pure countdown
        component).  The kernel reads this once per wiring rebuild, after
        construction is complete, so implementations may reference
        attributes set by subclass constructors.
        """
        return None

    def shard_affinity(self) -> "str | None":
        """Partition key for the sharded parallel kernel, or ``None``.

        The graph partitioner (:mod:`repro.sim.partition`) colors
        components into port-local shards by this key: components
        returning the same key may end up ticked together on one worker,
        components returning different keys may tick concurrently, and
        ``None`` (the default) assigns the component to the shared *hub*
        shard, which is always ticked serially.  Returning ``None`` is
        therefore always correct — affinity is purely an optimization
        hint.

        A non-``None`` key is a promise: while the kernel is inside the
        tick phase of a cycle, this component reads and writes only (a)
        its own state, (b) channels shared exclusively with components
        of the same shard, and (c) cross-shard state through the
        deferred kernel services (channel pushes, event publishes,
        wakes), never through direct same-cycle reads of another shard's
        mutable state.  The partitioner additionally merges shards that
        are found to share channels or observers, so declaring the same
        key as the components you exchange beats with is sufficient.

        Like :meth:`wake_channels`, this is read once per wiring
        rebuild, after construction completes.
        """
        return None

    # ------------------------------------------------------------------
    # processes-backend contract (shard export)
    # ------------------------------------------------------------------

    def process_exportable(self) -> bool:
        """May this component tick inside a worker *process*?

        ``True`` is a promise on top of :meth:`shard_affinity`: the
        component's entire tick-phase footprint is (a) its own picklable
        state, exported and imported losslessly via :meth:`export_state`
        / :meth:`import_state`, and (b) the channels it declared through
        :meth:`wake_channels` and :meth:`pushes_channels`, whose payloads
        are plain picklable values (no identity-shared mutable objects —
        a beat mutated after push would diverge between processes).  It
        must not call methods on foreign components, publish events it
        expects other shards to observe mid-epoch, or read ``self.sim``
        state beyond the cycle number.

        The default ``False`` keeps every existing component on the
        threads/inline path; the partitioner only offers a shard to the
        ``processes`` backend when *all* of its members opt in.
        """
        return False

    def pushes_channels(self) -> "list | None":
        """Channels this component pushes to (the output footprint).

        The partitioner knows a component's *input* footprint from
        :meth:`wake_channels`; the processes backend additionally needs
        the outputs to classify boundary-channel direction (a shard that
        pushes to a channel the hub watches ships frames out; a shard
        that only watches a hub-fed channel ships frames in).  ``None``
        (the default) means "unknown" and, like ``process_exportable``
        returning ``False``, keeps the shard off the processes path.
        Read once per wiring rebuild, after construction completes.
        """
        return None

    def export_state(self) -> "dict | None":
        """Snapshot of all mutable tick-phase state, as picklable data.

        The processes backend calls this on the parent's copy before an
        epoch run (to seed the worker) and on the worker's copy after
        (to update the parent mirror).  The default ``None`` is only
        valid while :meth:`process_exportable` is ``False``.
        """
        return None

    def import_state(self, state: "dict") -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement import_state")

    def wake(self) -> None:
        """Wake this component if the fast kernel path put it to sleep.

        The targeted counterpart of :meth:`Simulator.wake`: any code that
        mutates this component's state from outside its own ``tick`` —
        another component's direct method call, a driver API, an event
        handler — must call this (or the global wake) so a sleeping
        component is re-polled.  Spurious calls are safe and cheap.
        """
        self.sim._wake_component(self)

    def reset(self) -> None:
        """Return the component to its power-on state.

        The default implementation does nothing; stateful components
        override it.  Used by the HyperConnect central unit to fan out reset
        requests.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
