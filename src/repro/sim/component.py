"""Base class for clocked hardware components."""

from __future__ import annotations


class Component:
    """A synchronous hardware block ticked once per clock cycle.

    Subclasses implement :meth:`tick`, which runs once per simulated cycle.
    All communication with other components must go through
    :class:`repro.sim.Channel` links; thanks to the channels' two-phase
    commit, the order in which components are ticked within a cycle is
    irrelevant to the simulation outcome.

    Components register themselves with the simulator on construction, so
    building a component is enough to make it run.
    """

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        sim._register_component(self)

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle.

        ``cycle`` equals ``self.sim.now``; it is passed explicitly because
        nearly every implementation needs it and the attribute lookup is a
        measurable cost in large simulations.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Return the component to its power-on state.

        The default implementation does nothing; stateful components
        override it.  Used by the HyperConnect central unit to fan out reset
        requests.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
