"""Lazily-invalidated min-heap of future wake events.

The fast kernel path used to compute every bulk-skip horizon with a full
scan over all channels and components (``Simulator._horizon``).  The
:class:`WakeHeap` replaces that scan with an event heap:

* when a sleep-capable component goes quiescent, its
  :meth:`~repro.sim.Component.next_event_cycle` hint is pushed as a heap
  entry;
* when a channel commits (or exposes, via a pop) a head item whose ready
  cycle lies more than one cycle in the future, the channel itself is
  pushed at that ready cycle;
* each polled cycle the kernel pops the due entries and wakes their
  subjects, and a frozen horizon is just the heap minimum (plus the
  fresh hints of the components that are still awake).

Entries are **lazy**: nothing is ever removed from the middle of the
heap.  Instead each subject tracks its earliest *live* entry cycle in a
side table; pushes that would land at or after an existing live entry
are elided, and popped entries that no longer match the side table are
dropped as stale.  This makes invalidation O(1) and keeps the heap free
of unbounded duplicate churn.

Waking a subject early (or spuriously) is always harmless — the waker
merely re-polls ``is_quiescent`` and goes back to sleep — so the heap
never needs to *guarantee* staleness detection, only to guarantee that
no genuine wake event is lost: an entry at cycle ``c`` for subject ``s``
survives until some entry for ``s`` at a cycle ``<= c`` has fired.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

_FOREVER = float("inf")


class WakeHeap:
    """Min-heap of ``(cycle, seq, subject)`` wake events.

    ``subject`` is opaque to the heap (the kernel pushes components and
    channels); ``seq`` is a monotonically increasing tiebreaker so that
    subjects never need to be comparable.
    """

    __slots__ = ("_heap", "_live", "_seq",
                 "pushes", "elided", "pops", "stale_drops")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        #: subject -> earliest cycle for which a live entry exists
        self._live: Dict[Any, int] = {}
        self._seq = 0
        # accounting (mirrored into KernelSkipStats by the kernel)
        self.pushes = 0
        self.elided = 0
        self.pops = 0
        self.stale_drops = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # ------------------------------------------------------------------

    def push(self, subject: Any, cycle: int) -> bool:
        """Schedule a wake for ``subject`` at ``cycle``.

        Returns ``True`` if an entry was actually added.  A push at or
        after the subject's existing live entry is elided — the earlier
        entry already guarantees a wake no later than this one, and the
        subject re-schedules itself when it fires.  A push *earlier*
        than the live entry goes in (this is how a hint that moves
        earlier after an external event is honoured); the superseded
        entry becomes stale and is dropped when it surfaces.
        """
        live = self._live
        known = live.get(subject)
        if known is not None and known <= cycle:
            self.elided += 1
            return False
        live[subject] = cycle
        self._seq += 1
        heappush(self._heap, (cycle, self._seq, subject))
        self.pushes += 1
        return True

    def invalidate(self, subject: Any) -> None:
        """Forget the subject's live entry without touching the heap.

        Any entries already queued for the subject become stale: they
        will surface as (harmless) spurious wakes or be dropped.  Used
        when a subject is woken by some other mechanism and will
        re-schedule itself with fresh information when it next sleeps.
        """
        self._live.pop(subject, None)

    def peek_cycle(self) -> float:
        """Earliest live entry cycle, or ``inf`` when empty.

        Stale heads are popped off on the way, so the returned value is
        a genuine future wake event (as of the entries' push times).
        """
        heap = self._heap
        live = self._live
        while heap:
            cycle, _, subject = heap[0]
            if live.get(subject) == cycle:
                return cycle
            heappop(heap)
            self.stale_drops += 1
        return _FOREVER

    def pop_due(self, cycle: int) -> List[Any]:
        """Pop and return every subject whose entry is due at ``cycle``.

        Stale entries encountered along the way are silently dropped.
        A subject appears at most once (duplicates cannot both be live).
        """
        due: List[Any] = []
        heap = self._heap
        live = self._live
        while heap and heap[0][0] <= cycle:
            entry_cycle, _, subject = heappop(heap)
            if live.get(subject) == entry_cycle:
                del live[subject]
                due.append(subject)
                self.pops += 1
            else:
                self.stale_drops += 1
        return due

    def clear(self) -> None:
        """Drop every entry (used when the kernel rebuilds its wiring)."""
        self._heap.clear()
        self._live.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WakeHeap(entries={len(self._heap)}, "
                f"live={len(self._live)}, pushes={self.pushes}, "
                f"stale_drops={self.stale_drops})")
