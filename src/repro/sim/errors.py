"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An invariant of the simulation kernel was violated.

    Raised, for instance, when a component is registered twice, when a
    simulation is stepped after :meth:`repro.sim.Simulator.finish`, or when a
    run exceeds its cycle bound without meeting its termination predicate.
    """


class ChannelError(SimulationError):
    """Misuse of a :class:`repro.sim.Channel`.

    Typical causes are pushing to a full channel without checking
    :meth:`~repro.sim.Channel.can_push` first, or popping from an empty one.
    """


class ConfigurationError(ReproError):
    """A component was built or reconfigured with inconsistent parameters."""
