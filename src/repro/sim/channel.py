"""Registered FIFO links between hardware components.

A :class:`Channel` models a synchronous, point-to-point connection: a FIFO
whose output side is separated from its input side by a configurable number
of clock cycles (``latency``).  It is the only way components exchange data
in this library, and its two-phase commit protocol is what makes simulation
results independent of the order in which components are ticked:

* Items pushed during cycle *t* are *staged* and only become part of the
  queue when the simulator commits the cycle; they become visible to the
  consumer at cycle ``t + latency``.
* :meth:`can_push` judges fullness against the occupancy at the *start* of
  the cycle — an item popped during the current cycle frees its slot only on
  the next cycle, exactly like a registered ``full`` flag in RTL.

With ``latency=1`` a channel behaves like the proactive (always-ready when
not full) circular buffers used by the eFIFO modules of the AXI
HyperConnect: one cycle of propagation delay and a sustained throughput of
one item per cycle (for ``capacity >= 2``).

A chain of *k* unit-latency channels therefore introduces exactly *k* cycles
of propagation latency, which is how the paper's per-module latency budget
(one clock per eFIFO/TS/EXBAR stage) is modelled.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .errors import ChannelError, ConfigurationError

#: Capacity value meaning "no backpressure" (an unbounded queue).
UNBOUNDED: Optional[int] = None


class Channel:
    """A point-to-point registered FIFO link.

    Parameters
    ----------
    sim:
        The owning :class:`repro.sim.Simulator`; the channel registers itself
        for end-of-cycle commits.
    name:
        Human-readable identifier used in traces and error messages.
    latency:
        Clock cycles between a push and the item becoming poppable.  Must be
        at least 1 (a purely combinational path is not representable — and
        not needed, since the paper's modules are all registered).
    capacity:
        Maximum occupancy (committed + staged items).  ``None`` means
        unbounded.  For full throughput a latency-``L`` channel needs
        ``capacity >= L + 1``.
    """

    __slots__ = (
        "name",
        "latency",
        "capacity",
        "_sim",
        "_queue",
        "_staged",
        "_popped_this_cycle",
        "_occupancy",
        "_dirty",
        "pushed_total",
        "popped_total",
        "_push_listeners",
        "_pop_listeners",
        "_watchers",
        "_index",
        "shard_class",
    )

    def __init__(self, sim, name: str, latency: int = 1,
                 capacity: Optional[int] = 16) -> None:
        if latency < 1:
            raise ConfigurationError(
                f"channel {name!r}: latency must be >= 1, got {latency}")
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"channel {name!r}: capacity must be >= 1 or None, "
                f"got {capacity}")
        self.name = name
        self.latency = latency
        self.capacity = capacity
        self._sim = sim
        #: committed items as (ready_cycle, payload) in FIFO order
        self._queue: Deque[Tuple[int, Any]] = deque()
        #: items pushed this cycle, not yet committed
        self._staged: List[Any] = []
        #: items popped this cycle (their slot frees only at commit)
        self._popped_this_cycle = 0
        #: running ``len(_queue) + _popped_this_cycle + len(_staged)``,
        #: maintained incrementally so backpressure checks are a single
        #: integer compare (pops leave it unchanged until commit frees
        #: the slots — registered-full semantics)
        self._occupancy = 0
        #: activity flag: True while the channel has uncommitted work
        #: (staged pushes or pop accounting) and is queued for commit.
        #: Committing a clean channel is provably a no-op, so the kernel
        #: only visits dirty ones.
        self._dirty = False
        self.pushed_total = 0
        self.popped_total = 0
        #: observation hooks: callables ``fn(cycle, item)`` invoked on
        #: push/pop.  Used by protocol checkers and monitors; they must not
        #: mutate the channel.
        self._push_listeners: List[Any] = []
        self._pop_listeners: List[Any] = []
        #: components to wake when this channel commits activity (built by
        #: the kernel from Component.wake_channels declarations)
        self._watchers: tuple = ()
        #: stable index into the kernel's commit-cohort buffers
        self._index = -1
        #: partition verdict for the sharded parallel kernel, written by
        #: repro.sim.partition: ``None`` until a plan is built, then
        #: ``("internal", key)`` — all touchers live in shard ``key`` —
        #: ``("boundary", key)`` — shard ``key`` on one side, the hub on
        #: the other — or ``("hub", None)``.  Purely descriptive: the
        #: two-phase commit already double-buffers every channel (staged
        #: pushes are invisible until the serial end-of-cycle commit),
        #: so boundary channels need no extra synchronization — shards
        #: can never observe each other's same-cycle writes.
        self.shard_class: Optional[Tuple[str, Optional[str]]] = None
        sim._register_channel(self)

    # ------------------------------------------------------------------
    # observation (monitors / protocol checkers)
    # ------------------------------------------------------------------

    def subscribe_push(self, callback) -> None:
        """Invoke ``callback(cycle, item)`` whenever an item is pushed.

        Marks the scheduling wiring stale: the shard partitioner merges
        shards through listener ownership (a tracer watching two ports'
        channels must serialize them), so a listener attached after the
        first plan has to force a re-plan.
        """
        self._push_listeners.append(callback)
        self._sim._wiring_stale = True

    def subscribe_pop(self, callback) -> None:
        """Invoke ``callback(cycle, item)`` whenever an item is popped."""
        self._pop_listeners.append(callback)
        self._sim._wiring_stale = True

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def can_push(self, count: int = 1) -> bool:
        """Return ``True`` if ``count`` more items fit this cycle.

        Occupancy is measured against the start-of-cycle snapshot: slots
        freed by pops during the current cycle do not count until the next
        cycle (registered-full semantics).
        """
        capacity = self.capacity
        return capacity is None or self._occupancy + count <= capacity

    def push(self, item: Any) -> None:
        """Stage ``item`` for delivery ``latency`` cycles from now."""
        capacity = self.capacity
        if capacity is not None and self._occupancy >= capacity:
            raise ChannelError(
                f"push to full channel {self.name!r} "
                f"(capacity={self.capacity}) at cycle {self._sim.now}")
        self._staged.append(item)
        self._occupancy += 1
        self.pushed_total += 1
        if not self._dirty:
            self._dirty = True
            sim = self._sim
            sim._dirty_channels.append(self)
            sim._quiescent_until = 0
        if self._push_listeners:
            now = self._sim._cycle
            for callback in self._push_listeners:
                callback(now, item)

    def try_push(self, item: Any) -> bool:
        """Push ``item`` if it fits this cycle; return whether it did.

        Single-check fast path for the common ``if can_push(): push()``
        idiom: the fullness check and the stage are one operation, with
        identical registered-full semantics.
        """
        capacity = self.capacity
        if capacity is not None and self._occupancy >= capacity:
            return False
        self._staged.append(item)
        self._occupancy += 1
        self.pushed_total += 1
        if not self._dirty:
            self._dirty = True
            sim = self._sim
            sim._dirty_channels.append(self)
            sim._quiescent_until = 0
        if self._push_listeners:
            now = self._sim._cycle
            for callback in self._push_listeners:
                callback(now, item)
        return True

    def amend_staged(self, mutate) -> bool:
        """Apply ``mutate(item)`` to the most recently staged item.

        Fault injectors and similar decorators sometimes need to rewrite
        a payload *after* the producing component staged it this cycle —
        e.g. poisoning a data beat's response code.  This is the public
        way to do that: it only touches work staged in the current cycle
        (nothing already committed can be amended), keeps the two-phase
        protocol intact, and returns ``False`` when there is nothing
        staged to amend.

        The mutation happens before commit, so consumers can never
        observe the un-amended item — on either kernel path.
        """
        if not self._staged:
            return False
        mutate(self._staged[-1])
        return True

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def can_pop(self) -> bool:
        """Return ``True`` if an item is visible at the current cycle."""
        queue = self._queue
        return bool(queue) and queue[0][0] <= self._sim._cycle

    def peek(self) -> Any:
        """The head item if one is visible this cycle, else ``None``.

        Single-check fast path for the ``if can_pop(): front()`` idiom.
        Only usable where a ``None`` payload cannot occur (true for all
        AXI beat traffic, whose payloads are beat objects).
        """
        queue = self._queue
        if queue:
            ready, item = queue[0]
            if ready <= self._sim._cycle:
                return item
        return None

    def front(self) -> Any:
        """Return (without removing) the item at the head of the queue."""
        if not self.can_pop():
            raise ChannelError(
                f"front of empty channel {self.name!r} at cycle "
                f"{self._sim.now}")
        return self._queue[0][1]

    def pop(self) -> Any:
        """Remove and return the head item."""
        if not self.can_pop():
            raise ChannelError(
                f"pop from empty channel {self.name!r} at cycle "
                f"{self._sim.now}")
        __, item = self._queue.popleft()
        self._popped_this_cycle += 1
        self.popped_total += 1
        if not self._dirty:
            self._dirty = True
            sim = self._sim
            sim._dirty_channels.append(self)
            sim._quiescent_until = 0
        if self._pop_listeners:
            now = self._sim._cycle
            for callback in self._pop_listeners:
                callback(now, item)
        return item

    def try_pop(self) -> Any:
        """Pop and return the head item if visible, else ``None``.

        Single-check fast path for ``if can_pop(): pop()``; the same
        ``None``-payload caveat as :meth:`peek` applies.
        """
        queue = self._queue
        if not queue or queue[0][0] > self._sim._cycle:
            return None
        __, item = queue.popleft()
        self._popped_this_cycle += 1
        self.popped_total += 1
        if not self._dirty:
            self._dirty = True
            sim = self._sim
            sim._dirty_channels.append(self)
            sim._quiescent_until = 0
        if self._pop_listeners:
            now = self._sim._cycle
            for callback in self._pop_listeners:
                callback(now, item)
        return item

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of committed items still queued (visible or in flight)."""
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Start-of-cycle occupancy used for backpressure decisions."""
        return self._occupancy

    @property
    def is_idle(self) -> bool:
        """True when no item is queued, staged, or in flight."""
        return not self._queue and not self._staged

    def drain(self) -> List[Any]:
        """Pop every currently visible item (helper for sinks and tests)."""
        items = []
        while self.can_pop():
            items.append(self.pop())
        return items

    def clear(self) -> None:
        """Drop all contents immediately (used by reset logic)."""
        self._queue.clear()
        self._staged.clear()
        self._popped_this_cycle = 0
        self._occupancy = 0
        if not self._dirty:
            self._dirty = True
            self._sim._mark_dirty(self)

    def next_wake_cycle(self, cycle: int) -> Optional[int]:
        """Cycle at which an in-flight item becomes visible, if any.

        Used by the fast kernel to bound bulk skips: a committed item whose
        ready time lies in the future may un-quiesce its consumer exactly
        when it becomes poppable.  A head that is already visible cannot
        wake anyone later by itself, so it contributes no bound.
        """
        if self._queue:
            ready = self._queue[0][0]
            if ready > cycle:
                return ready
        return None

    # ------------------------------------------------------------------
    # kernel interface
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        """End-of-cycle commit: staged pushes enter the queue."""
        if self._staged:
            ready = cycle + self.latency
            for item in self._staged:
                self._queue.append((ready, item))
            self._staged.clear()
        self._occupancy -= self._popped_this_cycle
        self._popped_this_cycle = 0
        self._dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Channel({self.name!r}, latency={self.latency}, "
                f"capacity={self.capacity}, queued={len(self._queue)})")
