"""The synchronous simulation kernel.

The kernel drives a flat list of :class:`~repro.sim.Component` objects with a
single global clock.  Every cycle has two phases:

1. **Tick phase** — each component's :meth:`~repro.sim.Component.tick` runs.
   Components read the *visible* heads of their input channels (items
   committed in earlier cycles) and stage pushes onto their output channels.
2. **Commit phase** — every channel with uncommitted work commits its staged
   pushes, time-stamping them ``latency`` cycles into the future, and clears
   its pop accounting.  (Channels that were neither pushed nor popped this
   cycle have nothing to commit — visiting them would be a no-op, so the
   kernel keeps a dirty list and only visits those.)

Because nothing staged in cycle *t* can be observed before ``t + 1``, the
tick order of components cannot change the outcome — the model is a proper
synchronous circuit, not an event soup.

Quiescence-aware fast path
--------------------------

With ``fast=True`` the kernel additionally skips work that provably cannot
change state, while keeping results bit-identical to the reference path:

* **Tick skipping** — before ticking a component the kernel polls
  :meth:`~repro.sim.Component.is_quiescent`; a ``True`` answer is a strict
  promise that ``tick`` would be a pure no-op *this* cycle, so the call is
  elided.
* **Component sleep** — a component that declares its wake sources via
  :meth:`~repro.sim.Component.wake_channels` is put to *sleep* when it
  reports quiescent: it is neither polled nor ticked again until one of its
  wake channels commits activity, its
  :meth:`~repro.sim.Component.next_event_cycle` hint comes due on the wake
  heap, or an explicit wake arrives.  Components that do not opt in are
  polled every cycle, exactly as before.
* **Poll backoff** — a component that keeps answering "not quiescent" is
  evidently busy; after eight *net* misses (each miss counts one up, each
  quiescent answer decays one down, so components that are busy most —
  not all — cycles still accumulate) the kernel stops polling it and
  ticks it unconditionally, re-polling only on stride-aligned cycles
  (stride doubling 8 → 64).  A quiescent answer on a stride poll halves
  the stride rather than clearing it, so a briefly-idle hot component
  does not bounce straight back to per-cycle polling.  Ticking a
  quiescent component is always sound (the reference path does nothing
  else), so this trades at most a few bounded-delay cycles of freeze
  entry for the poll cost of hot components.
* **Bulk skipping (frozen horizons)** — when no tick ran and no channel has
  uncommitted work, the system state is frozen: the kernel computes the
  earliest future wake event and advances the clock in bulk up to it,
  touching nothing.

Event-heap wake scheduling
--------------------------

Future wake events live on a lazily-invalidated min-heap
(:class:`~repro.sim.wakeheap.WakeHeap`) instead of being rediscovered by
scanning every channel and component per freeze:

* a sleeping component's ``next_event_cycle`` hint is pushed when it goes
  to sleep;
* a committed channel head whose ready cycle lies more than one cycle in
  the future (only possible with ``latency > 1``) is pushed at commit time;
  unit-latency traffic is covered by the commit-time wake of the channel's
  watchers, so hot channels never touch the heap;
* each polled cycle the kernel pops the due entries and wakes their
  subjects; a frozen horizon is simply the heap minimum combined with the
  fresh hints of the components that are still awake.

Determinism is preserved by construction: a frozen horizon is only entered
when zero ticks ran in the preceding cycle, so there is no state a skipped
cycle could have observed or changed, and a sleeping component's inputs are
exactly its wake channels, its own timer, and explicit wakes.  External
mutations between kernel calls (e.g. enqueueing a DMA job) invalidate the
cached horizon *and* wake every sleeper because every public entry point
calls :meth:`Simulator.wake`; targeted cross-component mutations (a direct
method call outside ``tick``) call :meth:`Component.wake`.

Channel commits go through :class:`~repro.sim.commit.CommitCohorts`:
channels are grouped into latency cohorts with index-set dirty bookkeeping,
and large dirty sets stamp their ready cycles through preallocated numpy
buffers (pure-Python batch otherwise).  Semantics are identical to the
reference path's per-channel ``_commit``.

Contract for ``run_until`` predicates: they are sampled at ``check_every``
granularity on both paths and must be observational.  Predicates that pop
channels (e.g. test drains) are still safe — pops mark the channel dirty and
un-freeze the kernel — but a predicate that silently mutates a component
attribute without touching a channel must call :meth:`Simulator.wake`.

Per-run skip statistics live in :attr:`Simulator.skip_stats`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .channel import Channel
from .commit import _BULK_THRESHOLD, CommitCohorts
from .component import Component
from .errors import SimulationError
from .events import EventBus
from .stats import KernelSkipStats
from .wakeheap import WakeHeap

#: Horizon value meaning "no wake-up source known" (frozen indefinitely;
#: callers clamp to their own end-of-run bound).
_FOREVER = float("inf")

#: net non-quiescent polls (misses count up, quiescent answers decay one
#: down) before a component enters poll backoff
_BACKOFF_AFTER = 8
#: initial and maximum backoff stride masks (stride - 1; power-of-two
#: strides aligned to absolute cycle numbers so every backed-off component
#: re-polls on a common boundary and freezes are delayed boundedly)
_BACKOFF_MASK_FIRST = 0x7
_BACKOFF_MASK_MAX = 0x3F

#: consecutive quiescent polls before a sleep-capable component actually
#: sleeps.  Sleeping is not free — it computes a hint, may push a heap
#: entry, and the eventual wake walks the watcher list — so a component
#: that merely idles between bursts of work (a master waiting out
#: another port's service window, a supervisor between sub-request
#: forwards) is cheaper to keep polling than to bounce in and out of
#: sleep.  The threshold is sized past the longest such natural gap
#: (a nominal burst service window) so only genuinely idle components
#: pay the sleep/wake round trip.
_SLEEP_AFTER = 32


class Simulator:
    """Owner of the global clock, the components, and the channels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    clock_hz:
        Nominal clock frequency of the modelled clock domain.  The kernel
        itself is unit-less (it counts cycles); the frequency is carried so
        that reports can convert cycle counts to seconds.
    fast:
        Enable the quiescence-aware fast path (see module docstring).  The
        default ``False`` runs the reference path: every component ticks
        every cycle.  Both paths produce bit-identical results for
        components honouring the quiescence contract;
        ``tests/test_kernel_equivalence.py`` enforces this differentially.
    parallel:
        Worker count for the sharded parallel tick engine (see
        :mod:`repro.sim.parallel`).  ``0`` (the default) disables it;
        any positive count implies ``fast`` and runs each cycle's tick
        phase as a stage schedule over the component shards derived by
        :mod:`repro.sim.partition`, with cross-shard wakes and event
        publishes deferred to stage barriers.  Topologies that do not
        yield at least two shard groups automatically fall back to the
        serial fast path.  Results are byte-identical to the reference
        path either way; the three-way oracle in ``repro.verify``
        enforces this differentially.
    parallel_backend:
        ``"auto"`` (pick ``processes`` when the plan exports shards and
        cores exist, else measure whether a thread pool beats inline
        staged execution on this host, once per process),
        ``"threads"``, ``"inline"``, or ``"processes"`` (long-lived
        worker processes own the process-exportable shards and exchange
        boundary beats at epoch barriers; degrades gracefully to
        ``threads`` when the wiring or platform cannot support it —
        see :attr:`ParallelEngine.backend_resolution`).
    tlm:
        Transaction-level fast-forward mode (see :mod:`repro.sim.tlm`).
        Implies ``fast``; incompatible with ``parallel``.  Steady-state
        reservation traffic advances one epoch (up to a reservation
        period) per step using the analytic models; contention onsets,
        faults, watchdog windows, revocation orders and any
        non-predictable component demote the window to the serial
        cycle-accurate fast path.  Committed epochs trade per-cycle
        observables for speed (checked by the ``tlm`` oracle in
        :mod:`repro.verify`); windows with no committed epoch stay
        byte-identical to ``fast=True``.
    """

    def __init__(self, name: str = "sim", clock_hz: float = 150e6,
                 fast: bool = False, parallel: int = 0,
                 parallel_backend: str = "auto", tlm: bool = False) -> None:
        if clock_hz <= 0:
            raise SimulationError("clock_hz must be positive")
        if parallel < 0:
            raise SimulationError("parallel worker count must be >= 0")
        if tlm and parallel:
            raise SimulationError(
                "tlm=True is incompatible with the sharded parallel "
                "engine (parallel=0 required)")
        self.name = name
        self.clock_hz = clock_hz
        self.fast = bool(fast) or bool(parallel) or bool(tlm)
        #: transaction-level fast-forward mode (see repro.sim.tlm):
        #: steady-state windows advance one reservation epoch per step,
        #: everything else runs on the serial fast path
        self.tlm = bool(tlm)
        self._tlm_engine = None
        #: sharded-engine worker count (0 = disabled); see repro.sim.parallel
        self.parallel = int(parallel)
        self.parallel_backend = parallel_backend
        #: picklable (builder, args, kwargs) that reproduces this
        #: simulator; required by the processes backend under spawn-like
        #: start methods, where live components are never pickled
        self.parallel_recipe = None
        #: multiprocessing start-method override for the processes
        #: backend ("fork" / "spawn" / "forkserver"; None = platform
        #: default) — mainly for tests exercising the spawn bootstrap
        self.parallel_mp_context = None
        self._parallel_engine = None
        #: when armed (by the parallel engine during a sharded tick
        #: phase), wake() / _wake_component() hand their target to this
        #: callable instead of mutating the scheduling dicts; the engine
        #: replays the wakes at the stage barrier in serial order
        self._wake_router = None
        self._cycle = 0
        self._components: List[Component] = []
        self._channels: List[Channel] = []
        self._names: Dict[str, object] = {}
        self._finished = False
        #: channels with uncommitted work this cycle (no duplicates: a
        #: channel enqueues itself only on its clean -> dirty transition)
        self._dirty_channels: List[Channel] = []
        #: first cycle at which the frozen system may change again; the
        #: clock can advance to (but not through) it without doing work.
        #: 0 means "not frozen / unknown".
        self._quiescent_until: float = 0
        #: per-run skip accounting for the fast path
        self.skip_stats = KernelSkipStats()
        #: simulation-wide fault/recovery notification hub (see
        #: :mod:`repro.sim.events`); components publish, the hypervisor
        #: and observers subscribe.
        self.events = EventBus()
        #: future wake events (sleeping components' hints, far-future
        #: channel heads)
        self._wakeheap = WakeHeap()
        #: latency-cohort commit engine (rebuilt with the wiring)
        self._cohorts = CommitCohorts(self, [])
        #: tri-state numpy override for the commit cohorts (tests force
        #: the pure-Python batch path by setting this to False)
        self._commit_numpy: Optional[bool] = None
        #: scheduling wiring (watcher lists, cohort indices, sleep
        #: capability) must be rebuilt before the next fast cycle
        self._wiring_stale = True
        #: components currently eligible for polling, in stable insertion
        #: order (dict-as-ordered-set), and the complementary sleep set
        self._awake: Dict[Component, bool] = {}
        self._asleep: Dict[Component, bool] = {}

    # ------------------------------------------------------------------
    # registration (called from Component / Channel constructors)
    # ------------------------------------------------------------------

    def _register_component(self, component: Component) -> None:
        self._check_name(component.name)
        self._components.append(component)
        self._names[component.name] = component
        self._quiescent_until = 0
        self._wiring_stale = True

    def _register_channel(self, channel: Channel) -> None:
        self._check_name(channel.name)
        self._channels.append(channel)
        self._names[channel.name] = channel
        self._quiescent_until = 0
        self._wiring_stale = True

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise SimulationError(
                f"duplicate name {name!r} in simulator {self.name!r}")

    def _mark_dirty(self, channel: Channel) -> None:
        """A channel transitioned clean -> dirty; queue it for commit."""
        self._dirty_channels.append(channel)
        self._quiescent_until = 0

    def wake(self) -> None:
        """Invalidate any cached quiescence horizon and wake all sleepers.

        Components whose externally-callable API mutates state outside a
        tick (job enqueues, gate decoupling, configuration writes) call
        this so the fast path re-polls everything on the next cycle.
        Calling it spuriously is always safe — it only costs one poll
        round.  Woken components whose hints changed re-schedule fresh
        heap entries when they next sleep; superseded entries go stale
        and are dropped by the heap.
        """
        router = self._wake_router
        if router is not None:
            self._quiescent_until = 0
            router(None)
            return
        self._wake_all_direct()

    def _wake_all_direct(self) -> None:
        """The un-routed body of :meth:`wake` (main thread only)."""
        self._quiescent_until = 0
        asleep = self._asleep
        if asleep:
            awake = self._awake
            heap = self._wakeheap
            for component in asleep:
                component._k_asleep = False
                component._k_quiet = 0
                awake[component] = True
                heap.invalidate(component)
            asleep.clear()

    def _wake_component(self, component: Component) -> None:
        """Wake one sleeping component (see :meth:`Component.wake`)."""
        router = self._wake_router
        if router is not None:
            self._quiescent_until = 0
            router(component)
            return
        self._wake_component_direct(component)

    def _wake_component_direct(self, component: Component) -> None:
        """The un-routed body of :meth:`_wake_component`."""
        self._quiescent_until = 0
        if component._k_asleep:
            component._k_asleep = False
            component._k_quiet = 0
            del self._asleep[component]
            self._awake[component] = True
            self._wakeheap.invalidate(component)

    def _wake_direct(self, target: "Component | None") -> None:
        """Un-routed wake dispatch (parallel-engine fallback hook)."""
        if target is None:
            self._wake_all_direct()
        else:
            self._wake_component_direct(target)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The current cycle number (starts at 0)."""
        return self._cycle

    def seconds(self, cycles: Optional[int] = None) -> float:
        """Convert ``cycles`` (default: the current time) to seconds."""
        if cycles is None:
            cycles = self._cycle
        return cycles / self.clock_hz

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._finished:
            raise SimulationError(
                f"simulator {self.name!r} stepped after finish()")
        self._quiescent_until = 0
        if self.fast:
            self._advance(self._cycle + 1)
        else:
            self._reference_cycle()

    def _advance(self, end: int) -> None:
        """Advance to ``end`` on the best enabled fast engine.

        Routes to the sharded parallel engine when one is configured
        *and* the current wiring partitions into at least two shard
        groups; otherwise (including mid-run, if registrations reshape
        the wiring) the serial fast path runs.  Both produce identical
        results, so the routing is purely a performance decision.
        """
        if self.parallel and self._parallel_engine_active():
            self._parallel_engine.run_to(end)
        elif self.tlm:
            engine = self._tlm_engine
            if engine is None:
                from .tlm import TlmEngine
                engine = self._tlm_engine = TlmEngine(self)
            engine.advance(end)
        else:
            self._run_fast(end)

    def _parallel_engine_active(self) -> bool:
        engine = self._parallel_engine
        if engine is None:
            from .parallel import ParallelEngine
            engine = self._parallel_engine = ParallelEngine(
                self, self.parallel, self.parallel_backend)
        return engine.active()

    @property
    def parallel_plan(self):
        """The current :class:`~repro.sim.partition.ShardPlan` (or None)."""
        engine = self._parallel_engine
        return None if engine is None else engine.plan

    @property
    def parallel_shard_stats(self):
        """Per-shard :class:`KernelSkipStats` (empty dict when serial)."""
        engine = self._parallel_engine
        return {} if engine is None else dict(engine.shard_stats)

    def _reference_cycle(self) -> None:
        """One cycle the long way: tick everything, commit dirty channels."""
        cycle = self._cycle
        for component in self._components:
            component.tick(cycle)
        dirty = self._dirty_channels
        if dirty:
            for channel in dirty:
                channel._commit(cycle)
            dirty.clear()
        self._cycle = cycle + 1

    def _rebuild_wiring(self) -> None:
        """(Re)derive the fast path's scheduling structures.

        Runs lazily at the start of the next fast cycle after any
        component/channel registration, never at construction time —
        :meth:`Component.wake_channels` may reference attributes that
        only exist once the subclass constructor finished.  A rebuild
        wakes every component (new arrivals start awake, sleepers
        re-poll and re-sleep with fresh hints) and re-seeds the heap
        with any in-flight far-future channel heads.
        """
        heap = self._wakeheap
        heap.clear()
        self._awake = {}
        self._asleep = {}
        cycle = self._cycle
        for channel in self._channels:
            channel._watchers = ()
            queue = channel._queue
            if queue and queue[0][0] > cycle + 1:
                heap.push(channel, queue[0][0])
        watcher_lists: Dict[Channel, List[Component]] = {}
        for component in self._components:
            component._k_asleep = False
            component._k_mask = 0
            component._k_miss = 0
            component._k_quiet = 0
            declared = component.wake_channels()
            component._k_sleepable = declared is not None
            self._awake[component] = True
            if declared:
                for channel in declared:
                    watcher_lists.setdefault(channel, []).append(component)
        for channel, watchers in watcher_lists.items():
            channel._watchers = tuple(watchers)
        self._cohorts = CommitCohorts(self, self._channels,
                                      use_numpy=self._commit_numpy)
        self._wiring_stale = False

    def _wake_due(self, cycle: int) -> None:
        """Pop due heap entries and wake their subjects.

        Component entries re-enter the awake set; channel entries wake
        the channel's watchers and are revalidated — if the head is
        somehow still in the future (a stale entry that fired early),
        the channel is rescheduled at the true ready cycle.
        """
        stats = self.skip_stats
        awake = self._awake
        asleep = self._asleep
        heap = self._wakeheap
        for subject in heap.pop_due(cycle):
            stats.heap_pops += 1
            watchers = getattr(subject, "_watchers", None)
            if watchers is None:
                # a component's next_event_cycle hint came due
                if subject._k_asleep:
                    subject._k_asleep = False
                    subject._k_quiet = 0
                    del asleep[subject]
                    awake[subject] = True
            else:
                for component in watchers:
                    if component._k_asleep:
                        component._k_asleep = False
                        component._k_quiet = 0
                        del asleep[component]
                        awake[component] = True
                queue = subject._queue
                if queue and queue[0][0] > cycle:
                    if heap.push(subject, queue[0][0]):
                        stats.heap_pushes += 1

    def _run_fast(self, end: int) -> None:
        """Run polled cycles up to ``end``, bulk-skipping frozen spans.

        The single inner loop of the fast path — ``run``, ``run_until``
        and ``step`` all funnel here, so there is exactly one copy of the
        cycle semantics.  Per-cycle overhead is amortized across the
        window: loop-invariant objects are hoisted into locals (all of
        them mutated in place, never replaced, so the bindings stay
        valid across ``_rebuild_wiring``), the small-dirty-set commit is
        inlined rather than dispatched through
        :meth:`CommitCohorts.flush`, and the skip statistics accumulate
        in plain integers folded into :attr:`skip_stats` once per window
        (the ``finally`` keeps them truthful if a component raises
        mid-window).

        Within a polled cycle the kernel wakes due heap subjects, then
        iterates the full registration list, skipping sleepers by flag,
        instead of snapshotting the awake set: components must tick in
        registration order (the reference path's order) because direct
        cross-component calls (e.g. EXBAR completion notifications into
        a TS, or the recovery agent re-coupling a gate) are observable
        within the same cycle — and a sleeper woken by an earlier
        component mid-loop must still be reached *this* cycle, exactly
        as the reference path would tick it.  If nothing ticked and no
        channel has uncommitted work, the system is frozen and the cycle
        at which it may change again is cached in ``_quiescent_until``.
        """
        stats = self.skip_stats
        heap = self._wakeheap
        heap_list = heap._heap
        heap_push = heap.push
        components = self._components
        dirty = self._dirty_channels
        wake = self._wake_component_direct
        ran_total = 0
        skipped = 0
        slept = 0
        polled = 0
        frozen = 0
        batches = 0
        committed = 0
        heap_pushes = 0
        try:
            while self._cycle < end:
                if self._finished:
                    raise SimulationError(
                        f"simulator {self.name!r} stepped after finish()")
                cycle = self._cycle
                if cycle < self._quiescent_until:
                    jump_to = self._quiescent_until
                    if jump_to > end:
                        jump_to = end
                    frozen += jump_to - cycle
                    self._cycle = jump_to
                    continue
                if self._wiring_stale:
                    self._rebuild_wiring()
                if heap_list and heap_list[0][0] <= cycle:
                    self._wake_due(cycle)
                ran = 0
                for component in components:
                    if component._k_asleep:
                        slept += 1
                        continue
                    mask = component._k_mask
                    if mask and cycle & mask:
                        # backed off: tick without polling (sound either
                        # way)
                        component.tick(cycle)
                        ran += 1
                        continue
                    if component.is_quiescent(cycle):
                        skipped += 1
                        if mask:
                            component._k_mask = mask >> 1
                        elif component._k_miss:
                            component._k_miss -= 1
                        if component._k_sleepable:
                            quiet = component._k_quiet + 1
                            if quiet >= _SLEEP_AFTER:
                                component._k_asleep = True
                                del self._awake[component]
                                self._asleep[component] = True
                                hint = component.next_event_cycle(cycle)
                                if hint is not None and hint > cycle:
                                    if heap_push(component, hint):
                                        heap_pushes += 1
                            else:
                                component._k_quiet = quiet
                    else:
                        component.tick(cycle)
                        ran += 1
                        component._k_quiet = 0
                        if mask:
                            if mask < _BACKOFF_MASK_MAX:
                                component._k_mask = (mask << 1) | 1
                        else:
                            miss = component._k_miss + 1
                            if miss >= _BACKOFF_AFTER:
                                component._k_mask = _BACKOFF_MASK_FIRST
                                component._k_miss = 0
                            else:
                                component._k_miss = miss
                ran_total += ran
                polled += 1
                if dirty:
                    n_dirty = len(dirty)
                    if n_dirty >= _BULK_THRESHOLD:
                        self._cohorts.flush(cycle, dirty)
                    else:
                        # inlined pure-Python commit (the overwhelmingly
                        # common case; semantics identical to
                        # CommitCohorts.flush, which tests compare
                        # against Channel._commit directly)
                        batches += 1
                        committed += n_dirty
                        next_cycle = cycle + 1
                        sleeping = True if self._asleep else False
                        for channel in dirty:
                            staged = channel._staged
                            queue = channel._queue
                            if staged:
                                ready = cycle + channel.latency
                                if len(staged) == 1:
                                    queue.append((ready, staged[0]))
                                else:
                                    queue.extend(
                                        [(ready, item) for item in staged])
                                staged.clear()
                            channel._occupancy -= channel._popped_this_cycle
                            channel._popped_this_cycle = 0
                            channel._dirty = False
                            if queue and queue[0][0] > next_cycle:
                                if heap_push(channel, queue[0][0]):
                                    heap_pushes += 1
                            if sleeping:
                                for component in channel._watchers:
                                    if component._k_asleep:
                                        wake(component)
                        dirty.clear()
                elif not ran:
                    horizon = heap.peek_cycle()
                    for component in self._awake:
                        hint = component.next_event_cycle(cycle)
                        if hint is not None and hint < horizon:
                            horizon = hint
                    if horizon > cycle:
                        self._quiescent_until = horizon
                        stats.horizon_scans += 1
                self._cycle = cycle + 1
        finally:
            stats.ticks_run += ran_total
            stats.ticks_skipped += skipped
            stats.ticks_slept += slept
            stats.cycles_polled += polled
            stats.cycles_frozen += frozen
            stats.cycles_total += polled + frozen
            stats.commit_batches += batches
            stats.commit_channels += committed
            stats.heap_pushes += heap_pushes

    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        if cycles < 0:
            raise SimulationError("cannot run a negative number of cycles")
        self._quiescent_until = 0
        if self.fast:
            self._advance(self._cycle + cycles)
            return
        for _ in range(cycles):
            if self._finished:
                raise SimulationError(
                    f"simulator {self.name!r} stepped after finish()")
            self._reference_cycle()

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000,
                  check_every: int = 1) -> int:
        """Run until ``predicate()`` is true; return the cycles elapsed.

        The predicate is evaluated every ``check_every`` cycles (checking
        less often speeds up long simulations whose termination condition is
        expensive).  With ``check_every == 1`` the returned elapsed count is
        exact: the simulation stops on the first cycle boundary where the
        predicate holds.  With larger values the stop is quantised — up to
        ``check_every - 1`` extra cycles may run past the cycle where the
        predicate first became true, but never past ``max_cycles``.

        Raises :class:`SimulationError` if ``max_cycles`` elapse without the
        predicate becoming true — silent timeouts hide deadlock bugs, so the
        failure is loud.
        """
        if check_every < 1:
            raise SimulationError("check_every must be >= 1")
        start = self._cycle
        self._quiescent_until = 0
        while not predicate():
            elapsed = self._cycle - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles in simulator "
                    f"{self.name!r} (started at cycle {start})")
            stride = min(check_every, max_cycles - elapsed)
            if self.fast:
                # note: no _quiescent_until reset between strides — an
                # observational predicate cannot unfreeze the system.
                # _advance runs exactly `stride` cycles on either engine
                # (the parallel engine checks the stage barrier's cycle
                # count against the same bound), so the predicate is
                # sampled on identical cycle boundaries serial/parallel.
                self._advance(self._cycle + stride)
            else:
                for _ in range(stride):
                    self.step()
        return self._cycle - start

    def finish(self) -> None:
        """Mark the simulation as complete; further steps raise."""
        self._finished = True
        if self._parallel_engine is not None:
            self._parallel_engine.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def lookup(self, name: str):
        """Return the component or channel registered under ``name``."""
        try:
            return self._names[name]
        except KeyError:
            raise SimulationError(
                f"no component or channel named {name!r}") from None

    @property
    def components(self) -> List[Component]:
        """The registered components, in tick order (read-only view)."""
        return list(self._components)

    @property
    def channels(self) -> List[Channel]:
        """The registered channels (read-only view)."""
        return list(self._channels)

    def idle(self) -> bool:
        """True when every channel is empty (no traffic in flight)."""
        return all(channel.is_idle for channel in self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator({self.name!r}, cycle={self._cycle}, "
                f"components={len(self._components)}, "
                f"channels={len(self._channels)}, "
                f"fast={self.fast})")
