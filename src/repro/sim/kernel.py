"""The synchronous simulation kernel.

The kernel drives a flat list of :class:`~repro.sim.Component` objects with a
single global clock.  Every cycle has two phases:

1. **Tick phase** — each component's :meth:`~repro.sim.Component.tick` runs.
   Components read the *visible* heads of their input channels (items
   committed in earlier cycles) and stage pushes onto their output channels.
2. **Commit phase** — every channel with uncommitted work commits its staged
   pushes, time-stamping them ``latency`` cycles into the future, and clears
   its pop accounting.  (Channels that were neither pushed nor popped this
   cycle have nothing to commit — visiting them would be a no-op, so the
   kernel keeps a dirty list and only visits those.)

Because nothing staged in cycle *t* can be observed before ``t + 1``, the
tick order of components cannot change the outcome — the model is a proper
synchronous circuit, not an event soup.

Quiescence-aware fast path
--------------------------

With ``fast=True`` the kernel additionally skips work that provably cannot
change state, while keeping results bit-identical to the reference path:

* **Tick skipping** — before ticking a component the kernel polls
  :meth:`~repro.sim.Component.is_quiescent`; a ``True`` answer is a strict
  promise that ``tick`` would be a pure no-op *this* cycle, so the call is
  elided.  The poll repeats every simulated cycle against current channel
  state, so a skipped component is reconsidered as soon as anything changes.
* **Bulk skipping (frozen horizons)** — when *every* component is quiescent
  and no channel has uncommitted work, the system state is frozen: no tick
  ran, so nothing can have mutated.  The only future wake-up sources are
  in-flight channel items (their ready cycles are known) and component
  internal timers (reported via
  :meth:`~repro.sim.Component.next_event_cycle`).  The kernel computes the
  earliest such cycle once and then advances the clock in bulk up to it,
  touching nothing.

Determinism is preserved by construction: a frozen horizon is only entered
when zero ticks ran in the preceding cycle, so there is no state a skipped
cycle could have observed or changed.  External mutations between kernel
calls (e.g. enqueueing a DMA job) invalidate the cached horizon because
every public entry point resets it, every channel push/pop/clear marks the
channel dirty, and components whose configuration is mutated from outside a
tick call :meth:`Simulator.wake`.

Contract for ``run_until`` predicates: they are sampled at ``check_every``
granularity on both paths and must be observational.  Predicates that pop
channels (e.g. test drains) are still safe — pops mark the channel dirty and
un-freeze the kernel — but a predicate that silently mutates a component
attribute without touching a channel must call :meth:`Simulator.wake`.

Per-run skip statistics live in :attr:`Simulator.skip_stats`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .channel import Channel
from .component import Component
from .errors import SimulationError
from .events import EventBus
from .stats import KernelSkipStats

#: Horizon value meaning "no wake-up source known" (frozen indefinitely;
#: callers clamp to their own end-of-run bound).
_FOREVER = float("inf")


class Simulator:
    """Owner of the global clock, the components, and the channels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    clock_hz:
        Nominal clock frequency of the modelled clock domain.  The kernel
        itself is unit-less (it counts cycles); the frequency is carried so
        that reports can convert cycle counts to seconds.
    fast:
        Enable the quiescence-aware fast path (see module docstring).  The
        default ``False`` runs the reference path: every component ticks
        every cycle.  Both paths produce bit-identical results for
        components honouring the quiescence contract;
        ``tests/test_kernel_equivalence.py`` enforces this differentially.
    """

    def __init__(self, name: str = "sim", clock_hz: float = 150e6,
                 fast: bool = False) -> None:
        if clock_hz <= 0:
            raise SimulationError("clock_hz must be positive")
        self.name = name
        self.clock_hz = clock_hz
        self.fast = bool(fast)
        self._cycle = 0
        self._components: List[Component] = []
        self._channels: List[Channel] = []
        self._names: Dict[str, object] = {}
        self._finished = False
        #: channels with uncommitted work this cycle (no duplicates: a
        #: channel enqueues itself only on its clean -> dirty transition)
        self._dirty_channels: List[Channel] = []
        #: first cycle at which the frozen system may change again; the
        #: clock can advance to (but not through) it without doing work.
        #: 0 means "not frozen / unknown".
        self._quiescent_until: float = 0
        #: per-run skip accounting for the fast path
        self.skip_stats = KernelSkipStats()
        #: simulation-wide fault/recovery notification hub (see
        #: :mod:`repro.sim.events`); components publish, the hypervisor
        #: and observers subscribe.
        self.events = EventBus()

    # ------------------------------------------------------------------
    # registration (called from Component / Channel constructors)
    # ------------------------------------------------------------------

    def _register_component(self, component: Component) -> None:
        self._check_name(component.name)
        self._components.append(component)
        self._names[component.name] = component
        self._quiescent_until = 0

    def _register_channel(self, channel: Channel) -> None:
        self._check_name(channel.name)
        self._channels.append(channel)
        self._names[channel.name] = channel
        self._quiescent_until = 0

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise SimulationError(
                f"duplicate name {name!r} in simulator {self.name!r}")

    def _mark_dirty(self, channel: Channel) -> None:
        """A channel transitioned clean -> dirty; queue it for commit."""
        self._dirty_channels.append(channel)
        self._quiescent_until = 0

    def wake(self) -> None:
        """Invalidate any cached quiescence horizon.

        Components whose externally-callable API mutates state outside a
        tick (job enqueues, gate decoupling, configuration writes) call
        this so the fast path re-polls everything on the next cycle.
        Calling it spuriously is always safe — it only costs one poll.
        """
        self._quiescent_until = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The current cycle number (starts at 0)."""
        return self._cycle

    def seconds(self, cycles: Optional[int] = None) -> float:
        """Convert ``cycles`` (default: the current time) to seconds."""
        if cycles is None:
            cycles = self._cycle
        return cycles / self.clock_hz

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._finished:
            raise SimulationError(
                f"simulator {self.name!r} stepped after finish()")
        self._quiescent_until = 0
        if self.fast:
            self._polled_cycle()
        else:
            self._reference_cycle()

    def _reference_cycle(self) -> None:
        """One cycle the long way: tick everything, commit dirty channels."""
        cycle = self._cycle
        for component in self._components:
            component.tick(cycle)
        dirty = self._dirty_channels
        if dirty:
            for channel in dirty:
                channel._commit(cycle)
            dirty.clear()
        self._cycle = cycle + 1

    def _polled_cycle(self) -> None:
        """One cycle with quiescence polling (fast path).

        Ticks only non-quiescent components; if *nothing* ticked and no
        channel has uncommitted work, the system is frozen and the cycle
        at which it may change again is cached in ``_quiescent_until``.
        """
        cycle = self._cycle
        stats = self.skip_stats
        all_quiescent = True
        ticks_run = 0
        ticks_skipped = 0
        for component in self._components:
            if component.is_quiescent(cycle):
                ticks_skipped += 1
            else:
                all_quiescent = False
                component.tick(cycle)
                ticks_run += 1
        dirty = self._dirty_channels
        if dirty:
            for channel in dirty:
                channel._commit(cycle)
            dirty.clear()
        elif all_quiescent:
            self._quiescent_until = self._horizon(cycle)
            stats.horizon_scans += 1
        stats.ticks_run += ticks_run
        stats.ticks_skipped += ticks_skipped
        stats.cycles_polled += 1
        stats.cycles_total += 1
        self._cycle = cycle + 1

    def _horizon(self, cycle: int) -> float:
        """Earliest future cycle at which the frozen system may change.

        Minimum over (a) the ready cycles of in-flight channel items and
        (b) the internal-timer hints of the (all-quiescent) components.
        Returns at least ``cycle + 1``; returns ``inf`` when no wake-up
        source exists (permanently idle until external input).
        """
        horizon = _FOREVER
        for channel in self._channels:
            wake = channel.next_wake_cycle(cycle)
            if wake is not None and wake < horizon:
                horizon = wake
        for component in self._components:
            hint = component.next_event_cycle(cycle)
            if hint is not None and hint < horizon:
                horizon = hint
        if horizon <= cycle:
            # A stale or conservative hint pointing at the present cannot
            # freeze anything; fall back to single-cycle progress.
            return cycle + 1
        return horizon

    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        if cycles < 0:
            raise SimulationError("cannot run a negative number of cycles")
        if not self.fast:
            for _ in range(cycles):
                self.step()
            return
        end = self._cycle + cycles
        self._quiescent_until = 0
        stats = self.skip_stats
        while self._cycle < end:
            if self._finished:
                raise SimulationError(
                    f"simulator {self.name!r} stepped after finish()")
            if self._cycle < self._quiescent_until:
                jump_to = min(self._quiescent_until, end)
                stats.cycles_frozen += jump_to - self._cycle
                stats.cycles_total += jump_to - self._cycle
                self._cycle = jump_to
            else:
                self._polled_cycle()

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000,
                  check_every: int = 1) -> int:
        """Run until ``predicate()`` is true; return the cycles elapsed.

        The predicate is evaluated every ``check_every`` cycles (checking
        less often speeds up long simulations whose termination condition is
        expensive).  With ``check_every == 1`` the returned elapsed count is
        exact: the simulation stops on the first cycle boundary where the
        predicate holds.  With larger values the stop is quantised — up to
        ``check_every - 1`` extra cycles may run past the cycle where the
        predicate first became true, but never past ``max_cycles``.

        Raises :class:`SimulationError` if ``max_cycles`` elapse without the
        predicate becoming true — silent timeouts hide deadlock bugs, so the
        failure is loud.
        """
        if check_every < 1:
            raise SimulationError("check_every must be >= 1")
        start = self._cycle
        self._quiescent_until = 0
        stats = self.skip_stats
        while not predicate():
            elapsed = self._cycle - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles in simulator "
                    f"{self.name!r} (started at cycle {start})")
            stride = min(check_every, max_cycles - elapsed)
            if self.fast:
                target = self._cycle + stride
                while self._cycle < target:
                    if self._finished:
                        raise SimulationError(
                            f"simulator {self.name!r} stepped after "
                            f"finish()")
                    if self._cycle < self._quiescent_until:
                        jump_to = min(self._quiescent_until, target)
                        stats.cycles_frozen += jump_to - self._cycle
                        stats.cycles_total += jump_to - self._cycle
                        self._cycle = jump_to
                    else:
                        self._polled_cycle()
            else:
                for _ in range(stride):
                    self.step()
        return self._cycle - start

    def finish(self) -> None:
        """Mark the simulation as complete; further steps raise."""
        self._finished = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def lookup(self, name: str):
        """Return the component or channel registered under ``name``."""
        try:
            return self._names[name]
        except KeyError:
            raise SimulationError(
                f"no component or channel named {name!r}") from None

    @property
    def components(self) -> List[Component]:
        """The registered components, in tick order (read-only view)."""
        return list(self._components)

    @property
    def channels(self) -> List[Channel]:
        """The registered channels (read-only view)."""
        return list(self._channels)

    def idle(self) -> bool:
        """True when every channel is empty (no traffic in flight)."""
        return all(channel.is_idle for channel in self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator({self.name!r}, cycle={self._cycle}, "
                f"components={len(self._components)}, "
                f"channels={len(self._channels)}, "
                f"fast={self.fast})")
