"""The synchronous simulation kernel.

The kernel drives a flat list of :class:`~repro.sim.Component` objects with a
single global clock.  Every cycle has two phases:

1. **Tick phase** — each component's :meth:`~repro.sim.Component.tick` runs.
   Components read the *visible* heads of their input channels (items
   committed in earlier cycles) and stage pushes onto their output channels.
2. **Commit phase** — every channel commits its staged pushes, time-stamping
   them ``latency`` cycles into the future, and clears its pop accounting.

Because nothing staged in cycle *t* can be observed before ``t + 1``, the
tick order of components cannot change the outcome — the model is a proper
synchronous circuit, not an event soup.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .channel import Channel
from .component import Component
from .errors import SimulationError


class Simulator:
    """Owner of the global clock, the components, and the channels.

    Parameters
    ----------
    name:
        Label used in error messages and traces.
    clock_hz:
        Nominal clock frequency of the modelled clock domain.  The kernel
        itself is unit-less (it counts cycles); the frequency is carried so
        that reports can convert cycle counts to seconds.
    """

    def __init__(self, name: str = "sim", clock_hz: float = 150e6) -> None:
        if clock_hz <= 0:
            raise SimulationError("clock_hz must be positive")
        self.name = name
        self.clock_hz = clock_hz
        self._cycle = 0
        self._components: List[Component] = []
        self._channels: List[Channel] = []
        self._names: Dict[str, object] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # registration (called from Component / Channel constructors)
    # ------------------------------------------------------------------

    def _register_component(self, component: Component) -> None:
        self._check_name(component.name)
        self._components.append(component)
        self._names[component.name] = component

    def _register_channel(self, channel: Channel) -> None:
        self._check_name(channel.name)
        self._channels.append(channel)
        self._names[channel.name] = channel

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise SimulationError(
                f"duplicate name {name!r} in simulator {self.name!r}")

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The current cycle number (starts at 0)."""
        return self._cycle

    def seconds(self, cycles: Optional[int] = None) -> float:
        """Convert ``cycles`` (default: the current time) to seconds."""
        if cycles is None:
            cycles = self._cycle
        return cycles / self.clock_hz

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by exactly one clock cycle."""
        if self._finished:
            raise SimulationError(
                f"simulator {self.name!r} stepped after finish()")
        cycle = self._cycle
        for component in self._components:
            component.tick(cycle)
        for channel in self._channels:
            channel._commit(cycle)
        self._cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        if cycles < 0:
            raise SimulationError("cannot run a negative number of cycles")
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000,
                  check_every: int = 1) -> int:
        """Run until ``predicate()`` is true; return the cycles elapsed.

        The predicate is evaluated every ``check_every`` cycles (checking
        less often speeds up long simulations whose termination condition is
        expensive).  Raises :class:`SimulationError` if ``max_cycles`` elapse
        without the predicate becoming true — silent timeouts hide deadlock
        bugs, so the failure is loud.
        """
        if check_every < 1:
            raise SimulationError("check_every must be >= 1")
        start = self._cycle
        while not predicate():
            elapsed = self._cycle - start
            if elapsed >= max_cycles:
                raise SimulationError(
                    f"run_until exceeded {max_cycles} cycles in simulator "
                    f"{self.name!r} (started at cycle {start})")
            for _ in range(check_every):
                self.step()
        return self._cycle - start

    def finish(self) -> None:
        """Mark the simulation as complete; further steps raise."""
        self._finished = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def lookup(self, name: str):
        """Return the component or channel registered under ``name``."""
        try:
            return self._names[name]
        except KeyError:
            raise SimulationError(
                f"no component or channel named {name!r}") from None

    @property
    def components(self) -> List[Component]:
        """The registered components, in tick order (read-only view)."""
        return list(self._components)

    @property
    def channels(self) -> List[Channel]:
        """The registered channels (read-only view)."""
        return list(self._channels)

    def idle(self) -> bool:
        """True when every channel is empty (no traffic in flight)."""
        return all(channel.is_idle for channel in self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator({self.name!r}, cycle={self._cycle}, "
                f"components={len(self._components)}, "
                f"channels={len(self._channels)})")
