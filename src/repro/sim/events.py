"""Simulation-wide fault/recovery event notification.

Hardware fault containment (watchdog trips in the Transaction
Supervisors, see :mod:`repro.hyperconnect.supervisor`) must reach the
hypervisor layer without the fabric knowing who is listening — exactly
like an interrupt line.  The :class:`EventBus` is that line: components
publish immutable event records, subscribers (the hypervisor's recovery
agent, tracers, tests) react synchronously and deterministically.

Determinism contract: publishing is synchronous and subscriber order is
subscription order, so runs on the reference and fast kernel paths
deliver identical event sequences.  The bus also retains a bounded log
of everything published; differential tests compare those logs
bit-for-bit across kernel paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PortFaultEvent:
    """A port's watchdog or protocol guard tripped; the port is contained.

    ``kind`` is ``"watchdog_timeout"`` (an issued transaction outlived
    ``timeout_cycles``) or ``"protocol_violation"`` (an illegal request
    was caught at ingest).  ``age`` is how many cycles the oldest
    offending transaction had been outstanding when the trip fired (0
    for protocol violations, which fire at ingest).
    """

    cycle: int
    source: str
    port: int
    kind: str
    age: int = 0
    outstanding_reads: int = 0
    outstanding_writes: int = 0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {"event": "port_fault", "cycle": self.cycle,
                "source": self.source, "port": self.port,
                "kind": self.kind, "age": self.age,
                "outstanding_reads": self.outstanding_reads,
                "outstanding_writes": self.outstanding_writes,
                "detail": self.detail}


@dataclass(frozen=True)
class PortRecoveryEvent:
    """A hypervisor recovery action on a previously faulted port.

    ``kind`` is one of ``"quarantine"`` (port confirmed decoupled and
    handed to the recovery policy), ``"reset"`` (supervisor and attached
    engine reset), ``"recouple"`` (port returned to service) or
    ``"giveup"`` (retry budget exhausted; the port stays quarantined).
    ``attempt`` counts recovery attempts for this port, starting at 1.
    """

    cycle: int
    source: str
    port: int
    kind: str
    attempt: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {"event": "port_recovery", "cycle": self.cycle,
                "source": self.source, "port": self.port,
                "kind": self.kind, "attempt": self.attempt}


@dataclass(frozen=True)
class GrantRevocationEvent:
    """A hypervisor-initiated memory-grant transition on a tenant port.

    Distinct from :class:`PortFaultEvent` on purpose: a revocation is a
    planned state transition, and recovery agents subscribed to fault
    events must not auto-retry it.  ``kind`` is one of ``"quiesce"``
    (victim ports decoupled, drain started), ``"commit"`` (window torn
    down, filter retargeted, block coalesced) or ``"regrant"`` (the same
    physical range handed to the beneficiary domain).
    """

    cycle: int
    source: str
    domain: str
    kind: str
    base: int
    size: int
    beneficiary: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {"event": "grant_revocation", "cycle": self.cycle,
                "source": self.source, "domain": self.domain,
                "kind": self.kind, "base": self.base, "size": self.size,
                "beneficiary": self.beneficiary}


class EventBus:
    """Synchronous publish/subscribe hub owned by the simulator.

    Parameters
    ----------
    log_limit:
        Maximum number of retained events (oldest dropped first).
        ``None`` retains everything.  Fault events are rare by nature,
        so the default is generous without risking unbounded growth on
        pathological runs.
    """

    def __init__(self, log_limit: Optional[int] = 4096) -> None:
        self._subscribers: List[Tuple[Optional[type], Callable]] = []
        self._log: Deque[Any] = deque(maxlen=log_limit)
        self.published_total = 0
        self.dropped = 0
        #: when set (by the parallel kernel during a sharded tick phase),
        #: publish() hands the event to this callable instead of
        #: dispatching; the kernel flushes deferred events at the stage
        #: barrier in deterministic component order
        self._defer: Optional[Callable[[Any], None]] = None

    def subscribe(self, callback: Callable[[Any], None],
                  event_type: Optional[type] = None) -> None:
        """Invoke ``callback(event)`` on every publish.

        With ``event_type`` given, only events of that type (or a
        subclass) are delivered to this subscriber.
        """
        self._subscribers.append((event_type, callback))

    def publish(self, event: Any) -> None:
        """Deliver ``event`` to subscribers (in subscription order).

        While the parallel kernel runs a sharded tick phase, delivery is
        deferred: the event is recorded by the kernel and dispatched at
        the stage barrier, in the deterministic order the publishing
        components would have run serially.  Publishers cannot observe
        the difference, because subscriber reactions only feed back
        through channels and wakes — both already end-of-cycle effects.
        """
        defer = self._defer
        if defer is not None:
            defer(event)
            return
        self._dispatch(event)

    def _dispatch(self, event: Any) -> None:
        """Log and deliver one event immediately (barrier flush entry)."""
        if (self._log.maxlen is not None
                and len(self._log) == self._log.maxlen):
            self.dropped += 1
        self._log.append(event)
        self.published_total += 1
        for event_type, callback in self._subscribers:
            if event_type is None or isinstance(event, event_type):
                callback(event)

    # ------------------------------------------------------------------
    # retained log
    # ------------------------------------------------------------------

    @property
    def log(self) -> List[Any]:
        """The retained events, oldest first (read-only view)."""
        return list(self._log)

    def events(self, event_type: Optional[type] = None,
               port: Optional[int] = None) -> List[Any]:
        """Retained events, optionally filtered by type and port."""
        selected: List[Any] = []
        for event in self._log:
            if event_type is not None and not isinstance(event, event_type):
                continue
            if port is not None and getattr(event, "port", None) != port:
                continue
            selected.append(event)
        return selected

    def as_dicts(self) -> List[Dict[str, Any]]:
        """The retained log as JSON-friendly dicts, in publish order."""
        return [event.as_dict() for event in self._log]

    def clear(self) -> None:
        """Drop the retained log (subscribers stay registered)."""
        self._log.clear()
        self.dropped = 0

    def attach_tracer(self, tracer) -> None:
        """Mirror every published event into ``tracer`` as a trace event.

        The bridge is purely observational, so traces taken through it
        are identical whichever kernel path produced them.
        """
        def _bridge(event) -> None:
            fields = event.as_dict()
            cycle = fields.pop("cycle")
            source = fields.pop("source")
            kind = fields.pop("kind")
            tracer.record(cycle, source, kind, **fields)

        self.subscribe(_bridge)

    def __len__(self) -> int:
        return len(self._log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventBus(retained={len(self._log)}, "
                f"published={self.published_total})")
