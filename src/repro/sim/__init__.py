"""Synchronous cycle-based simulation kernel.

This package is the foundation of the reproduction: a deterministic,
order-independent clocked simulator in which hardware modules are
:class:`Component` subclasses connected by registered FIFO
:class:`Channel` links.
"""

from .channel import Channel, UNBOUNDED
from .commit import CommitCohorts
from .component import Component
from .errors import (
    ChannelError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from .events import (EventBus, GrantRevocationEvent, PortFaultEvent,
                     PortRecoveryEvent)
from .kernel import Simulator
from .parallel import ParallelEngine, measured_backend
from .partition import ProcessShardInfo, ShardPlan, Stage, build_plan
from .procpool import ProcessShardPool
from .stats import (
    Histogram,
    KernelSkipStats,
    OnlineStats,
    PortFaultStats,
    RateCounter,
)
from .trace import TraceEvent, Tracer
from .wakeheap import WakeHeap

__all__ = [
    "Channel",
    "UNBOUNDED",
    "Component",
    "ChannelError",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "EventBus",
    "GrantRevocationEvent",
    "PortFaultEvent",
    "PortRecoveryEvent",
    "Simulator",
    "Histogram",
    "KernelSkipStats",
    "OnlineStats",
    "PortFaultStats",
    "RateCounter",
    "TraceEvent",
    "Tracer",
    "CommitCohorts",
    "WakeHeap",
    "ParallelEngine",
    "measured_backend",
    "ProcessShardInfo",
    "ProcessShardPool",
    "ShardPlan",
    "Stage",
    "build_plan",
]
