"""Lightweight event tracing.

A :class:`Tracer` records structured events (cycle, source, kind, payload)
into a bounded ring buffer.  It is the simulation-world replacement for the
paper's "custom-developed timer implemented in the FPGA fabric": benchmarks
attach a tracer to monitors and read exact cycle timestamps back out.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.cycle:>10}] {self.source:<24} {self.kind:<16} {extras}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (fields key-sorted for stability)."""
        return {"cycle": self.cycle, "source": self.source,
                "kind": self.kind,
                "fields": dict(sorted(self.fields.items()))}


class Tracer:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    limit:
        Maximum number of retained events (oldest dropped first).  ``None``
        retains everything — fine for unit tests, unwise for 10M-cycle runs.
    enabled:
        Tracers can be constructed disabled so call sites do not need
        ``if tracer:`` guards; :meth:`record` is then a no-op.
    """

    def __init__(self, limit: Optional[int] = 100_000,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0

    def record(self, cycle: int, source: str, kind: str, **fields: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        if (self._events.maxlen is not None
                and len(self._events) == self._events.maxlen):
            self.dropped += 1
        self._events.append(TraceEvent(cycle, source, kind, fields))

    # ------------------------------------------------------------------

    def events(self, source: Optional[str] = None,
               kind: Optional[str] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None
               ) -> List[TraceEvent]:
        """Return the retained events, optionally filtered."""
        selected: Iterable[TraceEvent] = self._events
        if source is not None:
            selected = (e for e in selected if e.source == source)
        if kind is not None:
            selected = (e for e in selected if e.kind == kind)
        if predicate is not None:
            selected = (e for e in selected if predicate(e))
        return list(selected)

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        """The most recent (optionally kind-filtered) event, or ``None``."""
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        """Drop all retained events."""
        self._events.clear()
        self.dropped = 0

    def dump(self) -> str:
        """All retained events as newline-separated text."""
        return "\n".join(str(event) for event in self._events)

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All retained events as JSON-friendly dicts, in order."""
        return [event.as_dict() for event in self._events]

    def to_json(self) -> str:
        """Serialize the retained events as an indented JSON array.

        The output is byte-stable for identical event streams (sorted
        field keys, fixed indentation), so it can be diffed against a
        checked-in golden trace.
        """
        return json.dumps(self.as_dicts(), indent=2, sort_keys=True)

    def attach_channel(self, channel, source: str,
                       on: Iterable[str] = ("push", "pop")) -> None:
        """Record every push and/or pop of ``channel`` as an event.

        Purely observational: subscribing never perturbs the traffic, so
        traces taken through this helper are identical whichever kernel
        path (reference or fast) produced them.
        """
        def _describe(item) -> Dict[str, Any]:
            fields: Dict[str, Any] = {}
            for attr in ("address", "length", "txn_id", "last"):
                value = getattr(item, attr, None)
                if value is not None:
                    fields[attr] = value
            resp = getattr(item, "resp", None)
            if resp is not None:
                fields["resp"] = getattr(resp, "name", str(resp))
            return fields

        for action in on:
            if action == "push":
                on_push = (lambda cycle, item: self.record(
                    cycle, source, "push", **_describe(item)))
                # identify the tracer as this listener's owner so the
                # parallel-kernel partitioner serializes every channel
                # sharing it (the ring buffer is shared mutable state)
                on_push._owner = self
                channel.subscribe_push(on_push)
            elif action == "pop":
                on_pop = (lambda cycle, item: self.record(
                    cycle, source, "pop", **_describe(item)))
                on_pop._owner = self
                channel.subscribe_pop(on_pop)
            else:
                raise ValueError(
                    f"attach_channel actions are 'push'/'pop', got {action!r}")

    def __len__(self) -> int:
        return len(self._events)
