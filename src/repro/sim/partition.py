"""Graph partitioning for the sharded parallel tick kernel.

The parallel engine (:mod:`repro.sim.parallel`) can only tick two
components concurrently when nothing either of them does in its tick
phase is observable by the other within the same cycle.  This module
derives that independence structure from the wiring:

* Components declare a *shard affinity* key
  (:meth:`~repro.sim.Component.shard_affinity`); in the HyperConnect
  topology every per-port pipeline (the port's eFIFO link, its
  Transaction Supervisor, and the accelerator engine driving it) reports
  the port's key, while the shared machinery (EXBAR, central unit,
  master eFIFO, memory subsystem, hypervisor agents) reports ``None``
  and lands in the serial *hub* shard.
* Declared keys are then **merged** (union-find) wherever the wiring
  proves two keys are not actually independent:

  - two keys watching the same channel share that channel's state;
  - two keys observed by the same listener owner (a tracer, a protocol
    checker) would interleave mutations of that owner's state
    nondeterministically;
  - anonymous listeners (plain closures with no ``__self__`` and no
    ``_owner`` attribute) are all attributed to one shared owner, which
    conservatively merges every shard they observe.

* Finally some components are **demoted** to the hub outright:

  - a component with affinity but no :meth:`wake_channels` declaration
    gives the partitioner no way to know which channels it touches;
  - a component carrying completion callbacks owned by a foreign object
    (e.g. the hypervisor's interrupt bridge installed by
    ``attach_accelerator``) mutates shared state from inside its tick.

Channel classification is purely descriptive — the two-phase commit
already double-buffers every channel (staged pushes are invisible until
the serial end-of-cycle commit), so *boundary* channels need no extra
synchronization — but it is stamped on ``Channel.shard_class`` for
introspection and asserted on by tests:

* ``("internal", key)`` — every watcher lives in shard ``key``;
* ``("boundary", key)`` — shard ``key`` on one side, the hub on the
  other (e.g. a TS output read by the EXBAR);
* ``("hub", None)`` — no non-hub watcher at all.

The tick schedule is derived from **registration order**: maximal runs
of same-kind components (shard-affine vs hub) become stages, executed in
run order.  Because the reference kernel ticks in registration order,
and all cross-shard interaction is deferred to stage barriers, this
yields byte-identical observables: parallel stages fan their groups out
to workers, hub stages run the serial fast-path loop verbatim.  For the
HyperConnect build order the schedule comes out as::

    [TS pipelines, one group per port]   (parallel)
    [EXBAR, master eFIFO, central unit]  (hub, serial)
    [accelerator engines, per port]      (parallel)
    [memory subsystem, hypervisor]       (hub, serial)

A plan with fewer than two groups in every parallel stage is reported
as not parallelizable and the kernel falls back to the serial fast
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: shared owner attributed to listeners that identify no owner at all
_ANON = object()


def _listener_owner(callback: Any) -> Any:
    """The object whose state a listener callback mutates.

    Bound methods carry ``__self__``; library-created closures (e.g.
    :meth:`repro.sim.trace.Tracer.attach_channel`) stamp ``_owner``;
    anything else is anonymous and shares the :data:`_ANON` owner.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return owner
    owner = getattr(callback, "_owner", None)
    if owner is not None:
        return owner
    return _ANON


class _UnionFind:
    """Minimal union-find over hashable keys (path-halving, no ranks)."""

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def add(self, key: Any) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: Any) -> Any:
        parent = self._parent
        root = key
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: Any, b: Any) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            # deterministic winner: smaller string key keeps the name
            if str(rb) < str(ra):
                ra, rb = rb, ra
            self._parent[rb] = ra


@dataclass
class Stage:
    """One schedule step: a contiguous registration-order run.

    ``kind`` is ``"parallel"`` (``groups`` maps shard key to its
    ``(reg_index, component)`` members, each group a worker's unit of
    work) or ``"hub"`` (``members`` ticked serially on the main
    thread).  ``start``/``end`` delimit the registration-index range
    covered, used by the barrier to decide whether a woken component
    still gets polled *this* stage.
    """

    kind: str
    start: int
    end: int
    members: List[Tuple[int, Any]] = field(default_factory=list)
    groups: Dict[str, List[Tuple[int, Any]]] = field(default_factory=dict)


@dataclass
class ShardPlan:
    """The partitioning verdict for one simulator wiring."""

    stages: List[Stage]
    #: final (post-merge) shard key per component; ``None`` means hub
    component_keys: Dict[Any, Optional[str]]
    #: registration index per component (the serial tick position)
    component_index: Dict[Any, int]
    #: all distinct non-hub shard keys
    shard_keys: List[str]
    #: channel name -> shard_class verdict (mirrors Channel.shard_class)
    channel_classes: Dict[str, Tuple[str, Optional[str]]]
    #: why components were demoted to the hub, for diagnostics
    demotions: Dict[str, str] = field(default_factory=dict)

    @property
    def parallelizable(self) -> bool:
        """True when at least one stage can fan out to >= 2 workers."""
        return any(stage.kind == "parallel" and len(stage.groups) >= 2
                   for stage in self.stages)

    @property
    def max_width(self) -> int:
        """Largest group count of any parallel stage."""
        widths = [len(stage.groups) for stage in self.stages
                  if stage.kind == "parallel"]
        return max(widths) if widths else 0

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by tests, the CLI, and docs)."""
        class_counts: Dict[str, int] = {"internal": 0, "boundary": 0,
                                        "hub": 0}
        for verdict, _key in self.channel_classes.values():
            class_counts[verdict] += 1
        return {
            "parallelizable": self.parallelizable,
            "max_width": self.max_width,
            "shards": {
                key: sum(1 for k in self.component_keys.values()
                         if k == key)
                for key in self.shard_keys
            },
            "hub_components": sum(
                1 for k in self.component_keys.values() if k is None),
            "stages": [
                {"kind": stage.kind,
                 "size": (len(stage.members) if stage.kind == "hub"
                          else sum(len(m) for m in stage.groups.values())),
                 "groups": (sorted(stage.groups) if stage.kind == "parallel"
                            else [])}
                for stage in self.stages
            ],
            "channels": class_counts,
            "demotions": dict(self.demotions),
        }


def _demotion_reason(component: Any, declared) -> Optional[str]:
    """Why a component declaring affinity must run in the hub anyway."""
    if declared is None:
        return ("declares shard affinity but no wake_channels, so its "
                "channel footprint is unknown")
    for callback in getattr(component, "_completion_callbacks", ()):
        owner = _listener_owner(callback)
        if owner is not component:
            return ("carries a completion callback owned by a foreign "
                    "object; its tick mutates shared state")
    return None


def build_plan(sim) -> ShardPlan:
    """Partition ``sim``'s current wiring into a :class:`ShardPlan`.

    Must run after :meth:`Simulator._rebuild_wiring` (it reads the
    channel watcher lists the rebuild derives from ``wake_channels``
    declarations).  The plan is wiring-specific: any later registration
    marks the wiring stale and the parallel engine rebuilds both.
    """
    components = sim._components
    component_index = {comp: idx for idx, comp in enumerate(components)}

    # --- declared affinity, with hub demotions ------------------------
    raw_keys: Dict[Any, Optional[str]] = {}
    demotions: Dict[str, str] = {}
    uf = _UnionFind()
    for comp in components:
        key = comp.shard_affinity()
        if key is not None:
            reason = _demotion_reason(comp, comp.wake_channels())
            if reason is not None:
                demotions[comp.name] = reason
                key = None
        raw_keys[comp] = key
        if key is not None:
            uf.add(key)

    # --- merge keys proven non-independent by the wiring --------------
    # (a) keys sharing a channel: every watcher of a channel reads its
    # committed state during the tick phase, so two shards watching the
    # same channel could only ever be safe by accident.
    owner_keys: Dict[Any, set] = {}
    for channel in sim._channels:
        keys = {raw_keys[w] for w in channel._watchers
                if raw_keys.get(w) is not None}
        if len(keys) > 1:
            first, *rest = keys
            for other in rest:
                uf.union(first, other)
        # (b) collect listener owners per channel for the second pass
        for callback in (*channel._push_listeners, *channel._pop_listeners):
            owner = _listener_owner(callback)
            owner_set = owner_keys.setdefault(owner, set())
            owner_set.update(keys)
            # a listener owned by a shard-affine component ties that
            # component's shard to every channel it observes
            owner_key = raw_keys.get(owner)
            if owner_key is not None:
                owner_set.add(owner_key)
    # (c) keys observed by a common listener owner: the owner's state
    # is mutated from whichever worker ticks the pushing component, so
    # all observed shards must share one worker to keep both memory
    # safety and the serial callback order.
    for keys in owner_keys.values():
        if len(keys) > 1:
            first, *rest = keys
            for other in rest:
                uf.union(first, other)

    component_keys: Dict[Any, Optional[str]] = {
        comp: (uf.find(key) if key is not None else None)
        for comp, key in raw_keys.items()
    }
    shard_keys = sorted({key for key in component_keys.values()
                         if key is not None})

    # --- channel classification (descriptive; see module docstring) ---
    channel_classes: Dict[str, Tuple[str, Optional[str]]] = {}
    for channel in sim._channels:
        watcher_keys = {component_keys[w] for w in channel._watchers}
        non_hub = sorted(k for k in watcher_keys if k is not None)
        if not non_hub:
            verdict: Tuple[str, Optional[str]] = ("hub", None)
        elif None in watcher_keys:
            verdict = ("boundary", non_hub[0])
        else:
            verdict = ("internal", non_hub[0])
        channel.shard_class = verdict
        channel_classes[channel.name] = verdict

    # --- registration-order stage schedule ----------------------------
    stages: List[Stage] = []
    for idx, comp in enumerate(components):
        key = component_keys[comp]
        kind = "hub" if key is None else "parallel"
        if not stages or stages[-1].kind != kind:
            stages.append(Stage(kind=kind, start=idx, end=idx + 1))
        stage = stages[-1]
        stage.end = idx + 1
        if kind == "hub":
            stage.members.append((idx, comp))
        else:
            stage.groups.setdefault(key, []).append((idx, comp))

    return ShardPlan(stages=stages, component_keys=component_keys,
                     component_index=component_index,
                     shard_keys=shard_keys,
                     channel_classes=channel_classes,
                     demotions=demotions)
