"""Graph partitioning for the sharded parallel tick kernel.

The parallel engine (:mod:`repro.sim.parallel`) can only tick two
components concurrently when nothing either of them does in its tick
phase is observable by the other within the same cycle.  This module
derives that independence structure from the wiring:

* Components declare a *shard affinity* key
  (:meth:`~repro.sim.Component.shard_affinity`); in the HyperConnect
  topology every per-port pipeline (the port's eFIFO link, its
  Transaction Supervisor, and the accelerator engine driving it) reports
  the port's key, while the shared machinery (EXBAR, central unit,
  master eFIFO, memory subsystem, hypervisor agents) reports ``None``
  and lands in the serial *hub* shard.
* Declared keys are then **merged** (union-find) wherever the wiring
  proves two keys are not actually independent:

  - two keys watching the same channel share that channel's state;
  - two keys observed by the same listener owner (a tracer, a protocol
    checker) would interleave mutations of that owner's state
    nondeterministically;
  - anonymous listeners (plain closures with no ``__self__`` and no
    ``_owner`` attribute) are all attributed to one shared owner, which
    conservatively merges every shard they observe.

* Finally some components are **demoted** to the hub outright:

  - a component with affinity but no :meth:`wake_channels` declaration
    gives the partitioner no way to know which channels it touches;
  - a component carrying completion callbacks owned by a foreign object
    (e.g. the hypervisor's interrupt bridge installed by
    ``attach_accelerator``) mutates shared state from inside its tick.

Channel classification is purely descriptive — the two-phase commit
already double-buffers every channel (staged pushes are invisible until
the serial end-of-cycle commit), so *boundary* channels need no extra
synchronization — but it is stamped on ``Channel.shard_class`` for
introspection and asserted on by tests:

* ``("internal", key)`` — every watcher lives in shard ``key``;
* ``("boundary", key)`` — shard ``key`` on one side, the hub on the
  other (e.g. a TS output read by the EXBAR);
* ``("hub", None)`` — no non-hub watcher at all.

The tick schedule is derived from **registration order**: maximal runs
of same-kind components (shard-affine vs hub) become stages, executed in
run order.  Because the reference kernel ticks in registration order,
and all cross-shard interaction is deferred to stage barriers, this
yields byte-identical observables: parallel stages fan their groups out
to workers, hub stages run the serial fast-path loop verbatim.  For the
HyperConnect build order the schedule comes out as::

    [TS pipelines, one group per port]   (parallel)
    [EXBAR, master eFIFO, central unit]  (hub, serial)
    [accelerator engines, per port]      (parallel)
    [memory subsystem, hypervisor]       (hub, serial)

A plan with fewer than two groups in every parallel stage is reported
as not parallelizable and the kernel falls back to the serial fast
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: shared owner attributed to listeners that identify no owner at all
_ANON = object()

#: epoch bounds for the processes backend.  A process shard advances
#: ``lookahead`` cycles between barriers; below the minimum the IPC
#: round-trip dominates the tick work and the backend cannot win, so
#: the shard is reported ineligible rather than run at a loss.  With no
#: boundary channels at all the lookahead is unbounded; the maximum
#: keeps stats/wake latency bounded.
MIN_PROCESS_EPOCH = 8
MAX_PROCESS_EPOCH = 4096


def _listener_owner(callback: Any) -> Any:
    """The object whose state a listener callback mutates.

    Bound methods carry ``__self__``; library-created closures (e.g.
    :meth:`repro.sim.trace.Tracer.attach_channel`) stamp ``_owner``;
    anything else is anonymous and shares the :data:`_ANON` owner.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return owner
    owner = getattr(callback, "_owner", None)
    if owner is not None:
        return owner
    return _ANON


class _UnionFind:
    """Minimal union-find over hashable keys (path-halving, no ranks)."""

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def add(self, key: Any) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: Any) -> Any:
        parent = self._parent
        root = key
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: Any, b: Any) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            # deterministic winner: smaller string key keeps the name
            if str(rb) < str(ra):
                ra, rb = rb, ra
            self._parent[rb] = ra


@dataclass
class Stage:
    """One schedule step: a contiguous registration-order run.

    ``kind`` is ``"parallel"`` (``groups`` maps shard key to its
    ``(reg_index, component)`` members, each group a worker's unit of
    work) or ``"hub"`` (``members`` ticked serially on the main
    thread).  ``start``/``end`` delimit the registration-index range
    covered, used by the barrier to decide whether a woken component
    still gets polled *this* stage.
    """

    kind: str
    start: int
    end: int
    members: List[Tuple[int, Any]] = field(default_factory=list)
    groups: Dict[str, List[Tuple[int, Any]]] = field(default_factory=dict)


@dataclass
class ProcessShardInfo:
    """A shard proven safe to run inside a worker process.

    ``inbound`` channels are fed by the hub and popped by the shard,
    ``outbound`` the reverse; ``internal`` channels are touched by the
    shard alone and live entirely in the worker.  ``lookahead`` is the
    epoch length: the minimum boundary-channel latency, which bounds how
    many cycles the worker can advance before a beat committed on the
    other side could become visible.
    """

    key: str
    members: List[Tuple[int, Any]]
    stage_index: int
    internal: List[Any] = field(default_factory=list)
    inbound: List[Any] = field(default_factory=list)
    outbound: List[Any] = field(default_factory=list)
    lookahead: int = 0


@dataclass
class ShardPlan:
    """The partitioning verdict for one simulator wiring."""

    stages: List[Stage]
    #: final (post-merge) shard key per component; ``None`` means hub
    component_keys: Dict[Any, Optional[str]]
    #: registration index per component (the serial tick position)
    component_index: Dict[Any, int]
    #: all distinct non-hub shard keys
    shard_keys: List[str]
    #: channel name -> shard_class verdict (mirrors Channel.shard_class)
    channel_classes: Dict[str, Tuple[str, Optional[str]]]
    #: why components were demoted to the hub, for diagnostics
    demotions: Dict[str, str] = field(default_factory=dict)
    #: shard key -> proof it can run in a worker process
    process_shards: Dict[str, ProcessShardInfo] = field(default_factory=dict)
    #: shard key -> why it can *not* run in a worker process
    process_blockers: Dict[str, str] = field(default_factory=dict)

    @property
    def parallelizable(self) -> bool:
        """True when at least one stage can fan out to >= 2 workers."""
        return any(stage.kind == "parallel" and len(stage.groups) >= 2
                   for stage in self.stages)

    @property
    def process_parallelizable(self) -> bool:
        """True when >= 2 shards of one stage can run in processes."""
        by_stage: Dict[int, int] = {}
        for info in self.process_shards.values():
            by_stage[info.stage_index] = by_stage.get(info.stage_index,
                                                      0) + 1
        return any(count >= 2 for count in by_stage.values())

    @property
    def process_lookahead(self) -> int:
        """Common epoch length across all process shards (0 = none)."""
        if not self.process_shards:
            return 0
        return min(info.lookahead for info in self.process_shards.values())

    @property
    def max_width(self) -> int:
        """Largest group count of any parallel stage."""
        widths = [len(stage.groups) for stage in self.stages
                  if stage.kind == "parallel"]
        return max(widths) if widths else 0

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by tests, the CLI, and docs)."""
        class_counts: Dict[str, int] = {"internal": 0, "boundary": 0,
                                        "hub": 0}
        for verdict, _key in self.channel_classes.values():
            class_counts[verdict] += 1
        return {
            "parallelizable": self.parallelizable,
            "max_width": self.max_width,
            "shards": {
                key: sum(1 for k in self.component_keys.values()
                         if k == key)
                for key in self.shard_keys
            },
            "hub_components": sum(
                1 for k in self.component_keys.values() if k is None),
            "stages": [
                {"kind": stage.kind,
                 "size": (len(stage.members) if stage.kind == "hub"
                          else sum(len(m) for m in stage.groups.values())),
                 "groups": (sorted(stage.groups) if stage.kind == "parallel"
                            else [])}
                for stage in self.stages
            ],
            "channels": class_counts,
            "demotions": dict(self.demotions),
            "process_shards": {
                key: {"members": len(info.members),
                      "internal": len(info.internal),
                      "inbound": len(info.inbound),
                      "outbound": len(info.outbound),
                      "lookahead": info.lookahead}
                for key, info in sorted(self.process_shards.items())
            },
            "process_blockers": dict(self.process_blockers),
            "process_lookahead": self.process_lookahead,
        }


def _demotion_reason(component: Any, declared) -> Optional[str]:
    """Why a component declaring affinity must run in the hub anyway."""
    if declared is None:
        return ("declares shard affinity but no wake_channels, so its "
                "channel footprint is unknown")
    for callback in getattr(component, "_completion_callbacks", ()):
        owner = _listener_owner(callback)
        if owner is not component:
            return ("carries a completion callback owned by a foreign "
                    "object; its tick mutates shared state")
    return None


def _analyze_process_shards(sim, stages, component_keys, component_index,
                            shard_keys):
    """Prove which shards may run inside worker processes.

    A shard is eligible only when a chain of checks all hold; the first
    failure is recorded verbatim in ``process_blockers`` so the resolved
    backend is attributable (a satellite requirement).  The checks — all
    derived from the epoch-BSP execution model, see DESIGN.md §11:

    * every member opts in via ``process_exportable()`` and declares its
      output footprint via ``pushes_channels()``;
    * the shard's members occupy exactly one parallel stage (the worker
      owns the whole shard for the epoch; hub stages interleaving two
      halves of it would need mid-epoch sync);
    * every footprint channel is either internal (shard-only) or a
      single-direction boundary (inbound: hub pushes / shard pops;
      outbound: shard pushes / hub pops) — a mixed channel would need
      same-epoch round trips;
    * boundary channels are unbounded (a bounded channel's ``can_push``
      depends on pops the other process performs invisibly mid-epoch)
      and carry no push/pop listeners (listeners would fire in the
      wrong process);
    * the minimum boundary latency — the lookahead — is at least
      :data:`MIN_PROCESS_EPOCH` so barriers amortize.
    """
    process_shards: Dict[str, ProcessShardInfo] = {}
    process_blockers: Dict[str, str] = {}
    channels_by_name = {channel.name: channel for channel in sim._channels}

    # declared output footprint, per shard key (only exportable shards
    # need it, but collect globally so cross-shard pushes are visible)
    pushed_by_key: Dict[str, set] = {}
    for comp, key in component_keys.items():
        if key is None:
            continue
        pushes = comp.pushes_channels()
        if pushes:
            pushed_by_key.setdefault(key, set()).update(
                ch.name for ch in pushes)

    stage_of_key: Dict[str, List[int]] = {}
    for stage_idx, stage in enumerate(stages):
        if stage.kind == "parallel":
            for key in stage.groups:
                stage_of_key.setdefault(key, []).append(stage_idx)

    for key in shard_keys:
        members = sorted((component_index[comp], comp)
                         for comp, k in component_keys.items() if k == key)
        blocker = None
        if not all(comp.process_exportable() for _i, comp in members):
            blocker = "a member does not opt in via process_exportable()"
        elif any(comp.pushes_channels() is None for _i, comp in members):
            blocker = ("a member declares no pushes_channels(), so the "
                       "output footprint is unknown")
        elif len(stage_of_key.get(key, ())) != 1:
            blocker = "members span more than one parallel stage"
        if blocker is not None:
            process_blockers[key] = blocker
            continue

        watched = set()
        pushed = set()
        for _idx, comp in members:
            watched.update(ch.name for ch in (comp.wake_channels() or ()))
            pushed.update(ch.name for ch in (comp.pushes_channels() or ()))

        info = ProcessShardInfo(key=key, members=members,
                                stage_index=stage_of_key[key][0])
        latencies = []
        for name in sorted(watched | pushed):
            channel = channels_by_name[name]
            if channel._push_listeners or channel._pop_listeners:
                blocker = (f"channel {name!r} has push/pop listeners, "
                           f"which would fire in the wrong process")
                break
            watcher_keys = {component_keys.get(w) for w in channel._watchers}
            foreign_watch = any(k != key for k in watcher_keys)
            foreign_push = any(name in names
                               for other, names in pushed_by_key.items()
                               if other != key)
            shard_watches = name in watched
            shard_pushes = name in pushed
            boundary = (foreign_watch or foreign_push
                        or not (shard_watches and shard_pushes))
            if not boundary:
                info.internal.append(channel)
                continue
            if shard_watches and shard_pushes:
                blocker = (f"channel {name!r} is a mixed-direction "
                           f"boundary (shard both pushes and pops it)")
                break
            if channel.capacity is not None:
                blocker = (f"boundary channel {name!r} is bounded; "
                           f"can_push would depend on pops the other "
                           f"process performs invisibly mid-epoch")
                break
            latencies.append(channel.latency)
            if shard_watches:
                info.inbound.append(channel)
            else:
                info.outbound.append(channel)
        if blocker is None:
            lookahead = min(latencies) if latencies else MAX_PROCESS_EPOCH
            lookahead = min(lookahead, MAX_PROCESS_EPOCH)
            if lookahead < MIN_PROCESS_EPOCH:
                blocker = (f"boundary latency {lookahead} is below the "
                           f"minimum process epoch {MIN_PROCESS_EPOCH}; "
                           f"barriers would not amortize")
        if blocker is not None:
            process_blockers[key] = blocker
        else:
            info.lookahead = lookahead
            process_shards[key] = info

    return process_shards, process_blockers


def build_plan(sim) -> ShardPlan:
    """Partition ``sim``'s current wiring into a :class:`ShardPlan`.

    Must run after :meth:`Simulator._rebuild_wiring` (it reads the
    channel watcher lists the rebuild derives from ``wake_channels``
    declarations).  The plan is wiring-specific: any later registration
    marks the wiring stale and the parallel engine rebuilds both.
    """
    components = sim._components
    component_index = {comp: idx for idx, comp in enumerate(components)}

    # --- declared affinity, with hub demotions ------------------------
    raw_keys: Dict[Any, Optional[str]] = {}
    demotions: Dict[str, str] = {}
    uf = _UnionFind()
    for comp in components:
        key = comp.shard_affinity()
        if key is not None:
            reason = _demotion_reason(comp, comp.wake_channels())
            if reason is not None:
                demotions[comp.name] = reason
                key = None
        raw_keys[comp] = key
        if key is not None:
            uf.add(key)

    # --- merge keys proven non-independent by the wiring --------------
    # (a) keys sharing a channel: every watcher of a channel reads its
    # committed state during the tick phase, so two shards watching the
    # same channel could only ever be safe by accident.
    owner_keys: Dict[Any, set] = {}
    for channel in sim._channels:
        keys = {raw_keys[w] for w in channel._watchers
                if raw_keys.get(w) is not None}
        if len(keys) > 1:
            first, *rest = keys
            for other in rest:
                uf.union(first, other)
        # (b) collect listener owners per channel for the second pass
        for callback in (*channel._push_listeners, *channel._pop_listeners):
            owner = _listener_owner(callback)
            owner_set = owner_keys.setdefault(owner, set())
            owner_set.update(keys)
            # a listener owned by a shard-affine component ties that
            # component's shard to every channel it observes
            owner_key = raw_keys.get(owner)
            if owner_key is not None:
                owner_set.add(owner_key)
    # (c) keys observed by a common listener owner: the owner's state
    # is mutated from whichever worker ticks the pushing component, so
    # all observed shards must share one worker to keep both memory
    # safety and the serial callback order.
    for keys in owner_keys.values():
        if len(keys) > 1:
            first, *rest = keys
            for other in rest:
                uf.union(first, other)

    component_keys: Dict[Any, Optional[str]] = {
        comp: (uf.find(key) if key is not None else None)
        for comp, key in raw_keys.items()
    }
    shard_keys = sorted({key for key in component_keys.values()
                         if key is not None})

    # --- channel classification (descriptive; see module docstring) ---
    channel_classes: Dict[str, Tuple[str, Optional[str]]] = {}
    for channel in sim._channels:
        watcher_keys = {component_keys[w] for w in channel._watchers}
        non_hub = sorted(k for k in watcher_keys if k is not None)
        if not non_hub:
            verdict: Tuple[str, Optional[str]] = ("hub", None)
        elif None in watcher_keys:
            verdict = ("boundary", non_hub[0])
        else:
            verdict = ("internal", non_hub[0])
        channel.shard_class = verdict
        channel_classes[channel.name] = verdict

    # --- registration-order stage schedule ----------------------------
    stages: List[Stage] = []
    for idx, comp in enumerate(components):
        key = component_keys[comp]
        kind = "hub" if key is None else "parallel"
        if not stages or stages[-1].kind != kind:
            stages.append(Stage(kind=kind, start=idx, end=idx + 1))
        stage = stages[-1]
        stage.end = idx + 1
        if kind == "hub":
            stage.members.append((idx, comp))
        else:
            stage.groups.setdefault(key, []).append((idx, comp))

    process_shards, process_blockers = _analyze_process_shards(
        sim, stages, component_keys, component_index, shard_keys)

    return ShardPlan(stages=stages, component_keys=component_keys,
                     component_index=component_index,
                     shard_keys=shard_keys,
                     channel_classes=channel_classes,
                     demotions=demotions,
                     process_shards=process_shards,
                     process_blockers=process_blockers)
