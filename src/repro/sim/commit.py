"""Cohort-batched end-of-cycle channel commit.

The reference kernel commits every dirty channel through
:meth:`Channel._commit` — one Python method dispatch per channel per
cycle.  The fast path instead hands its dirty list to a
:class:`CommitCohorts` instance, which:

* groups the registered channels into **cohorts by latency class** (the
  only per-channel input to the ready-cycle computation), so the ready
  stamp ``cycle + latency`` is derived per cohort, not per object;
* keeps dirty-channel bookkeeping as **index sets** over a stable
  channel numbering (``Channel._index``) instead of per-object method
  dispatch;
* for large dirty sets stages the ready cycles and valid flags in
  **preallocated numpy buffers** (one vectorized stamp per flush),
  falling back to an equivalent pure-Python batch when numpy is absent
  or the dirty set is too small to amortize the array round-trip.

The flush also performs the two kernel-side duties that piggyback on a
commit because that is when staged work becomes observable:

* components *watching* a committed channel (see
  :meth:`~repro.sim.Component.wake_channels`) are woken, so sleepers are
  polled exactly on the first cycle the new state is visible;
* a committed head whose ready cycle lies more than one cycle in the
  future (only possible for ``latency > 1`` channels) is scheduled on
  the kernel's :class:`~repro.sim.wakeheap.WakeHeap` — latency-1
  traffic is covered by the commit-time watcher wake alone, so hot
  unit-latency channels never touch the heap.

Semantics are identical to calling ``Channel._commit`` on each dirty
channel; ``tests/test_commit_cohorts.py`` checks both code paths
against it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:  # numpy is optional for the core library
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_python
    _np = None

#: below this many dirty channels the vectorized stamp costs more than it
#: saves; the pure-Python batch is used instead (measured on CPython 3.11)
_BULK_THRESHOLD = 24


class CommitCohorts:
    """Latency-cohort commit engine for one simulator's channels."""

    __slots__ = ("_sim", "_channels", "_ready_buf", "_valid_buf",
                 "_latencies", "_use_numpy", "bulk_flushes")

    def __init__(self, sim, channels: List, use_numpy: Optional[bool] = None) -> None:
        self._sim = sim
        self._channels = list(channels)
        if use_numpy is None:
            use_numpy = _np is not None
        self._use_numpy = bool(use_numpy) and _np is not None
        self.bulk_flushes = 0
        for index, channel in enumerate(self._channels):
            channel._index = index
        if self._use_numpy:
            n = max(1, len(self._channels))
            self._latencies = _np.array(
                [channel.latency for channel in self._channels] or [1],
                dtype=_np.int64)
            #: staging buffer: ready cycle per channel index, stamped in
            #: one vectorized op per flush
            self._ready_buf = _np.zeros(n, dtype=_np.int64)
            #: valid flags: nonzero while the index is in the dirty set
            self._valid_buf = _np.zeros(n, dtype=_np.bool_)
        else:
            self._latencies = None
            self._ready_buf = None
            self._valid_buf = None

    # ------------------------------------------------------------------

    def cohorts(self) -> Dict[int, List[str]]:
        """Channel names grouped by latency class (introspection)."""
        groups: Dict[int, List[str]] = {}
        for channel in self._channels:
            groups.setdefault(channel.latency, []).append(channel.name)
        return groups

    # ------------------------------------------------------------------

    def flush(self, cycle: int, dirty: List) -> None:
        """Commit every channel in ``dirty`` and clear the list.

        Equivalent to ``for ch in dirty: ch._commit(cycle)`` plus the
        kernel duties described in the module docstring.
        """
        sim = self._sim
        stats = sim.skip_stats
        heap = sim._wakeheap
        wake = sim._wake_component
        next_cycle = cycle + 1
        stats.commit_batches += 1
        stats.commit_channels += len(dirty)
        if (self._use_numpy and len(dirty) >= _BULK_THRESHOLD
                and not sim._wiring_stale):
            # vectorized ready-cycle staging over the dirty index set
            np = _np
            index = np.fromiter((channel._index for channel in dirty),
                                dtype=np.int64, count=len(dirty))
            ready_buf = self._ready_buf
            valid_buf = self._valid_buf
            valid_buf[index] = True
            ready_buf[index] = cycle + self._latencies[index]
            self.bulk_flushes += 1
            for channel in dirty:
                staged = channel._staged
                if staged:
                    ready = int(ready_buf[channel._index])
                    queue = channel._queue
                    if len(staged) == 1:
                        queue.append((ready, staged[0]))
                    else:
                        queue.extend([(ready, item) for item in staged])
                    staged.clear()
                channel._occupancy -= channel._popped_this_cycle
                channel._popped_this_cycle = 0
                channel._dirty = False
                queue = channel._queue
                if queue and queue[0][0] > next_cycle:
                    if heap.push(channel, queue[0][0]):
                        stats.heap_pushes += 1
                for component in channel._watchers:
                    if component._k_asleep:
                        wake(component)
            valid_buf[index] = False
        else:
            for channel in dirty:
                staged = channel._staged
                if staged:
                    ready = cycle + channel.latency
                    queue = channel._queue
                    if len(staged) == 1:
                        queue.append((ready, staged[0]))
                    else:
                        queue.extend([(ready, item) for item in staged])
                    staged.clear()
                channel._occupancy -= channel._popped_this_cycle
                channel._popped_this_cycle = 0
                channel._dirty = False
                queue = channel._queue
                if queue and queue[0][0] > next_cycle:
                    if heap.push(channel, queue[0][0]):
                        stats.heap_pushes += 1
                for component in channel._watchers:
                    if component._k_asleep:
                        wake(component)
        dirty.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommitCohorts(channels={len(self._channels)}, "
                f"numpy={self._use_numpy}, "
                f"cohorts={sorted(self.cohorts())})")
