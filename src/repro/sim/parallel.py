"""The sharded parallel tick engine.

Executes the stage schedule derived by :mod:`repro.sim.partition`: each
cycle walks the stages in registration order, fanning the groups of a
parallel stage out to workers and running hub stages with the serial
fast-path loop verbatim.  Channel commits, wake-heap maintenance, and
frozen-horizon bookkeeping stay serial on the main thread, exactly as in
:meth:`Simulator._run_fast`.

Determinism
-----------

The engine produces byte-identical observables to the serial reference
path.  The argument has three legs:

1. **Channel traffic is order-free.**  Pushes are staged and invisible
   until the end-of-cycle commit (the two-phase protocol *is* the
   boundary double-buffering), so the tick order of components — and
   therefore which worker ticks them, in what interleaving — cannot
   change what any component observes.
2. **Cross-shard services are deferred and replayed in serial order.**
   While workers run, ``Simulator.wake`` / ``Component.wake`` and
   ``EventBus.publish`` are routed into per-group record lists, each
   entry tagged with the acting component's registration index.  The
   stage barrier merges the lists by index and replays them: wakes move
   sleepers exactly as the serial loop would, events dispatch to
   subscribers in the order the serial loop would have dispatched them
   (nested publishes and subscriber wakes included), and a woken
   component whose serial tick position lies *after* its waker within
   the current stage is re-polled at the barrier — sound because a
   cross-group mutation is confined to the waker's shard and therefore
   cannot change the answer the poll would have given mid-loop.
3. **Intra-group wakes are handled inline.**  A wake raised by a group
   member targeting a later member of the same group sets a scratch
   flag the group's own loop honours immediately, reproducing the
   serial mid-loop wake semantics without waiting for the barrier.

Sleep decisions made by workers are likewise deferred (the worker
computes the ``next_event_cycle`` hint, the barrier performs the
dict moves and heap pushes), so the kernel's ``_awake`` / ``_asleep``
structures are only ever mutated on the main thread.

The poll-backoff flags (``_k_mask`` / ``_k_miss`` / ``_k_quiet``) are
component-local and only touched by the worker that owns the
component's group, so their evolution is deterministic too; it may
differ from the *serial fast* path's evolution (the barrier re-poll sees
a slightly different moment than the mid-loop poll would have), which is
fine — skipping is only ever applied to provably no-op ticks, so
observables match the reference path bit-for-bit either way.

Backends
--------

``threads``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`; the
    main thread runs the first group itself.  On a stock (GIL) build
    pure-Python ticks do not actually overlap, which is why ``auto``
    measures instead of assuming.
``inline``
    The same staged execution on one thread.  All the deferral and
    barrier machinery still runs, so results are identical to
    ``threads`` by construction, and the per-shard quiescence tracking
    (sleep/skip/freeze per port pipeline) still beats the reference
    path by a wide margin on bursty workloads.
``processes``
    Long-lived worker processes own the shards the partitioner proved
    *process-exportable* (see
    :class:`~repro.sim.partition.ProcessShardInfo`); the parent runs
    the hub and any remaining groups concurrently and exchanges only
    boundary-channel entries at epoch barriers
    (:mod:`repro.sim.procpool`).  Shards that cannot be exported keep
    running on the parent, and when *no* stage yields two exportable
    shards — or the platform cannot support worker processes (daemonic
    parent, spawn start method without a
    :attr:`Simulator.parallel_recipe`) — the request degrades
    gracefully to ``threads``, with the reason recorded in
    :attr:`ParallelEngine.backend_resolution`.
``auto``
    Considers the worker count, the platform start method, the CPU
    count, and the plan's process-eligibility: picks ``processes`` when
    the wiring can actually export shards and cores exist to run them,
    otherwise falls back to the one-off spin-workload calibration
    (cached per process) that picks ``threads`` only when the measured
    speedup clears :data:`_CROSSOVER_MARGIN` — a measured crossover,
    not a guess.  Single-core hosts and GIL builds land on ``inline``.

The backend that actually executed is exposed in
``sim.skip_stats.resolved_backend`` and, with the full decision trail,
in :attr:`ParallelEngine.backend_resolution` — so a benchmark sidecar
or a regression bisect can always tell which engine produced a number.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from threading import local
from typing import Dict, List, Optional, Tuple

from .commit import _BULK_THRESHOLD
from .errors import SimulationError
from .kernel import (_BACKOFF_AFTER, _BACKOFF_MASK_FIRST, _BACKOFF_MASK_MAX,
                     _SLEEP_AFTER)
from .partition import ShardPlan, Stage, build_plan
from .procpool import ProcessShardPool
from .stats import KernelSkipStats

#: measured threads-over-inline speedup required before ``auto`` picks
#: the thread pool; anything less and dispatch overhead eats the gain
_CROSSOVER_MARGIN = 1.1

#: process-wide calibration verdicts, keyed by (workers, start_method)
_CROSSOVER_CACHE: Dict[Tuple[int, str], str] = {}


def _gil_enabled() -> Optional[bool]:
    """Probe the runtime GIL state (PEP 703).

    ``False`` on a free-threaded 3.13+ build running with the GIL
    disabled, ``True`` when the GIL is active, ``None`` when the
    interpreter predates the probe (conventional builds, < 3.13).
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    if probe is None:
        return None
    return bool(probe())


def _spin(iterations: int = 40) -> int:
    """Pure-Python busy work resembling a group's tick loop.

    Deliberately *not* a GIL-releasing workload: component ticks are
    pure Python, so a calibration that parallelizes (e.g. ``sleep``)
    would overstate what the thread pool can deliver.
    """
    acc = 0
    for _ in range(iterations):
        acc += sum(range(400))
    return acc


def measured_backend(workers: int, start_method: Optional[str] = None,
                     process_capable: bool = False) -> str:
    """Pick the best backend for ``workers`` on this host.

    Considers the worker count, the platform's multiprocessing start
    method, and whether the caller's partition plan can actually export
    shards to worker processes (``process_capable``):

    * one worker never benefits from any pool — ``inline``;
    * when shards are process-exportable and the host has more than one
      CPU, ``processes`` wins regardless of start method — fork and
      spawn differ only in bootstrap cost, which the engine amortizes
      over long-lived workers;
    * on a free-threaded 3.13+ build actually running without the GIL
      (``sys._is_gil_enabled()`` returns False) and with cores to
      spare, ``threads`` is genuinely parallel — picked directly, no
      calibration needed;
    * otherwise the threads-vs-inline question is *measured* with a
      GIL-bound spin workload (cached per ``(workers, start_method)``):
      on GIL builds and single-core hosts ``inline`` wins, on
      free-threaded builds with cores to spare ``threads`` wins.
    """
    if workers <= 1:
        return "inline"
    if start_method is None:
        start_method = multiprocessing.get_start_method()
    if process_capable and (os.cpu_count() or 1) > 1:
        return "processes"
    if _gil_enabled() is False and (os.cpu_count() or 1) > 1:
        return "threads"
    cached = _CROSSOVER_CACHE.get((workers, start_method))
    if cached is not None:
        return cached
    start = time.perf_counter()
    for _ in range(workers):
        _spin()
    t_inline = time.perf_counter() - start

    pool = ThreadPoolExecutor(max_workers=workers)
    try:
        pool.submit(_spin, 1).result()  # absorb thread start-up cost
        start = time.perf_counter()
        futures = [pool.submit(_spin) for _ in range(workers)]
        for future in futures:
            future.result()
        t_threads = time.perf_counter() - start
    finally:
        pool.shutdown(wait=True)

    choice = ("threads"
              if t_threads > 0 and t_inline / t_threads > _CROSSOVER_MARGIN
              else "inline")
    _CROSSOVER_CACHE[(workers, start_method)] = choice
    return choice


class _GroupScratch:
    """Per-(stage, group) working state, reused across cycles."""

    __slots__ = ("key", "members", "member_set", "records", "woke_all",
                 "wake_targets", "polled", "current_idx", "ran",
                 "skipped", "slept")

    def __init__(self, key: str, members: List[Tuple[int, object]]) -> None:
        self.key = key
        self.members = members
        self.member_set = {comp for _idx, comp in members}
        self.records: List[Tuple[int, str, object]] = []
        self.woke_all = False
        self.wake_targets: set = set()
        self.polled: set = set()
        self.current_idx = -1
        # cumulative across cycles; folded into the per-shard stats once
        # per run_to (per-cycle folding costs more than the ticks)
        self.ran = 0
        self.skipped = 0
        self.slept = 0

    def reset(self) -> None:
        self.records.clear()
        self.woke_all = False
        if self.wake_targets:
            self.wake_targets.clear()
        if self.polled:
            self.polled.clear()

    def flush_stats(self, stats: KernelSkipStats, cycles: int) -> None:
        stats.ticks_run += self.ran
        stats.ticks_skipped += self.skipped
        stats.ticks_slept += self.slept
        stats.cycles_polled += cycles
        stats.cycles_total += cycles
        self.ran = 0
        self.skipped = 0
        self.slept = 0


class ParallelEngine:
    """Sharded staged executor attached to one :class:`Simulator`.

    Constructed lazily by the kernel when ``Simulator(parallel=N)`` is
    first asked to advance; falls back (via :meth:`active`) whenever the
    current wiring yields fewer than two shard groups.
    """

    def __init__(self, sim, workers: int, backend: str = "auto") -> None:
        if workers < 1:
            raise SimulationError("parallel worker count must be >= 1")
        if backend not in ("auto", "threads", "inline", "processes"):
            raise SimulationError(
                f"unknown parallel backend {backend!r} "
                "(expected 'auto', 'threads', 'inline', or 'processes')")
        self.sim = sim
        self.workers = workers
        self.backend = backend
        #: per-shard skip accounting (keys: shard keys plus "hub")
        self.shard_stats: Dict[str, KernelSkipStats] = {}
        self._plan: Optional[ShardPlan] = None
        self._scratches: Dict[int, List[_GroupScratch]] = {}
        self._schedule: list = []
        #: unmasked schedule (every group local); used for short spans
        #: in processes mode, where seeding workers would cost more
        #: than ticking the shards in place
        self._schedule_full: list = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._resolved_backend: Optional[str] = None
        #: requested/resolved/reason decision trail of the last backend
        #: resolution (attribution for bench sidecars and tests)
        self.backend_resolution: Dict[str, object] = {}
        #: shard key -> ProcessShardInfo for the shards currently owned
        #: by worker processes (empty unless resolved to "processes")
        self._remote_infos: Dict[str, object] = {}
        self._pool: Optional[ProcessShardPool] = None
        #: while True, mid-epoch wiring staleness is left for the epoch
        #: boundary (a parent rebuild would desync in-flight workers)
        self._defer_stale = False
        self._tls = local()
        # barrier working state (only valid while _barrier runs)
        self._worklist: Optional[list] = None
        self._wl_seq = 0
        self._wl_polled: Optional[set] = None
        self._stage_bounds = (0, 0)
        self._barrier_idx = 0
        self._bar_skipped = 0

    # ------------------------------------------------------------------
    # plan / backend lifecycle
    # ------------------------------------------------------------------

    def active(self) -> bool:
        """Whether the current wiring is worth sharding at all."""
        sim = self.sim
        if sim._wiring_stale:
            sim._rebuild_wiring()
            self._refresh_plan()
        elif self._plan is None:
            self._refresh_plan()
        return self._plan.parallelizable

    @property
    def plan(self) -> Optional[ShardPlan]:
        """The current :class:`ShardPlan` (None before first use)."""
        return self._plan

    def _refresh_plan(self) -> None:
        # fold any counters accumulated under the outgoing plan first
        for scratch_list in self._scratches.values():
            for scratch in scratch_list:
                scratch.flush_stats(
                    self.shard_stats.setdefault(scratch.key,
                                                KernelSkipStats()), 0)
        if self._pool is not None:
            # plan change invalidates the shard ownership; workers are
            # only ever retired between runs / at epoch boundaries,
            # when the parent mirrors are authoritative
            self._pool.close()
            self._pool = None
        self._plan = build_plan(self.sim)
        self._scratches = {}
        # precompiled walk order: (stage, scratches) with scratches None
        # for hub stages
        self._schedule_full = []
        for stage_no, stage in enumerate(self._plan.stages):
            if stage.kind == "parallel":
                scratches = [
                    _GroupScratch(key, members)
                    for key, members in stage.groups.items()
                ]
                self._scratches[stage_no] = scratches
                self._schedule_full.append((stage, scratches))
            else:
                self._schedule_full.append((stage, None))
        for key in (*self._plan.shard_keys, "hub"):
            self.shard_stats.setdefault(key, KernelSkipStats())
        self._resolve_backend()

    # ------------------------------------------------------------------
    # backend resolution
    # ------------------------------------------------------------------

    def _resolve_backend(self) -> None:
        """Decide which backend this plan actually runs on.

        Resolution is per-plan because process-eligibility is a wiring
        property.  The decision trail lands in
        :attr:`backend_resolution` and the verdict in
        ``sim.skip_stats.resolved_backend``.
        """
        sim = self.sim
        plan = self._plan
        start_method = (getattr(sim, "parallel_mp_context", None)
                        or multiprocessing.get_start_method())
        # candidate shards: the single stage with the most exportable
        # shards (a worker owns whole shards; two shards of the same
        # stage are what creates true overlap)
        by_stage: Dict[int, Dict[str, object]] = {}
        for key, info in plan.process_shards.items():
            by_stage.setdefault(info.stage_index, {})[key] = info
        candidates: Dict[str, object] = {}
        if by_stage:
            candidates = max(by_stage.values(), key=len)
        capable = True
        why = None
        if self.workers < 2:
            capable, why = False, "needs >= 2 workers"
        elif len(candidates) < 2:
            capable, why = False, (
                "no stage has >= 2 process-exportable shards "
                f"(blockers: {plan.process_blockers or 'no shard keys'})")
        elif multiprocessing.current_process().daemon:
            capable, why = False, (
                "daemonic parent process cannot start shard workers")
        elif (start_method != "fork"
              and getattr(sim, "parallel_recipe", None) is None):
            capable, why = False, (
                f"start method {start_method!r} needs "
                f"Simulator.parallel_recipe (live components are "
                f"never pickled)")
        requested = self.backend
        if requested == "processes":
            if capable:
                resolved, reason = "processes", "requested"
            else:
                resolved = "threads"
                reason = f"processes unavailable ({why}); fell back"
        elif requested == "auto":
            resolved = measured_backend(self.workers, start_method,
                                        process_capable=capable)
            reason = ("measured" if resolved != "processes"
                      else "process-exportable shards and spare CPUs")
        else:
            resolved, reason = requested, "requested"
        self._resolved_backend = resolved
        self._remote_infos = dict(candidates) if resolved == "processes" \
            else {}
        self.backend_resolution = {
            "requested": requested,
            "resolved": resolved,
            "reason": reason,
            "start_method": start_method,
            "process_shards": sorted(self._remote_infos),
            "process_blockers": dict(plan.process_blockers),
            # PEP 703 probe: False = free-threaded build, GIL off
            # (threads overlap for real); None = probe unavailable
            "gil_enabled": _gil_enabled(),
        }
        sim.skip_stats.resolved_backend = resolved
        # masked walk order: remote groups are ticked by their worker
        # processes, everything else (hub stages included) stays local
        if self._remote_infos:
            remote_keys = set(self._remote_infos)
            self._schedule = [
                (stage, scratches if scratches is None else
                 [s for s in scratches if s.key not in remote_keys])
                for stage, scratches in self._schedule_full
            ]
        else:
            self._schedule = self._schedule_full

    def _demote_processes(self, why: str) -> None:
        """Give up on worker processes for this plan; fall to threads."""
        self._resolved_backend = "threads"
        self._remote_infos = {}
        self._schedule = self._schedule_full
        self.backend_resolution = dict(
            self.backend_resolution,
            resolved="threads",
            reason=f"processes unavailable ({why}); fell back")
        self.sim.skip_stats.resolved_backend = "threads"

    def _use_threads(self) -> bool:
        return self._resolved_backend == "threads" and self.workers > 1

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # deferred kernel services (armed only during parallel stages)
    # ------------------------------------------------------------------

    def _stage_route(self, target) -> None:
        """Record a wake raised inside a worker's tick loop."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:  # pragma: no cover - defensive
            self.sim._wake_direct(target)
            return
        ctx.records.append((ctx.current_idx, "wake", target))
        if target is None:
            ctx.woke_all = True
        elif target in ctx.member_set:
            ctx.wake_targets.add(target)

    def _barrier_route(self, target) -> None:
        """Record a wake raised while the barrier replays records."""
        self._wl_seq += 1
        heapq.heappush(self._worklist,
                       (self._barrier_idx, self._wl_seq, "wake", target))

    def _defer_event(self, event) -> None:
        """Record an event published inside a worker's tick loop."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is None:  # pragma: no cover - defensive
            self.sim.events._dispatch(event)
            return
        ctx.records.append((ctx.current_idx, "event", event))

    # ------------------------------------------------------------------
    # cycle execution
    # ------------------------------------------------------------------

    def run_to(self, end: int) -> None:
        """Advance the simulator to ``end`` (the parallel ``_run_fast``).

        Dispatch loop: each leg runs a span on the resolved backend and
        reports back — ``"done"`` (reached ``end``), ``"replan"`` (the
        wiring changed; rebuild and re-dispatch on the fresh plan and
        backend resolution), or ``"fallback"`` (the fresh plan is not
        worth sharding; the serial fast path finishes the run).
        """
        sim = self.sim
        while sim._cycle < end:
            if sim._wiring_stale:
                sim._rebuild_wiring()
                self._refresh_plan()
                if not self._plan.parallelizable:
                    sim._run_fast(end)
                    return
            if self._remote_infos \
                    and self._resolved_backend == "processes":
                status = self._run_processes(end)
            else:
                status = self._run_span(end)
            if status == "fallback":
                sim._run_fast(end)
                return

    def _run_processes(self, end: int) -> str:
        """Epoch driver for the ``processes`` backend.

        Seeds the workers with authoritative parent state, then
        alternates ``dispatch_epoch`` (workers advance their shards by
        up to ``lookahead`` cycles) with a concurrent local span over
        the masked schedule, splicing results at each barrier.  Worker
        state is collected back before every return, so the parent
        mirrors are exact whenever control leaves the engine.
        """
        sim = self.sim
        infos = self._remote_infos
        epoch = min(info.lookahead for info in infos.values())
        if self._pool is None and end - sim._cycle < epoch:
            # shorter than one epoch: seeding workers would cost more
            # than ticking the shards in place on the full schedule
            return self._run_span(end, self._schedule_full)
        if self._pool is None:
            try:
                self._pool = ProcessShardPool(sim, infos, self.workers)
            except SimulationError:
                raise
            except Exception as exc:  # platform cannot start workers
                self._demote_processes(f"worker start failed: {exc!r}")
                return "replan"
        pool = self._pool
        try:
            pool.seed()
            while sim._cycle < end:
                if sim._wiring_stale:
                    # re-plan at the epoch boundary: the workers are
                    # idle here, and after a sync-up the parent
                    # mirrors are authoritative again
                    pool.collect()
                    return "replan"
                start = sim._cycle
                epoch_end = min(start + epoch, end)
                pool.dispatch_epoch(start, epoch_end)
                # the local span must reach epoch_end even if the
                # wiring goes stale mid-epoch (a parent-side rebuild
                # would desync the in-flight workers), so staleness is
                # deferred to the boundary check above
                self._defer_stale = True
                try:
                    self._run_span(epoch_end)
                finally:
                    self._defer_stale = False
                pool.collect_epoch(self.shard_stats)
            pool.collect()
            return "done"
        except BaseException:
            # containment: never leave half-synced workers behind
            self._pool = None
            pool.close(terminate=True)
            raise

    def _run_span(self, end: int, schedule=None) -> str:
        """Run the stage schedule serially-equivalently up to ``end``.

        Mirrors the serial fast path cycle for cycle: frozen-horizon
        jumps, heap wakes at cycle start, the stage walk in place of the
        flat component loop, then the identical commit / freeze logic.
        ``schedule`` defaults to the backend-masked one; the processes
        path passes the full schedule for sub-epoch spans.
        """
        sim = self.sim
        if schedule is None:
            schedule = self._schedule
        stats = sim.skip_stats
        heap = sim._wakeheap
        heap_list = heap._heap
        heap_push = heap.push
        dirty = sim._dirty_channels
        wake = sim._wake_component_direct
        ran_total = 0
        polled = 0
        frozen = 0
        batches = 0
        committed = 0
        heap_pushes = 0
        hub_ran = 0
        hub_skipped = 0
        hub_slept = 0
        self._bar_skipped = 0
        status = "done"
        try:
            while sim._cycle < end:
                if sim._finished:
                    raise SimulationError(
                        f"simulator {sim.name!r} stepped after finish()")
                cycle = sim._cycle
                if cycle < sim._quiescent_until:
                    jump_to = sim._quiescent_until
                    if jump_to > end:
                        jump_to = end
                    frozen += jump_to - cycle
                    sim._cycle = jump_to
                    continue
                if sim._wiring_stale and not self._defer_stale:
                    # hand the rebuild back to the dispatch loop; the
                    # epoch driver instead defers it to its barrier
                    status = "replan"
                    break
                if heap_list and heap_list[0][0] <= cycle:
                    sim._wake_due(cycle)
                ran = 0
                for stage, scratches in schedule:
                    if scratches is None:
                        r, s, sl, hp = self._run_hub_stage(cycle, stage)
                        hub_ran += r
                        hub_skipped += s
                        hub_slept += sl
                        heap_pushes += hp
                        ran += r
                        continue
                    # awake sweep: fan out only the groups with at
                    # least one awake member.  A fully sleeping group
                    # cannot tick this stage — every wake that could
                    # concern it has already been applied (heap wakes
                    # at cycle start, hub wakes directly, earlier
                    # barriers, commit wakes after all stages) and a
                    # wake raised *during* this stage is deferred to
                    # the barrier, which works off the active groups'
                    # records alone.  Matches the serial fast path,
                    # where sleepers are absent from the awake ring.
                    active = None
                    for scratch in scratches:
                        for _idx, component in scratch.members:
                            if not component._k_asleep:
                                if active is None:
                                    active = [scratch]
                                else:
                                    active.append(scratch)
                                break
                    if active is not None:
                        ran += self._run_parallel_stage(
                            cycle, stage, active)
                ran_total += ran
                polled += 1
                if dirty:
                    n_dirty = len(dirty)
                    if n_dirty >= _BULK_THRESHOLD:
                        sim._cohorts.flush(cycle, dirty)
                    else:
                        # inlined pure-Python commit, identical to the
                        # serial fast path's (which tests compare against
                        # Channel._commit directly)
                        batches += 1
                        committed += n_dirty
                        next_cycle = cycle + 1
                        sleeping = True if sim._asleep else False
                        for channel in dirty:
                            staged = channel._staged
                            queue = channel._queue
                            if staged:
                                ready = cycle + channel.latency
                                if len(staged) == 1:
                                    queue.append((ready, staged[0]))
                                else:
                                    queue.extend(
                                        [(ready, item) for item in staged])
                                staged.clear()
                            channel._occupancy -= channel._popped_this_cycle
                            channel._popped_this_cycle = 0
                            channel._dirty = False
                            if queue and queue[0][0] > next_cycle:
                                if heap_push(channel, queue[0][0]):
                                    heap_pushes += 1
                            if sleeping:
                                for component in channel._watchers:
                                    if component._k_asleep:
                                        wake(component)
                        dirty.clear()
                elif not ran:
                    horizon = heap.peek_cycle()
                    for component in sim._awake:
                        hint = component.next_event_cycle(cycle)
                        if hint is not None and hint < horizon:
                            horizon = hint
                    if horizon > cycle:
                        sim._quiescent_until = horizon
                        stats.horizon_scans += 1
                sim._cycle = cycle + 1
        finally:
            # fold the cumulative per-shard counters exactly once per
            # run (folding per cycle costs more than the ticks saved)
            skipped = hub_skipped + self._bar_skipped
            slept = hub_slept
            for scratch_list in self._scratches.values():
                for scratch in scratch_list:
                    skipped += scratch.skipped
                    slept += scratch.slept
                    scratch.flush_stats(self.shard_stats[scratch.key], 0)
            for key in self.shard_stats:
                self.shard_stats[key].cycles_polled += polled
                self.shard_stats[key].cycles_total += polled
            hub = self.shard_stats["hub"]
            hub.ticks_run += hub_ran
            hub.ticks_skipped += hub_skipped
            hub.ticks_slept += hub_slept
            self._bar_skipped = 0
            stats.ticks_run += ran_total
            stats.ticks_skipped += skipped
            stats.ticks_slept += slept
            stats.cycles_polled += polled
            stats.cycles_frozen += frozen
            stats.cycles_total += polled + frozen
            stats.commit_batches += batches
            stats.commit_channels += committed
            stats.heap_pushes += heap_pushes
        return status

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def _run_hub_stage(self, cycle: int, stage: Stage
                       ) -> Tuple[int, int, int, int]:
        """Tick a hub run with the serial fast-path block, verbatim.

        Runs with the wake router disarmed and the event bus live, so a
        hub component's direct cross-component calls, publishes, and
        wakes behave exactly as on the serial fast path — including the
        mid-loop visibility of a wake raised by an earlier hub member.
        """
        sim = self.sim
        heap_push = sim._wakeheap.push
        ran = 0
        skipped = 0
        slept = 0
        heap_pushes = 0
        for _idx, component in stage.members:
            if component._k_asleep:
                slept += 1
                continue
            mask = component._k_mask
            if mask and cycle & mask:
                component.tick(cycle)
                ran += 1
                continue
            if component.is_quiescent(cycle):
                skipped += 1
                if mask:
                    component._k_mask = mask >> 1
                elif component._k_miss:
                    component._k_miss -= 1
                if component._k_sleepable:
                    quiet = component._k_quiet + 1
                    if quiet >= _SLEEP_AFTER:
                        component._k_asleep = True
                        del sim._awake[component]
                        sim._asleep[component] = True
                        hint = component.next_event_cycle(cycle)
                        if hint is not None and hint > cycle:
                            if heap_push(component, hint):
                                heap_pushes += 1
                    else:
                        component._k_quiet = quiet
            else:
                component.tick(cycle)
                ran += 1
                component._k_quiet = 0
                if mask:
                    if mask < _BACKOFF_MASK_MAX:
                        component._k_mask = (mask << 1) | 1
                else:
                    miss = component._k_miss + 1
                    if miss >= _BACKOFF_AFTER:
                        component._k_mask = _BACKOFF_MASK_FIRST
                        component._k_miss = 0
                    else:
                        component._k_miss = miss
        return ran, skipped, slept, heap_pushes

    def _run_parallel_stage(self, cycle: int, stage: Stage,
                            scratches: List[_GroupScratch]) -> int:
        """Fan the stage's groups out, then replay the barrier records.

        Returns the number of ticks actually run.  The caller has
        already established that at least one member is awake (the
        all-asleep sweep in :meth:`run_to`).
        """
        sim = self.sim
        bus = sim.events
        ran = 0
        for scratch in scratches:
            scratch.reset()
        sim._wake_router = self._stage_route
        bus._defer = self._defer_event
        try:
            if self._use_threads() and len(scratches) > 1:
                executor = self._executor
                if executor is None:
                    executor = self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix=f"{sim.name}-shard")
                futures = [executor.submit(self._run_group, cycle, scratch)
                           for scratch in scratches[1:]]
                errors: list = []
                try:
                    ran += self._run_group(cycle, scratches[0])
                finally:
                    for future in futures:
                        try:
                            ran += future.result()
                        except BaseException as exc:  # noqa: BLE001
                            errors.append(exc)
                if errors:
                    raise errors[0]
            else:
                for scratch in scratches:
                    ran += self._run_group(cycle, scratch)
        finally:
            bus._defer = None
            sim._wake_router = None
        return ran + self._barrier(cycle, stage, scratches)

    def _run_group(self, cycle: int, scratch: _GroupScratch) -> int:
        """One worker's slice of the tick phase: the serial visit block
        with sleeps deferred and intra-group wakes honoured inline.
        Returns the number of ticks run."""
        self._tls.ctx = scratch
        ran = 0
        try:
            records = scratch.records
            wake_targets = scratch.wake_targets
            for idx, component in scratch.members:
                scratch.current_idx = idx
                if component._k_asleep:
                    if scratch.woke_all or component in wake_targets:
                        # an earlier member woke it mid-loop: re-poll it
                        # this cycle, exactly as the serial loop would
                        # (the barrier finishes the dict bookkeeping)
                        component._k_quiet = 0
                        scratch.polled.add(component)
                    else:
                        scratch.slept += 1
                        continue
                mask = component._k_mask
                if mask and cycle & mask:
                    component.tick(cycle)
                    ran += 1
                    continue
                if component.is_quiescent(cycle):
                    scratch.skipped += 1
                    if mask:
                        component._k_mask = mask >> 1
                    elif component._k_miss:
                        component._k_miss -= 1
                    if component._k_sleepable:
                        quiet = component._k_quiet + 1
                        if quiet >= _SLEEP_AFTER:
                            # defer the dict moves and heap push to the
                            # barrier; the hint is computed here, at the
                            # same logical point the serial path would
                            records.append((idx, "sleep", (
                                component,
                                component.next_event_cycle(cycle))))
                        else:
                            component._k_quiet = quiet
                else:
                    component.tick(cycle)
                    ran += 1
                    component._k_quiet = 0
                    if mask:
                        if mask < _BACKOFF_MASK_MAX:
                            component._k_mask = (mask << 1) | 1
                    else:
                        miss = component._k_miss + 1
                        if miss >= _BACKOFF_AFTER:
                            component._k_mask = _BACKOFF_MASK_FIRST
                            component._k_miss = 0
                        else:
                            component._k_miss = miss
        finally:
            scratch.ran += ran
            self._tls.ctx = None
        return ran

    # ------------------------------------------------------------------
    # barrier
    # ------------------------------------------------------------------

    def _barrier(self, cycle: int, stage: Stage,
                 scratches: List[_GroupScratch]) -> int:
        """Replay the stage's deferred records in serial order.

        Records are merged by the acting component's registration index
        (each index belongs to exactly one group, so the merge is a
        total order) and processed on the main thread with the event
        bus live and wakes classified at the current index — so nested
        publishes, subscriber wakes, and re-polls interleave exactly
        where the serial loop would have placed them.
        """
        sim = self.sim
        heap = sim._wakeheap
        bus = sim.events
        worklist: list = []
        seq = 0
        polled: set = set()
        for scratch in scratches:
            if scratch.polled:
                polled |= scratch.polled
            for rec_idx, kind, payload in scratch.records:
                worklist.append((rec_idx, seq, kind, payload))
                seq += 1
        if not worklist:
            return 0
        heapq.heapify(worklist)
        self._worklist = worklist
        self._wl_seq = seq
        self._wl_polled = polled
        self._stage_bounds = (stage.start, stage.end)
        ran = 0
        sim._wake_router = self._barrier_route
        try:
            while worklist:
                idx, _seq, kind, payload = heapq.heappop(worklist)
                self._barrier_idx = idx
                if kind == "wake":
                    self._apply_wake(idx, payload)
                elif kind == "sleep":
                    component, hint = payload
                    if not component._k_asleep:
                        component._k_asleep = True
                        del sim._awake[component]
                        sim._asleep[component] = True
                        if hint is not None and hint > cycle:
                            if heap.push(component, hint):
                                sim.skip_stats.heap_pushes += 1
                elif kind == "event":
                    bus._dispatch(payload)
                else:  # "poll": a barrier re-poll of a woken component
                    component = payload
                    if component in polled:
                        continue
                    polled.add(component)
                    ran += self._barrier_visit(component, cycle)
        finally:
            sim._wake_router = None
            self._worklist = None
            self._wl_polled = None
        return ran

    def _apply_wake(self, w_idx: int, target) -> None:
        """Replay one deferred wake (global when ``target`` is None)."""
        sim = self.sim
        sim._quiescent_until = 0
        if target is None:
            asleep = sim._asleep
            if asleep:
                for component in list(asleep):
                    self._wake_one(component, w_idx)
        elif target._k_asleep:
            self._wake_one(target, w_idx)

    def _wake_one(self, component, w_idx: int) -> None:
        sim = self.sim
        component._k_asleep = False
        del sim._asleep[component]
        sim._awake[component] = True
        sim._wakeheap.invalidate(component)
        if component not in self._wl_polled:
            component._k_quiet = 0
            cidx = self._plan.component_index[component]
            start, end = self._stage_bounds
            if start <= cidx < end and cidx > w_idx:
                # the component's serial tick position lies after its
                # waker within this stage: the serial loop would have
                # re-polled it, so the barrier does too, at its index
                self._wl_seq += 1
                heapq.heappush(self._worklist,
                               (cidx, self._wl_seq, "poll", component))

    def _barrier_visit(self, component, cycle: int) -> int:
        """The serial visit block for a component re-polled at the
        barrier; cannot re-sleep (its quiet counter was just reset)."""
        stats = self.shard_stats.get(
            self._plan.component_keys.get(component) or "hub")
        mask = component._k_mask
        if mask and cycle & mask:
            component.tick(cycle)
            if stats is not None:
                stats.ticks_run += 1
            return 1
        if component.is_quiescent(cycle):
            self._bar_skipped += 1
            if stats is not None:
                stats.ticks_skipped += 1
            if mask:
                component._k_mask = mask >> 1
            elif component._k_miss:
                component._k_miss -= 1
            if component._k_sleepable:
                component._k_quiet += 1
            return 0
        component.tick(cycle)
        if stats is not None:
            stats.ticks_run += 1
        component._k_quiet = 0
        if mask:
            if mask < _BACKOFF_MASK_MAX:
                component._k_mask = (mask << 1) | 1
        else:
            miss = component._k_miss + 1
            if miss >= _BACKOFF_AFTER:
                component._k_mask = _BACKOFF_MASK_FIRST
                component._k_miss = 0
            else:
                component._k_miss = miss
        return 1
