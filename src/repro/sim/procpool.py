"""Long-lived worker processes for the ``processes`` shard backend.

The parent's :class:`~repro.sim.parallel.ParallelEngine` drives one
:class:`ProcessShardPool` per simulator.  Each worker process owns one
or more *process-exportable* shards (proven safe by
:func:`repro.sim.partition.build_plan` — see
:class:`~repro.sim.partition.ProcessShardInfo`) and advances them in
**epochs** of ``lookahead`` cycles between barriers:

* **sync-down** (once per ``run_to``) — the parent ships the current
  cycle, every member's :meth:`~repro.sim.Component.export_state`
  snapshot, and the internal/inbound channel queues.  The parent's
  copies stay authoritative *between* runs, so external mutations
  (driver APIs enqueueing work) need no tracking: the next run re-seeds.
* **epoch** — the parent sends ``(run, start, end, frames)`` where
  ``frames`` carries the inbound boundary entries committed since the
  last barrier (packed by :mod:`repro.sim.shardwire`, so the transfer
  is a bulk buffer, not per-beat pickling), then executes the hub and
  any non-exportable groups for the same span concurrently.  The worker
  runs a minimal poll-or-tick loop over its members — registration
  order, ``is_quiescent`` honoured, dirty channels committed per cycle
  via :meth:`Channel._commit` — which is exactly the reference cycle
  restricted to the shard.
* **barrier** — the worker replies with the outbound entries its shard
  committed (harvested straight from the channel queues: the
  ``(ready_cycle, payload)`` commit layout *is* the wire format), the
  number of inbound entries it popped, any deferred wake/event records
  tagged ``(cycle, registration_index)``, and its tick statistics.  The
  parent splices outbound entries into the real channels (with the same
  wake-heap and watcher-wake duties a commit performs), trims popped
  inbound entries, and replays the records sorted by
  ``(cycle, index)`` — serial order.
* **sync-up** (once per ``run_to``) — workers ship member states and
  internal queues back; the parent imports them so its mirrors are
  exact before control returns to user code.

Why epochs are exact (not approximate): eligibility requires every
boundary channel's latency ``L >= lookahead E``.  A beat the other side
pushes at cycle ``t`` becomes visible at ``t + L``; for any ``t`` inside
epoch ``k`` (``t >= kE``) that is ``>= (k+1)E`` — the *next* epoch.  So
everything visible during an epoch was committed in earlier epochs and
has already crossed at a barrier; no mid-epoch exchange can be needed.

Crash containment: a member raising inside a worker comes back as an
``("error", traceback)`` reply and is re-raised as
:class:`SimulationError` naming the worker; a worker dying outright is
detected by the liveness poll around every receive.  Neither hangs the
parent.

Spawn-safe bootstrap: under the ``fork`` start method workers inherit
the object graph and the shard descriptors are passed by reference
(sync-down makes fork-time staleness irrelevant).  Under ``spawn`` (or
``forkserver``) live components must never be pickled — the parent
instead ships ``Simulator.parallel_recipe``, a picklable
``(builder, args, kwargs)`` triple, and the child rebuilds the whole
simulator, re-derives the plan, and adopts its shards by name.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from .errors import SimulationError
from .shardwire import pack_entries, unpack_entries

#: seconds the parent waits on a live worker before declaring it hung
_REPLY_TIMEOUT = 300.0

#: liveness-poll granularity while waiting on a reply
_POLL_INTERVAL = 0.02


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------

class _WorkerShard:
    """One shard's state inside a worker process."""

    __slots__ = ("key", "members", "internal", "inbound", "outbound",
                 "ran", "skipped")

    def __init__(self, key: str, members: List[Tuple[int, Any]],
                 internal: List[Any], inbound: List[Any],
                 outbound: List[Any]) -> None:
        self.key = key
        self.members = members
        self.internal = internal
        self.inbound = inbound
        self.outbound = outbound
        self.ran = 0
        self.skipped = 0


def _shards_from_recipe(recipe, keys, expected_members):
    """Spawn-mode bootstrap: rebuild the simulator, adopt shards by name.

    The builder must reproduce the parent's registration order (the
    record indices below must mean the same serial positions); member
    names are cross-checked so a divergent build fails loudly instead
    of silently reordering replay.
    """
    from .partition import build_plan

    builder, args, kwargs = recipe
    sim = builder(*args, **kwargs)
    sim._rebuild_wiring()
    plan = build_plan(sim)
    shards = []
    for key in keys:
        info = plan.process_shards.get(key)
        if info is None:
            raise SimulationError(
                f"spawn recipe rebuilt a plan without process shard "
                f"{key!r} (blocker: {plan.process_blockers.get(key)})")
        names = [comp.name for _idx, comp in info.members]
        if names != expected_members[key]:
            raise SimulationError(
                f"spawn recipe rebuilt shard {key!r} with members "
                f"{names}, parent expected {expected_members[key]}")
        shards.append(_WorkerShard(key, info.members, list(info.internal),
                                   list(info.inbound), list(info.outbound)))
    return sim, shards


def _worker_main(conn, bootstrap) -> None:
    """Worker process entry: serve epoch requests until told to stop."""
    try:
        if bootstrap[0] == "objects":
            # fork start method: descriptors arrived by inheritance
            sim, descriptors = bootstrap[1], bootstrap[2]
            shards = [_WorkerShard(*d) for d in descriptors]
        else:
            sim, shards = _shards_from_recipe(*bootstrap[1:])
        # the child runs its own mini-kernel; make sure no nested
        # parallel engine can ever spin up
        sim.parallel = 0
        sim._parallel_engine = None
        by_name = {}
        for shard in shards:
            for channel in (*shard.internal, *shard.inbound,
                            *shard.outbound):
                by_name[channel.name] = channel
        members = {comp.name for shard in shards
                   for _idx, comp in shard.members}
        comp_by_name = {comp.name: comp for shard in shards
                        for _idx, comp in shard.members}
        records: List[Tuple[int, int, str, Any]] = []

        def route_wake(target) -> None:
            # wakes aimed at this worker's own members are no-ops here
            # (the mini-loop polls every member every cycle); anything
            # else must replay on the parent in serial order
            if target is not None and target.name in members:
                return
            records.append((sim._cycle, _current[0], "wake",
                            None if target is None else target.name))

        def route_event(event) -> None:
            records.append((sim._cycle, _current[0], "event", event))

        _current = [0]  # registration index of the member being ticked
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return

    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        try:
            if op == "run":
                _op, start, end, frames = message
                for name, frame in frames.items():
                    channel = by_name[name]
                    entries = unpack_entries(frame)
                    channel._queue.extend(entries)
                    channel._occupancy += len(entries)
                popped_before = {
                    channel.name: channel.popped_total
                    for shard in shards for channel in shard.inbound}
                dirty = sim._dirty_channels
                sim._wake_router = route_wake
                sim.events._defer = route_event
                try:
                    for cycle in range(start, end):
                        sim._cycle = cycle
                        for shard in shards:
                            for idx, component in shard.members:
                                _current[0] = idx
                                if component.is_quiescent(cycle):
                                    shard.skipped += 1
                                else:
                                    component.tick(cycle)
                                    shard.ran += 1
                        if dirty:
                            for channel in dirty:
                                channel._commit(cycle)
                            dirty.clear()
                    sim._cycle = end
                finally:
                    sim._wake_router = None
                    sim.events._defer = None
                out_frames = {}
                for shard in shards:
                    for channel in shard.outbound:
                        queue = channel._queue
                        if queue:
                            out_frames[channel.name] = pack_entries(
                                list(queue))
                            queue.clear()
                            channel._occupancy = len(channel._staged)
                pops = {}
                for shard in shards:
                    for channel in shard.inbound:
                        delta = (channel.popped_total
                                 - popped_before[channel.name])
                        if delta:
                            pops[channel.name] = delta
                stats = {shard.key: (shard.ran, shard.skipped)
                         for shard in shards}
                for shard in shards:
                    shard.ran = 0
                    shard.skipped = 0
                conn.send(("done", out_frames, pops, list(records), stats))
                records.clear()
            elif op == "seed":
                _op, cycle, payload = message
                sim._cycle = cycle
                for key, data in payload.items():
                    for name, state in data["states"].items():
                        comp_by_name[name].import_state(state)
                    for name, (frame, pushed, popped) in (
                            data["queues"].items()):
                        channel = by_name[name]
                        channel._queue.clear()
                        channel._queue.extend(unpack_entries(frame))
                        channel._staged.clear()
                        channel._popped_this_cycle = 0
                        channel._occupancy = len(channel._queue)
                        channel._dirty = False
                        # adopt the parent's totals: the fork-time copies
                        # are stale, and collect() ships these back
                        channel.pushed_total = pushed
                        channel.popped_total = popped
                for shard in shards:
                    for channel in shard.outbound:
                        channel._queue.clear()
                        channel._staged.clear()
                        channel._popped_this_cycle = 0
                        channel._occupancy = 0
                        channel._dirty = False
                sim._dirty_channels.clear()
                records.clear()
                conn.send(("ok",))
            elif op == "collect":
                payload = {}
                for shard in shards:
                    payload[shard.key] = {
                        "states": {comp.name: comp.export_state()
                                   for _idx, comp in shard.members},
                        "queues": {
                            channel.name: (pack_entries(
                                list(channel._queue)),
                                channel.pushed_total,
                                channel.popped_total)
                            for channel in shard.internal},
                    }
                conn.send(("state", payload))
            elif op == "stop":
                conn.send(("ok",))
                break
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("name", "process", "conn", "shard_keys")

    def __init__(self, name: str, process, conn,
                 shard_keys: List[str]) -> None:
        self.name = name
        self.process = process
        self.conn = conn
        self.shard_keys = shard_keys


class ProcessShardPool:
    """Parent-side manager of the shard worker processes."""

    def __init__(self, sim, shard_infos: Dict[str, Any], workers: int,
                 mp_context=None) -> None:
        import multiprocessing

        self.sim = sim
        self.infos = dict(shard_infos)
        ctx = mp_context
        if ctx is None:
            ctx = multiprocessing.get_context(
                getattr(sim, "parallel_mp_context", None))
        self._ctx = ctx
        self.start_method = ctx.get_start_method()
        #: per inbound channel: queue entries already shipped (a prefix
        #: of the parent queue; worker pops consume it from the front)
        self._shipped: Dict[str, int] = {}
        self._workers: List[_Worker] = []
        self.closed = False

        keys = sorted(self.infos)
        n_workers = max(1, min(workers, len(keys)))
        assignment: List[List[str]] = [[] for _ in range(n_workers)]
        for pos, key in enumerate(keys):
            assignment[pos % n_workers].append(key)

        recipe = getattr(sim, "parallel_recipe", None)
        for worker_no, worker_keys in enumerate(assignment):
            if not worker_keys:
                continue
            if self.start_method == "fork":
                descriptors = [
                    (key, self.infos[key].members,
                     list(self.infos[key].internal),
                     list(self.infos[key].inbound),
                     list(self.infos[key].outbound))
                    for key in worker_keys]
                bootstrap = ("objects", sim, descriptors)
            else:
                if recipe is None:
                    raise SimulationError(
                        f"processes backend under start method "
                        f"{self.start_method!r} needs "
                        f"Simulator.parallel_recipe (live components "
                        f"are never pickled)")
                expected = {key: [comp.name for _idx, comp
                                  in self.infos[key].members]
                            for key in worker_keys}
                bootstrap = ("recipe", recipe, worker_keys, expected)
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main, args=(child_conn, bootstrap),
                name=f"{sim.name}-shard-{worker_no}", daemon=True)
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process.name, process,
                                         parent_conn, worker_keys))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _recv(self, worker: _Worker):
        """Receive one reply with liveness and hang detection."""
        conn = worker.conn
        deadline = time.monotonic() + _REPLY_TIMEOUT
        try:
            while not conn.poll(_POLL_INTERVAL):
                if not worker.process.is_alive():
                    raise SimulationError(
                        f"shard worker {worker.name!r} (shards "
                        f"{worker.shard_keys}) died with exit code "
                        f"{worker.process.exitcode}")
                if time.monotonic() > deadline:
                    raise SimulationError(
                        f"shard worker {worker.name!r} unresponsive "
                        f"for {_REPLY_TIMEOUT:.0f}s")
            message = conn.recv()
        except (EOFError, OSError) as exc:
            raise SimulationError(
                f"shard worker {worker.name!r} (shards "
                f"{worker.shard_keys}) closed its pipe: {exc}") from exc
        if message[0] == "error":
            raise SimulationError(
                f"shard worker {worker.name!r} failed:\n{message[1]}")
        return message

    # ------------------------------------------------------------------
    # sync-down / sync-up
    # ------------------------------------------------------------------

    def seed(self) -> None:
        """Ship authoritative parent state down to every worker."""
        self._shipped.clear()
        for worker in self._workers:
            payload = {}
            for key in worker.shard_keys:
                info = self.infos[key]
                queues = {}
                for channel in info.internal:
                    queues[channel.name] = (
                        pack_entries(list(channel._queue)),
                        channel.pushed_total, channel.popped_total)
                for channel in info.inbound:
                    entries = list(channel._queue)
                    queues[channel.name] = (
                        pack_entries(entries),
                        channel.pushed_total, channel.popped_total)
                    self._shipped[channel.name] = len(entries)
                payload[key] = {
                    "states": {comp.name: comp.export_state()
                               for _idx, comp in info.members},
                    "queues": queues,
                }
            worker.conn.send(("seed", self.sim._cycle, payload))
        for worker in self._workers:
            self._recv(worker)

    def collect(self) -> None:
        """Pull worker state back into the parent mirrors (sync-up)."""
        for worker in self._workers:
            worker.conn.send(("collect",))
        for worker in self._workers:
            message = self._recv(worker)
            for key, data in message[1].items():
                info = self.infos[key]
                by_name = {channel.name: channel
                           for channel in info.internal}
                for _idx, comp in info.members:
                    comp.import_state(data["states"][comp.name])
                for name, (frame, pushed, popped) in (
                        data["queues"].items()):
                    channel = by_name[name]
                    channel._queue.clear()
                    channel._queue.extend(unpack_entries(frame))
                    channel._staged.clear()
                    channel._popped_this_cycle = 0
                    channel._occupancy = len(channel._queue)
                    channel._dirty = False
                    channel.pushed_total = pushed
                    channel.popped_total = popped

    # ------------------------------------------------------------------
    # epoch barrier
    # ------------------------------------------------------------------

    def dispatch_epoch(self, start: int, end: int) -> None:
        """Send the next epoch's work (new inbound entries) to workers."""
        for worker in self._workers:
            frames = {}
            for key in worker.shard_keys:
                for channel in self.infos[key].inbound:
                    shipped = self._shipped.get(channel.name, 0)
                    queue = channel._queue
                    if len(queue) > shipped:
                        fresh = list(queue)[shipped:]
                        frames[channel.name] = pack_entries(fresh)
                        self._shipped[channel.name] = len(queue)
            worker.conn.send(("run", start, end, frames))

    def collect_epoch(self, shard_stats: Dict[str, Any]) -> None:
        """Barrier: apply every worker's epoch results to the parent.

        Outbound entries splice into the real channel queues with the
        same duties a commit performs (future-head heap push, watcher
        wakes); inbound pops trim the shipped prefix; deferred
        wake/event records from *all* workers replay merged in
        ``(cycle, registration_index)`` order — the serial order.
        """
        sim = self.sim
        heap = sim._wakeheap
        wake = sim._wake_component_direct
        now = sim._cycle
        all_records: List[Tuple[int, int, str, Any]] = []
        for worker in self._workers:
            message = self._recv(worker)
            _op, out_frames, pops, records, stats = message
            for name, frame in out_frames.items():
                channel = sim._names[name]
                entries = unpack_entries(frame)
                queue = channel._queue
                was_empty = not queue
                queue.extend(entries)
                channel._occupancy += len(entries)
                channel.pushed_total += len(entries)
                sim._quiescent_until = 0
                if was_empty and queue[0][0] > now:
                    if heap.push(channel, queue[0][0]):
                        sim.skip_stats.heap_pushes += 1
                for component in channel._watchers:
                    if component._k_asleep:
                        wake(component)
            for name, count in pops.items():
                channel = sim._names[name]
                queue = channel._queue
                for _ in range(count):
                    queue.popleft()
                channel._occupancy -= count
                channel.popped_total += count
                self._shipped[name] -= count
            all_records.extend(records)
            for key, (ran, skipped) in stats.items():
                entry = shard_stats.get(key)
                if entry is not None:
                    entry.ticks_run += ran
                    entry.ticks_skipped += skipped
                sim.skip_stats.ticks_run += ran
                sim.skip_stats.ticks_skipped += skipped
        if all_records:
            sim._quiescent_until = 0
            all_records.sort(key=lambda record: (record[0], record[1]))
            dispatch = sim.events._dispatch
            for _cycle, _idx, kind, payload in all_records:
                if kind == "wake":
                    if payload is None:
                        sim._wake_all_direct()
                    else:
                        target = sim._names.get(payload)
                        if target is not None:
                            wake(target)
                else:
                    dispatch(payload)

    # ------------------------------------------------------------------

    def close(self, terminate: bool = False) -> None:
        """Shut every worker down (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            if terminate:
                worker.process.terminate()
                continue
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()
