"""Statistics collectors used by monitors and benchmarks.

The collectors are deliberately dependency-free (no numpy) so the core
library stays importable anywhere; benchmarks may post-process with numpy.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class OnlineStats:
    """Streaming count/min/max/mean/variance (Welford's algorithm).

    Suitable for millions of samples: O(1) memory, numerically stable.
    """

    __slots__ = ("count", "minimum", "maximum", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another summary into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.minimum = other.minimum
            self.maximum = other.maximum
            self._mean = other._mean
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.minimum is not None and other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum is not None and other.maximum > self.maximum:
            self.maximum = other.maximum

    def as_dict(self) -> Dict[str, float]:
        """Summary as a plain dict (for reports and JSON dumps)."""
        return {
            "count": self.count,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "mean": self.mean,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OnlineStats(count={self.count}, min={self.minimum}, "
                f"max={self.maximum}, mean={self.mean:.3f})")


class Histogram:
    """Fixed-bin-width integer histogram (e.g. of latencies in cycles)."""

    def __init__(self, bin_width: int = 1) -> None:
        if bin_width < 1:
            raise ValueError("bin_width must be >= 1")
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}
        self.stats = OnlineStats()

    def add(self, value: float) -> None:
        """Count one sample."""
        self.stats.add(value)
        index = int(value // self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + 1

    def bins(self) -> List[tuple]:
        """Sorted ``(bin_lower_bound, count)`` pairs."""
        return [(index * self.bin_width, count)
                for index, count in sorted(self._bins.items())]

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (bin lower bound containing the rank)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.stats.count == 0:
            return 0.0
        rank = fraction * self.stats.count
        seen = 0
        for lower, count in self.bins():
            seen += count
            if seen >= rank:
                return float(lower)
        return float(self.bins()[-1][0])


class KernelSkipStats:
    """Per-run accounting of the fast kernel path's skipped work.

    The counters describe *simulated* cycles and component ticks:

    * ``cycles_total`` — cycles advanced since the last :meth:`reset`.
    * ``cycles_polled`` — cycles executed the long way (every component
      either polled via ``is_quiescent`` or ticked, dirty channels
      committed).
    * ``cycles_frozen`` — cycles crossed inside a frozen horizon, where
      nothing was polled, ticked, or committed at all.
    * ``ticks_run`` / ``ticks_skipped`` — component ticks executed versus
      elided (after an ``is_quiescent`` poll) during polled cycles.
    * ``ticks_slept`` — component-cycles spent fully asleep during polled
      cycles: the component was neither polled nor ticked because it
      declared :meth:`~repro.sim.Component.wake_channels` and nothing woke
      it.  (The cycle a sleeper enters or leaves sleep it is still polled,
      and counted under ``ticks_skipped``.)
    * ``horizon_scans`` — how many times the kernel froze the system and
      computed a bulk-skip horizon (heap minimum + awake-component hints).
    * ``heap_pushes`` / ``heap_pops`` — wake-heap entries scheduled
      (component hints and future channel heads) and entries that came due
      and woke their subject.
    * ``commit_batches`` / ``commit_channels`` — cohort commit flushes and
      the total dirty channels committed across them.
    * ``tlm_epochs`` / ``tlm_cycles_skipped`` — transaction-level
      fast-forward epochs committed and the simulated cycles they crossed
      without cycle-by-cycle execution (``Simulator(tlm=True)`` only;
      disjoint from ``cycles_total``, which counts cycle-accurate work).
    * ``tlm_rollbacks`` — epochs that were predicted, speculatively
      executed, and then rolled back to replay cycle-accurately.
    * ``tlm_demotions`` — per-reason counts of epoch declines/demotions
      (e.g. ``"fault"``, ``"listener"``, ``"short-period"``).

    ``ticks_skipped`` deliberately excludes frozen cycles; the headline
    "work avoided" figure is ``work_avoided_fraction`` which folds both in.
    """

    __slots__ = ("cycles_total", "cycles_polled", "cycles_frozen",
                 "ticks_run", "ticks_skipped", "ticks_slept",
                 "horizon_scans", "heap_pushes", "heap_pops",
                 "commit_batches", "commit_channels", "resolved_backend",
                 "tlm_epochs", "tlm_cycles_skipped", "tlm_rollbacks",
                 "tlm_demotions")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.cycles_total = 0
        self.cycles_polled = 0
        self.cycles_frozen = 0
        self.ticks_run = 0
        self.ticks_skipped = 0
        self.ticks_slept = 0
        self.horizon_scans = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.commit_batches = 0
        self.commit_channels = 0
        # which parallel backend actually executed ("inline", "threads",
        # "processes", or None when the serial path ran); written by the
        # parallel engine's backend resolution so bench sidecars and
        # regressions are attributable to the engine that produced them
        self.resolved_backend = None
        # transaction-level fast-forward accounting (Simulator(tlm=True))
        self.tlm_epochs = 0
        self.tlm_cycles_skipped = 0
        self.tlm_rollbacks = 0
        self.tlm_demotions: Dict[str, int] = {}

    @property
    def work_avoided_fraction(self) -> float:
        """Fraction of potential component ticks that were not executed."""
        n_per_cycle = 0
        polled_ticks = self.ticks_run + self.ticks_skipped + self.ticks_slept
        if self.cycles_polled:
            n_per_cycle = polled_ticks / self.cycles_polled
        potential = polled_ticks + self.cycles_frozen * n_per_cycle
        if potential <= 0:
            return 0.0
        return 1.0 - self.ticks_run / potential

    def as_dict(self) -> Dict[str, float]:
        """Counters as a plain dict (for reports and JSON dumps)."""
        return {
            "cycles_total": self.cycles_total,
            "cycles_polled": self.cycles_polled,
            "cycles_frozen": self.cycles_frozen,
            "ticks_run": self.ticks_run,
            "ticks_skipped": self.ticks_skipped,
            "ticks_slept": self.ticks_slept,
            "horizon_scans": self.horizon_scans,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "commit_batches": self.commit_batches,
            "commit_channels": self.commit_channels,
            "work_avoided_fraction": self.work_avoided_fraction,
            "resolved_backend": self.resolved_backend,
            "tlm_epochs": self.tlm_epochs,
            "tlm_cycles_skipped": self.tlm_cycles_skipped,
            "tlm_rollbacks": self.tlm_rollbacks,
            "tlm_demotions": dict(self.tlm_demotions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KernelSkipStats(cycles={self.cycles_total}, "
                f"frozen={self.cycles_frozen}, ticks_run={self.ticks_run}, "
                f"ticks_skipped={self.ticks_skipped})")


class PortFaultStats:
    """Per-port accounting of watchdog containment work.

    Kept by every :class:`~repro.hyperconnect.supervisor.TransactionSupervisor`
    (and the SmartConnect mirror) in the same always-on, dependency-free
    style as :class:`KernelSkipStats`:

    * ``watchdog_trips`` / ``protocol_trips`` — containment entries, by
      trigger (transaction age timeout vs. illegal request at ingest).
    * ``orphans_completed`` — transactions the master had issued that were
      finished with synthesized error responses instead of real data.
    * ``synth_r_beats`` / ``synth_b_beats`` — synthesized response beats
      pushed upstream so masters never hang.
    * ``drained_requests`` / ``drained_w_beats`` — requests and write
      beats swallowed out of the decoupled port's eFIFO during
      containment.
    """

    __slots__ = ("watchdog_trips", "protocol_trips", "orphans_completed",
                 "synth_r_beats", "synth_b_beats", "drained_requests",
                 "drained_w_beats")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.watchdog_trips = 0
        self.protocol_trips = 0
        self.orphans_completed = 0
        self.synth_r_beats = 0
        self.synth_b_beats = 0
        self.drained_requests = 0
        self.drained_w_beats = 0

    @property
    def trips(self) -> int:
        """Total containment entries, whatever the trigger."""
        return self.watchdog_trips + self.protocol_trips

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports and JSON dumps)."""
        return {
            "watchdog_trips": self.watchdog_trips,
            "protocol_trips": self.protocol_trips,
            "orphans_completed": self.orphans_completed,
            "synth_r_beats": self.synth_r_beats,
            "synth_b_beats": self.synth_b_beats,
            "drained_requests": self.drained_requests,
            "drained_w_beats": self.drained_w_beats,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PortFaultStats(trips={self.trips}, "
                f"orphans={self.orphans_completed})")


class RateCounter:
    """Counts events and converts them to a per-second rate.

    Used for the paper's "rate per second" performance indexes (CHaiDNN
    frames per second, DMA jobs per second).
    """

    def __init__(self, clock_hz: float) -> None:
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.clock_hz = clock_hz
        self.events = 0
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None

    def record(self, cycle: int) -> None:
        """Record one event completion at ``cycle``."""
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle
        self.events += 1

    def rate(self, window_cycles: Optional[int] = None) -> float:
        """Events per second over the observation window.

        If ``window_cycles`` is not given, the window spans from cycle 0 to
        the last recorded event.
        """
        if self.events == 0:
            return 0.0
        if window_cycles is None:
            window_cycles = self._last_cycle or 1
        if window_cycles <= 0:
            return 0.0
        return self.events * self.clock_hz / window_cycles
