"""Wire-level AXI payload objects and transaction bookkeeping.

Three kinds of objects travel on the simulated channels:

* :class:`AddrBeat` — one AR or AW request (a whole burst's address phase);
* :class:`WriteBeat` — one W data beat;
* :class:`DataBeat` — one R data beat;
* :class:`RespBeat` — one B write response.

A :class:`Transaction` is *not* a wire object: it is the master-side
bookkeeping record of a whole logical read or write, carrying the cycle
stamps the monitors use to compute response times.  When the Transaction
Supervisor splits a burst into nominal-size sub-bursts, the sub-``AddrBeat``
objects keep a ``parent`` reference to the original request so that data can
be merged back and probes can attribute latency to the original transaction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from .types import BurstType, ChannelName, Resp

_txn_counter = itertools.count(1)


def _next_serial() -> int:
    """Globally unique serial for transactions (debugging/tracing)."""
    return next(_txn_counter)


@dataclass
class Transaction:
    """Master-side record of one logical read or write burst.

    The cycle stamps are filled in as the transaction progresses:
    ``issued`` when the master pushes the address beat, ``first_data`` /
    ``last_data`` as data beats reach (reads) or leave (writes) the master,
    ``completed`` when the last R beat (reads) or the B response (writes)
    arrives back at the master.
    """

    kind: str                      # "read" or "write"
    master: str                    # issuing master's name
    address: int
    length: int                    # beats in the original burst
    size_bytes: int                # bytes per beat
    burst: BurstType = BurstType.INCR
    serial: int = field(default_factory=_next_serial)
    issued: Optional[int] = None
    first_data: Optional[int] = None
    last_data: Optional[int] = None
    completed: Optional[int] = None
    resp: Resp = Resp.OKAY
    data: Optional[bytes] = None   # write payload / assembled read result
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        """Bytes moved by this transaction."""
        return self.length * self.size_bytes

    @property
    def latency(self) -> Optional[int]:
        """Cycles from issue to completion, if complete."""
        if self.issued is None or self.completed is None:
            return None
        return self.completed - self.issued

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Transaction(#{self.serial} {self.kind} {self.master} "
                f"addr=0x{self.address:x} len={self.length})")


@dataclass(slots=True)
class AddrBeat:
    """One AR/AW request: the address phase of a burst."""

    channel: ChannelName           # ChannelName.AR or ChannelName.AW
    txn_id: int                    # AXI ID (unique per master in-flight)
    address: int
    length: int                    # beats
    size_bytes: int
    burst: BurstType = BurstType.INCR
    qos: int = 0
    port: Optional[int] = None     # interconnect input-port index
    parent: Optional["AddrBeat"] = None   # original beat if this is a split
    #: True when this is the last (or only) sub-burst of its original
    #: request — the merge logic re-asserts RLAST / forwards B only here.
    final_sub: bool = True
    #: accumulated response of already-merged sub-bursts (kept on the
    #: origin beat; "worst response wins")
    resp_acc: Resp = Resp.OKAY
    txn: Optional[Transaction] = None
    stamps: Dict[str, int] = field(default_factory=dict)

    def origin(self) -> "AddrBeat":
        """The original (pre-split) request this beat derives from."""
        beat = self
        while beat.parent is not None:
            beat = beat.parent
        return beat

    @property
    def is_read(self) -> bool:
        """True for AR beats."""
        return self.channel is ChannelName.AR

    def split_child(self, address: int, length: int,
                    final_sub: bool) -> "AddrBeat":
        """Create a nominal-size sub-request of this burst."""
        return AddrBeat(
            channel=self.channel,
            txn_id=self.txn_id,
            address=address,
            length=length,
            size_bytes=self.size_bytes,
            burst=self.burst,
            qos=self.qos,
            port=self.port,
            parent=self,
            final_sub=final_sub,
            txn=self.txn,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " (split)" if self.parent is not None else ""
        return (f"AddrBeat({self.channel.value} id={self.txn_id} "
                f"addr=0x{self.address:x} len={self.length}{tag})")


@dataclass(slots=True)
class WriteBeat:
    """One W data beat.

    Data-phase beats carry no ``stamps`` dict: only address beats are
    timestamped by the interconnect stages (grant/forward/issue events all
    happen on the address phase).
    """

    last: bool
    data: Optional[bytes] = None
    strobe: Optional[int] = None   # byte-enable mask; None = all bytes
    addr_beat: Optional[AddrBeat] = None  # the (sub-)AW this beat belongs to


@dataclass(slots=True)
class DataBeat:
    """One R data beat."""

    last: bool
    txn_id: int = 0
    data: Optional[bytes] = None
    resp: Resp = Resp.OKAY
    addr_beat: Optional[AddrBeat] = None  # the (sub-)AR this beat answers


@dataclass(slots=True)
class RespBeat:
    """One B write response."""

    txn_id: int = 0
    resp: Resp = Resp.OKAY
    addr_beat: Optional[AddrBeat] = None  # the (sub-)AW this acknowledges


def make_read_request(txn: Transaction, txn_id: int,
                      qos: int = 0) -> AddrBeat:
    """Build the AR beat for a read transaction."""
    return AddrBeat(
        channel=ChannelName.AR,
        txn_id=txn_id,
        address=txn.address,
        length=txn.length,
        size_bytes=txn.size_bytes,
        burst=txn.burst,
        qos=qos,
        txn=txn,
    )


def make_write_request(txn: Transaction, txn_id: int,
                       qos: int = 0) -> AddrBeat:
    """Build the AW beat for a write transaction."""
    return AddrBeat(
        channel=ChannelName.AW,
        txn_id=txn_id,
        address=txn.address,
        length=txn.length,
        size_bytes=txn.size_bytes,
        burst=txn.burst,
        qos=qos,
        txn=txn,
    )
