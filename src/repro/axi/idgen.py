"""AXI transaction-ID allocation.

Each master owns an ID space.  Since the modelled memory subsystem serves
transactions strictly in order (as the paper notes real FPGA SoC memory
controllers do), IDs are used for bookkeeping and checking rather than for
reordering — but they are still allocated and released like real AXI IDs so
the models stay faithful to the protocol.
"""

from __future__ import annotations

from typing import Set

from ..sim.errors import ConfigurationError


class IdAllocator:
    """Fixed-width AXI ID pool for one master interface.

    Parameters
    ----------
    width_bits:
        ID signal width; the pool holds ``2**width_bits`` IDs.
    """

    def __init__(self, width_bits: int = 4) -> None:
        if not 0 < width_bits <= 16:
            raise ConfigurationError(
                f"ID width must be in 1..16 bits, got {width_bits}")
        self.capacity = 1 << width_bits
        self._free = list(range(self.capacity - 1, -1, -1))
        self._in_use: Set[int] = set()

    def available(self) -> bool:
        """True when at least one ID is free."""
        return bool(self._free)

    def allocate(self) -> int:
        """Take a free ID; raises if the pool is exhausted."""
        if not self._free:
            raise ConfigurationError("AXI ID pool exhausted")
        txn_id = self._free.pop()
        self._in_use.add(txn_id)
        return txn_id

    def release(self, txn_id: int) -> None:
        """Return an ID to the pool; raises on double release."""
        if txn_id not in self._in_use:
            raise ConfigurationError(f"releasing unallocated ID {txn_id}")
        self._in_use.remove(txn_id)
        self._free.append(txn_id)

    @property
    def in_flight(self) -> int:
        """Number of currently allocated IDs."""
        return len(self._in_use)
