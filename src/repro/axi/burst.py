"""Burst address arithmetic.

Pure functions implementing the AXI address-structure rules: per-beat
addresses for INCR/WRAP/FIXED bursts, 4 KiB boundary checking, and the
burst-splitting used by the Transaction Supervisor's equalization stage
(the mechanism of Restuccia et al., "Is your bus arbiter really fair?",
ACM TECS 2019 — reference [11] of the paper).
"""

from __future__ import annotations

from typing import List, Tuple

from .types import (
    BOUNDARY_4KB,
    AxiVersion,
    BurstType,
    check_beat_size,
    check_burst_length,
)


def total_bytes(length: int, size_bytes: int) -> int:
    """Bytes transferred by an aligned burst of ``length`` beats."""
    return length * size_bytes


def beat_addresses(address: int, length: int, size_bytes: int,
                   burst: BurstType = BurstType.INCR) -> List[int]:
    """Per-beat start addresses of a burst.

    Addresses follow the AXI rules: INCR increments by the beat size, FIXED
    repeats the start address, WRAP increments and wraps at the container
    boundary (``length * size_bytes``, which must enclose an aligned start).
    """
    check_beat_size(size_bytes)
    if length < 1:
        raise ValueError("length must be >= 1")
    if burst is BurstType.FIXED:
        return [address] * length
    if burst is BurstType.INCR:
        return [address + i * size_bytes for i in range(length)]
    # WRAP: start must be aligned to the beat size; the burst wraps at the
    # container (total size) boundary.
    if address % size_bytes:
        raise ValueError(
            f"WRAP burst start 0x{address:x} not aligned to beat size "
            f"{size_bytes}")
    container = length * size_bytes
    base = (address // container) * container
    return [base + (address - base + i * size_bytes) % container
            for i in range(length)]


def crosses_4kb(address: int, length: int, size_bytes: int,
                burst: BurstType = BurstType.INCR) -> bool:
    """True if the burst would cross a 4 KiB boundary (illegal in AXI)."""
    if burst is BurstType.FIXED:
        return False
    if burst is BurstType.WRAP:
        # A legal WRAP burst stays inside its container, which never spans
        # a 4 KiB boundary for the allowed lengths/sizes.
        return False
    last = address + length * size_bytes - 1
    return (address // BOUNDARY_4KB) != (last // BOUNDARY_4KB)


def max_legal_length(address: int, size_bytes: int,
                     version: AxiVersion = AxiVersion.AXI4) -> int:
    """Longest INCR burst from ``address`` not crossing 4 KiB.

    Also capped by the protocol's maximum burst length.
    """
    check_beat_size(size_bytes)
    to_boundary = BOUNDARY_4KB - (address % BOUNDARY_4KB)
    by_boundary = max(1, to_boundary // size_bytes)
    return min(by_boundary, version.max_burst_length)


def split_burst(address: int, length: int, size_bytes: int,
                nominal: int) -> List[Tuple[int, int]]:
    """Split an INCR burst into sub-bursts of at most ``nominal`` beats.

    This is the equalization operation of the Transaction Supervisor: a
    request of ``length`` beats becomes ``ceil(length / nominal)``
    sub-requests, each of the nominal burst size except possibly the last.
    Returns ``(sub_address, sub_length)`` pairs in address order.

    The caller is responsible for the original burst being 4 KiB-legal;
    sub-bursts of a legal burst are always legal (they are sub-ranges).
    """
    check_beat_size(size_bytes)
    if nominal < 1:
        raise ValueError(f"nominal burst size must be >= 1, got {nominal}")
    if length < 1:
        raise ValueError(f"burst length must be >= 1, got {length}")
    pieces: List[Tuple[int, int]] = []
    remaining = length
    cursor = address
    while remaining > 0:
        chunk = min(nominal, remaining)
        pieces.append((cursor, chunk))
        cursor += chunk * size_bytes
        remaining -= chunk
    return pieces


def legalize(address: int, total_beats: int, size_bytes: int,
             version: AxiVersion = AxiVersion.AXI4) -> List[Tuple[int, int]]:
    """Chop a long linear transfer into protocol-legal INCR bursts.

    Used by DMA engines and traffic generators: given a transfer of
    ``total_beats`` beats starting at ``address``, produce bursts that
    respect both the max burst length of ``version`` and the 4 KiB rule.
    """
    check_beat_size(size_bytes)
    if total_beats < 1:
        raise ValueError("total_beats must be >= 1")
    bursts: List[Tuple[int, int]] = []
    cursor = address
    remaining = total_beats
    while remaining > 0:
        chunk = min(remaining, max_legal_length(cursor, size_bytes, version))
        check_burst_length(chunk, version)
        bursts.append((cursor, chunk))
        cursor += chunk * size_bytes
        remaining -= chunk
    return bursts
