"""AXI protocol substrate: types, burst math, links, checking, probes."""

from .burst import (
    beat_addresses,
    crosses_4kb,
    legalize,
    max_legal_length,
    split_burst,
    total_bytes,
)
from .checker import LinkChecker, ProtocolError, check_addr_beat
from .idgen import IdAllocator
from .monitor import ChannelThroughputProbe, PropagationProbe
from .payloads import (
    AddrBeat,
    DataBeat,
    RespBeat,
    Transaction,
    WriteBeat,
    make_read_request,
    make_write_request,
)
from .port import AxiLink
from .types import (
    BOUNDARY_4KB,
    AxiVersion,
    BurstType,
    ChannelName,
    Resp,
    check_beat_size,
    check_burst_length,
)

__all__ = [
    "beat_addresses",
    "crosses_4kb",
    "legalize",
    "max_legal_length",
    "split_burst",
    "total_bytes",
    "LinkChecker",
    "ProtocolError",
    "check_addr_beat",
    "IdAllocator",
    "ChannelThroughputProbe",
    "PropagationProbe",
    "AddrBeat",
    "DataBeat",
    "RespBeat",
    "Transaction",
    "WriteBeat",
    "make_read_request",
    "make_write_request",
    "AxiLink",
    "BOUNDARY_4KB",
    "AxiVersion",
    "BurstType",
    "ChannelName",
    "Resp",
    "check_beat_size",
    "check_burst_length",
]
