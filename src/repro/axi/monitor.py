"""Passive measurement probes.

These are the simulation-world equivalent of the paper's custom FPGA timer:
they attach to channels and measure propagation latencies and bandwidth
without perturbing the traffic.

* :class:`PropagationProbe` measures, beat by beat, the delay between a
  beat's appearance on an upstream channel and its (or its split
  descendant's) appearance on a downstream channel — this is what produces
  the per-channel latencies of Fig. 3(a).
* :class:`ChannelThroughputProbe` counts beats/bytes through a channel and
  converts them to bandwidth.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.channel import Channel
from ..sim.stats import OnlineStats
from .payloads import AddrBeat, RespBeat


def _match_key(item) -> int:
    """Identity key used to pair a beat across two channels.

    Address beats are keyed by their *origin* (pre-split) request so that a
    probe spanning the Transaction Supervisor still pairs correctly.  Write
    responses are re-created at the merge point, so they are keyed by the
    origin of the (sub-)write they acknowledge.  Data beats are forwarded
    as the same Python objects, so plain identity works.
    """
    if isinstance(item, AddrBeat):
        return id(item.origin())
    if isinstance(item, RespBeat) and item.addr_beat is not None:
        return id(item.addr_beat.origin())
    return id(item)


class PropagationProbe:
    """Measures push-to-push delay of beats between two channels.

    Parameters
    ----------
    channel_in / channel_out:
        Upstream and downstream observation points.  Entry is stamped when
        the beat is *pushed* upstream (the producer asserting VALID); exit
        is stamped when the beat is *popped* downstream (the consumer
        completing the handshake) — so a chain of k unit-latency stages
        measures k cycles, matching the paper's channel-latency
        definition.  When a burst is split in between, the first
        sub-burst's arrival defines the latency (what a hardware timer
        would see).
    exit_on:
        ``"pop"`` (default, see above) or ``"push"`` to stamp the exit at
        the downstream push instead.
    max_samples:
        Stop collecting after this many matched samples (keeps memory
        bounded on long runs).
    """

    def __init__(self, channel_in: Channel, channel_out: Channel,
                 max_samples: Optional[int] = None,
                 exit_on: str = "pop") -> None:
        if exit_on not in ("pop", "push"):
            raise ValueError("exit_on must be 'pop' or 'push'")
        self.stats = OnlineStats()
        self.max_samples = max_samples
        self._entry: Dict[int, int] = {}
        channel_in.subscribe_push(self._on_in)
        if exit_on == "pop":
            channel_out.subscribe_pop(self._on_out)
        else:
            channel_out.subscribe_push(self._on_out)

    def _active(self) -> bool:
        return (self.max_samples is None
                or self.stats.count < self.max_samples)

    def _on_in(self, cycle: int, item) -> None:
        if not self._active():
            return
        self._entry.setdefault(_match_key(item), cycle)

    def _on_out(self, cycle: int, item) -> None:
        if not self._active():
            return
        entered = self._entry.pop(_match_key(item), None)
        if entered is not None:
            self.stats.add(cycle - entered)

    @property
    def latency_max(self) -> Optional[float]:
        """Worst observed propagation latency in cycles."""
        return self.stats.maximum

    @property
    def latency_mean(self) -> float:
        """Mean observed propagation latency in cycles."""
        return self.stats.mean


class ChannelThroughputProbe:
    """Counts traffic through a channel and reports bandwidth.

    Beats are counted on *pop* (i.e. when actually consumed downstream),
    which is the point where bandwidth is truly delivered.
    """

    def __init__(self, channel: Channel, data_bytes: int) -> None:
        self.data_bytes = data_bytes
        self.beats = 0
        self.first_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None
        channel.subscribe_pop(self._on_pop)

    def _on_pop(self, cycle: int, item) -> None:
        if self.first_cycle is None:
            self.first_cycle = cycle
        self.last_cycle = cycle
        self.beats += 1

    @property
    def bytes_total(self) -> int:
        """Total bytes observed."""
        return self.beats * self.data_bytes

    def bandwidth_bytes_per_cycle(self,
                                  window_cycles: Optional[int] = None
                                  ) -> float:
        """Average delivered bandwidth.

        If ``window_cycles`` is omitted, the window spans from the first to
        the last observed beat (steady-state bandwidth).
        """
        if self.beats == 0:
            return 0.0
        if window_cycles is None:
            if self.last_cycle is None or self.first_cycle is None:
                return 0.0
            window_cycles = max(1, self.last_cycle - self.first_cycle + 1)
        return self.bytes_total / window_cycles
