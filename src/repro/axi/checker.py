"""AXI protocol checking.

Two layers are provided:

* pure validation functions (:func:`check_addr_beat`) that components call
  on beats they are about to issue — catching illegal bursts at the source;
* :class:`LinkChecker`, a passive monitor that subscribes to an
  :class:`~repro.axi.port.AxiLink` and verifies the streaming rules the
  paper's system relies on: W beats must match AW bursts in order and
  count, WLAST/RLAST must delimit bursts exactly, every AW gets exactly one
  B, and (for in-order systems, which is what FPGA SoC memory controllers
  implement) R bursts answer AR requests in issue order.

The checker is how the test-suite asserts that the HyperConnect is
"completely transparent to both the HAs and the memory subsystem" — i.e.
standard-compliant on both sides.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..sim.errors import ReproError
from .burst import crosses_4kb
from .payloads import AddrBeat, DataBeat, RespBeat, WriteBeat
from .port import AxiLink
from .types import AxiVersion, BurstType, check_beat_size, check_burst_length


class ProtocolError(ReproError):
    """An AXI protocol rule was violated."""


def check_addr_beat(beat: AddrBeat, version: AxiVersion = AxiVersion.AXI4,
                    bus_bytes: Optional[int] = None) -> None:
    """Validate an address beat against the AXI rules.

    Raises :class:`ProtocolError` on: illegal beat size, beat wider than the
    bus, illegal burst length for the protocol version/burst type, 4 KiB
    boundary crossing, or unaligned WRAP start.
    """
    try:
        check_beat_size(beat.size_bytes)
        check_burst_length(beat.length, version, beat.burst)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    if bus_bytes is not None and beat.size_bytes > bus_bytes:
        raise ProtocolError(
            f"beat size {beat.size_bytes} exceeds bus width {bus_bytes}")
    if crosses_4kb(beat.address, beat.length, beat.size_bytes, beat.burst):
        raise ProtocolError(
            f"burst at 0x{beat.address:x} ({beat.length} beats of "
            f"{beat.size_bytes} B) crosses a 4 KiB boundary")
    if beat.burst is BurstType.WRAP and beat.address % beat.size_bytes:
        raise ProtocolError(
            f"WRAP burst start 0x{beat.address:x} not aligned to beat size")


class LinkChecker:
    """Passive protocol monitor for one AXI link.

    Parameters
    ----------
    link:
        The link to observe.
    strict:
        If true, violations raise immediately; otherwise they are recorded
        in :attr:`violations` for later inspection.
    check_read_order:
        Verify that R bursts arrive in AR issue order (valid for the
        in-order systems modelled here; disable if observing a link where
        reordering is legal).
    """

    def __init__(self, link: AxiLink, strict: bool = True,
                 check_read_order: bool = True) -> None:
        self.link = link
        self.strict = strict
        self.check_read_order = check_read_order
        self.violations: List[str] = []
        # expected W beats, in AW order: (addr_beat, beats_remaining)
        self._pending_writes: Deque[list] = deque()
        # W beats observed before their AW (legal in AXI: write data may
        # appear at an interface ahead of its address)
        self._early_w: Deque[WriteBeat] = deque()
        # AWs awaiting their B response
        self._awaiting_b = 0
        # ARs awaiting their R burst, in order: (addr_beat, beats_remaining)
        self._pending_reads: Deque[list] = deque()
        link.ar.subscribe_push(self._on_ar)
        link.aw.subscribe_push(self._on_aw)
        link.w.subscribe_push(self._on_w)
        link.r.subscribe_push(self._on_r)
        link.b.subscribe_push(self._on_b)

    # ------------------------------------------------------------------

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise ProtocolError(f"{self.link.name}: {message}")

    def _check_addr(self, beat: AddrBeat) -> None:
        try:
            check_addr_beat(beat, self.link.version, self.link.data_bytes)
        except ProtocolError as exc:
            self._fail(str(exc))

    # ------------------------------------------------------------------

    def _on_ar(self, cycle: int, beat: AddrBeat) -> None:
        self._check_addr(beat)
        if self.check_read_order:
            self._pending_reads.append([beat, beat.length])

    def _on_aw(self, cycle: int, beat: AddrBeat) -> None:
        self._check_addr(beat)
        self._pending_writes.append([beat, beat.length])
        self._awaiting_b += 1
        while self._early_w and self._pending_writes:
            self._match_w(self._early_w.popleft(), cycle)

    def _on_w(self, cycle: int, beat: WriteBeat) -> None:
        if not self._pending_writes:
            # write data ahead of its address: buffer until the AW shows up
            self._early_w.append(beat)
            return
        self._match_w(beat, cycle)

    def _match_w(self, beat: WriteBeat, cycle: int) -> None:
        head = self._pending_writes[0]
        head[1] -= 1
        if head[1] == 0:
            if not beat.last:
                self._fail(
                    f"missing WLAST on final beat of burst "
                    f"0x{head[0].address:x} at cycle {cycle}")
            self._pending_writes.popleft()
        elif beat.last:
            self._fail(
                f"early WLAST ({head[1]} beats still due) on burst "
                f"0x{head[0].address:x} at cycle {cycle}")
            self._pending_writes.popleft()

    def _on_r(self, cycle: int, beat: DataBeat) -> None:
        if not self.check_read_order:
            return
        if not self._pending_reads:
            self._fail(f"R beat at cycle {cycle} with no outstanding AR")
            return
        head = self._pending_reads[0]
        head[1] -= 1
        if head[1] == 0:
            if not beat.last:
                self._fail(
                    f"missing RLAST on final beat of burst "
                    f"0x{head[0].address:x} at cycle {cycle}")
            self._pending_reads.popleft()
        elif beat.last:
            self._fail(
                f"early RLAST ({head[1]} beats still due) on burst "
                f"0x{head[0].address:x} at cycle {cycle}")
            self._pending_reads.popleft()

    def _on_b(self, cycle: int, beat: RespBeat) -> None:
        if self._awaiting_b <= 0:
            self._fail(f"B response at cycle {cycle} with no outstanding AW")
            return
        self._awaiting_b -= 1

    # ------------------------------------------------------------------

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (for non-strict mode).

        Also flags W beats that never found a matching AW — legal while
        in flight, but orphans once the traffic has drained.
        """
        if self._early_w:
            self.violations.append(
                f"{len(self._early_w)} W beats without a matching AW")
            self._early_w.clear()
        if self.violations:
            raise ProtocolError(
                f"{self.link.name}: {len(self.violations)} protocol "
                f"violations; first: {self.violations[0]}")
