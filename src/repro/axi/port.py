"""AXI link: the five-channel bundle between a master and a slave.

An :class:`AxiLink` owns one :class:`repro.sim.Channel` per AXI channel.
Direction conventions (fixed by the AXI standard):

* the master pushes AR, AW and W and pops R and B;
* the slave pops AR, AW and W and pushes R and B.

Every channel is a registered FIFO with one cycle of latency by default, so
each link boundary behaves like one pipeline stage — exactly the latency
model the paper uses for the eFIFO interfaces.
"""

from __future__ import annotations

from typing import Optional

from ..sim.channel import Channel
from .types import AxiVersion, check_beat_size


class AxiLink:
    """A point-to-point AXI connection (five channels).

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Prefix for the five channel names (``name.AR`` etc.).
    data_bytes:
        Bus width in bytes (AxSIZE of full-width beats).
    version:
        AXI3 or AXI4; constrains legal burst lengths.
    latency:
        Register latency of each channel: either a single int (default one
        cycle, applied to all five channels) or a dict mapping channel
        roles (``"AR"``, ``"AW"``, ``"W"``, ``"R"``, ``"B"``) to cycles —
        used to model multi-stage pipelines such as the SmartConnect's
        measured per-channel latencies.
    addr_depth / data_depth:
        FIFO depths for the address (AR/AW, B) and data (R/W) channels.
        ``None`` means unbounded (useful for idealized sinks in tests).
    """

    def __init__(self, sim, name: str, data_bytes: int = 16,
                 version: AxiVersion = AxiVersion.AXI4,
                 latency=1,
                 addr_depth: Optional[int] = 8,
                 data_depth: Optional[int] = 64) -> None:
        check_beat_size(data_bytes)
        self.sim = sim
        self.name = name
        self.data_bytes = data_bytes
        self.version = version
        per_channel = latency if isinstance(latency, dict) else {}
        default = 1 if isinstance(latency, dict) else latency
        lat = {role: per_channel.get(role, default)
               for role in ("AR", "AW", "W", "R", "B")}
        self.ar = self._make_channel("AR", lat["AR"], addr_depth)
        self.aw = self._make_channel("AW", lat["AW"], addr_depth)
        self.w = self._make_channel("W", lat["W"], data_depth)
        self.r = self._make_channel("R", lat["R"], data_depth)
        self.b = self._make_channel("B", lat["B"], addr_depth)

    def _make_channel(self, role: str, latency: int,
                      capacity: Optional[int]) -> Channel:
        """Create one channel; subclasses may specialize (e.g. gating).

        Capacity is widened to ``latency + 1`` when needed so that deeper
        pipeline latencies never throttle throughput by themselves.
        """
        if capacity is not None:
            capacity = max(capacity, latency + 1)
        return Channel(self.sim, f"{self.name}.{role}", latency, capacity)

    # ------------------------------------------------------------------

    @property
    def channels(self):
        """The five channels as a tuple (AR, AW, W, R, B)."""
        return (self.ar, self.aw, self.w, self.r, self.b)

    def is_idle(self) -> bool:
        """True when no beat is queued or in flight on any channel."""
        return all(channel.is_idle for channel in self.channels)

    def clear(self) -> None:
        """Drop all in-flight beats (reset helper)."""
        for channel in self.channels:
            channel.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AxiLink({self.name!r}, data_bytes={self.data_bytes}, "
                f"version={self.version.name})")
