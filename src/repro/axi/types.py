"""Core AXI protocol types and constants.

The models in this library follow the AMBA AXI specification (both AXI3 and
AXI4 flavours, as the AXI HyperConnect supports both).  Only the protocol
features the paper exercises are modelled: bursts, IDs, in-order completion,
the five channels, and the handshake semantics.  Out-of-order completion is
intentionally unsupported — the paper notes that today's FPGA SoC memory
controllers serve transactions in-order, and the HyperConnect itself does
not support out-of-order completion.
"""

from __future__ import annotations

import enum

#: Size in bytes of the AXI 4 KiB address boundary that a single burst must
#: never cross (AMBA AXI spec, "address structure").
BOUNDARY_4KB = 4096


class BurstType(enum.Enum):
    """AXI burst type encoding (AxBURST field)."""

    FIXED = 0
    INCR = 1
    WRAP = 2

    def __str__(self) -> str:
        return self.name


class Resp(enum.IntEnum):
    """AXI response encoding (xRESP field).

    The ordering of the values matches the AXI encoding, and the helper
    :meth:`merged_with` implements the "worst response wins" rule used when
    merging the responses of split sub-transactions.
    """

    OKAY = 0
    EXOKAY = 1
    SLVERR = 2
    DECERR = 3

    @property
    def is_error(self) -> bool:
        """True for SLVERR/DECERR."""
        return self in (Resp.SLVERR, Resp.DECERR)

    def merged_with(self, other: "Resp") -> "Resp":
        """Combine two responses, keeping the more severe one.

        Severity order (least to most): OKAY/EXOKAY < SLVERR < DECERR.
        EXOKAY never survives a merge with a non-EXOKAY response because a
        merged transaction is no longer a single exclusive access.
        """
        if self.is_error or other.is_error:
            return max(self, other, key=lambda r: (r.is_error, int(r)))
        if self is Resp.EXOKAY and other is Resp.EXOKAY:
            return Resp.EXOKAY
        return Resp.OKAY


class AxiVersion(enum.Enum):
    """Protocol flavour; constrains the maximum burst length."""

    AXI3 = 3
    AXI4 = 4

    @property
    def max_burst_length(self) -> int:
        """Maximum beats per burst: 16 for AXI3, 256 for AXI4 INCR."""
        return 16 if self is AxiVersion.AXI3 else 256


class ChannelName(enum.Enum):
    """The five AXI channels."""

    AR = "AR"   # read address (master -> slave)
    AW = "AW"   # write address (master -> slave)
    R = "R"     # read data (slave -> master)
    W = "W"     # write data (master -> slave)
    B = "B"     # write response (slave -> master)

    @property
    def is_request(self) -> bool:
        """True for the master-to-slave channels (AR, AW, W)."""
        return self in (ChannelName.AR, ChannelName.AW, ChannelName.W)


#: Legal AxSIZE values: bytes per beat must be a power of two up to 128.
VALID_BEAT_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def check_beat_size(size_bytes: int) -> int:
    """Validate an AxSIZE value (bytes per beat); return it unchanged."""
    if size_bytes not in VALID_BEAT_SIZES:
        raise ValueError(
            f"beat size must be a power of two in {VALID_BEAT_SIZES}, "
            f"got {size_bytes}")
    return size_bytes


def check_burst_length(length: int, version: AxiVersion = AxiVersion.AXI4,
                       burst: BurstType = BurstType.INCR) -> int:
    """Validate a burst length in beats; return it unchanged.

    AXI4 allows up to 256 beats for INCR bursts only; FIXED and WRAP are
    capped at 16 beats in both AXI3 and AXI4.  WRAP lengths must be 2, 4,
    8 or 16.
    """
    if length < 1:
        raise ValueError(f"burst length must be >= 1, got {length}")
    cap = version.max_burst_length if burst is BurstType.INCR else 16
    if length > cap:
        raise ValueError(
            f"burst length {length} exceeds {cap} "
            f"({version.name} {burst.name})")
    if burst is BurstType.WRAP and length not in (2, 4, 8, 16):
        raise ValueError(f"WRAP burst length must be 2/4/8/16, got {length}")
    return length
