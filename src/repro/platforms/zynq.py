"""Platform descriptions of the two evaluation boards.

The paper implements the HyperConnect on a Xilinx Zynq-7000 (Z-7020) and a
Zynq UltraScale+ (ZCU102), reporting detailed results for the latter.
These records collect the per-platform parameters the simulation models
need: PL clock, FPGA-PS port width, memory-subsystem timing, and the
programmable-logic resource totals used as denominators in Table I.

DRAM latency calibration: the ZCU102 read latency (37 PL cycles from
command to first data beat through the FPGA-PS port and DDR4 controller)
is the value at which the model reproduces the paper's Fig. 3(b)
improvement ratios (~28 % single-word, ~25 % 16-beat) given the measured
interconnect latencies; it is consistent with published Zynq US+ HP-port
read-latency measurements (100-250 ns).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.dram import DramTiming


@dataclass(frozen=True)
class ResourceBudget:
    """Programmable-logic resource totals of a device."""

    lut: int
    ff: int
    bram: int
    dsp: int


@dataclass(frozen=True)
class Platform:
    """Static description of one FPGA SoC evaluation platform."""

    name: str
    family: str
    pl_clock_hz: float
    #: data width of the FPGA-PS high-performance slave ports, bytes
    hp_data_bytes: int
    dram: DramTiming
    resources: ResourceBudget

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Peak streaming bandwidth of one HP port (1 beat/cycle)."""
        return self.pl_clock_hz * self.hp_data_bytes

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert PL cycles to seconds."""
        return cycles / self.pl_clock_hz


#: Xilinx Zynq-7000 SoC, XC7Z020 (e.g. ZedBoard / Pynq-Z1 class device).
ZYNQ_7020 = Platform(
    name="Zynq-7020",
    family="Zynq-7000",
    pl_clock_hz=100e6,
    hp_data_bytes=8,
    dram=DramTiming(read_latency=30, write_latency=10, resp_latency=4),
    resources=ResourceBudget(lut=53_200, ff=106_400, bram=140, dsp=220),
)

#: Xilinx Zynq UltraScale+ ZCU102 (XCZU9EG) — the platform of Table I and
#: all reported figures.
ZCU102 = Platform(
    name="ZCU102",
    family="Zynq-UltraScale+",
    pl_clock_hz=150e6,
    hp_data_bytes=16,
    dram=DramTiming(read_latency=37, write_latency=12, resp_latency=4),
    resources=ResourceBudget(lut=274_080, ff=548_160, bram=912, dsp=2_520),
)

PLATFORMS = {platform.name: platform for platform in (ZYNQ_7020, ZCU102)}
