"""FPGA SoC platform descriptions (Zynq-7020, ZCU102)."""

from .zynq import PLATFORMS, ZCU102, ZYNQ_7020, Platform, ResourceBudget

__all__ = ["PLATFORMS", "ZCU102", "ZYNQ_7020", "Platform", "ResourceBudget"]
