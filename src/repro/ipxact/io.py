"""File-level IP-XACT helpers."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .component import IpxactComponent


def write_component(component: IpxactComponent,
                    path: Union[str, Path]) -> Path:
    """Write a component document to ``path``; returns the path."""
    path = Path(path)
    path.write_text('<?xml version="1.0" encoding="UTF-8"?>\n'
                    + component.to_xml(), encoding="utf-8")
    return path


def read_component(path: Union[str, Path]) -> IpxactComponent:
    """Read a component document from ``path``."""
    text = Path(path).read_text(encoding="utf-8")
    return IpxactComponent.from_xml(text)
