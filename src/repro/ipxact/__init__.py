"""Minimal IP-XACT (IEEE 1685) packaging support."""

from .component import (
    BusInterface,
    IpxactComponent,
    Vlnv,
    accelerator_component,
    hyperconnect_component,
)
from .io import read_component, write_component

__all__ = [
    "BusInterface",
    "IpxactComponent",
    "Vlnv",
    "accelerator_component",
    "hyperconnect_component",
    "read_component",
    "write_component",
]
