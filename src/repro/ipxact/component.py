"""Minimal IP-XACT (IEEE 1685) component descriptions.

The paper exports the HyperConnect "following the IP-XACT standard, which
makes it compatible with several other commercial platforms" and assumes
HAs are delivered to the system integrator as IP-XACT packages.  This
module implements the subset the integration flow needs: the component
VLNV (vendor / library / name / version), its AXI bus interfaces, and its
configuration parameters, with XML round-tripping.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List

from ..sim.errors import ConfigurationError

#: namespace used for exported documents (IP-XACT 2014 flavour)
IPXACT_NS = "http://www.accellera.org/XMLSchema/IPXACT/1685-2014"


@dataclass(frozen=True)
class Vlnv:
    """Vendor-Library-Name-Version identifier of an IP."""

    vendor: str
    library: str
    name: str
    version: str

    def __str__(self) -> str:
        return f"{self.vendor}:{self.library}:{self.name}:{self.version}"


@dataclass(frozen=True)
class BusInterface:
    """One AXI bus interface of a component."""

    name: str
    mode: str                 # "master" or "slave"
    protocol: str = "AXI4"    # AXI3 / AXI4 / AXI4-Lite
    data_width_bits: int = 128

    def __post_init__(self) -> None:
        if self.mode not in ("master", "slave"):
            raise ConfigurationError(
                f"bus interface mode must be master/slave, got {self.mode!r}")
        if self.protocol not in ("AXI3", "AXI4", "AXI4-Lite"):
            raise ConfigurationError(
                f"unsupported protocol {self.protocol!r}")


@dataclass
class IpxactComponent:
    """A packaged IP as the system integrator receives it."""

    vlnv: Vlnv
    interfaces: List[BusInterface] = field(default_factory=list)
    parameters: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    # ------------------------------------------------------------------

    def interface(self, name: str) -> BusInterface:
        """Look up an interface by name."""
        for item in self.interfaces:
            if item.name == name:
                return item
        raise ConfigurationError(
            f"{self.vlnv}: no bus interface named {name!r}")

    def masters(self) -> List[BusInterface]:
        """The component's AXI master interfaces."""
        return [i for i in self.interfaces if i.mode == "master"]

    def slaves(self) -> List[BusInterface]:
        """The component's AXI slave interfaces."""
        return [i for i in self.interfaces if i.mode == "slave"]

    # ------------------------------------------------------------------
    # XML round-trip
    # ------------------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize to an IP-XACT component document."""
        root = ET.Element("{%s}component" % IPXACT_NS)
        for tag, value in (("vendor", self.vlnv.vendor),
                           ("library", self.vlnv.library),
                           ("name", self.vlnv.name),
                           ("version", self.vlnv.version)):
            ET.SubElement(root, "{%s}%s" % (IPXACT_NS, tag)).text = value
        if self.description:
            ET.SubElement(root,
                          "{%s}description" % IPXACT_NS
                          ).text = self.description
        bus_parent = ET.SubElement(root, "{%s}busInterfaces" % IPXACT_NS)
        for interface in self.interfaces:
            node = ET.SubElement(bus_parent,
                                 "{%s}busInterface" % IPXACT_NS)
            ET.SubElement(node, "{%s}name" % IPXACT_NS).text = interface.name
            ET.SubElement(node, "{%s}%s" % (IPXACT_NS, interface.mode))
            bt = ET.SubElement(node, "{%s}busType" % IPXACT_NS)
            bt.set("name", interface.protocol)
            width = ET.SubElement(node, "{%s}bitsInLau" % IPXACT_NS)
            width.text = str(interface.data_width_bits)
        params = ET.SubElement(root, "{%s}parameters" % IPXACT_NS)
        for key in sorted(self.parameters):
            node = ET.SubElement(params, "{%s}parameter" % IPXACT_NS)
            ET.SubElement(node, "{%s}name" % IPXACT_NS).text = key
            ET.SubElement(node,
                          "{%s}value" % IPXACT_NS).text = self.parameters[key]
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "IpxactComponent":
        """Parse a document produced by :meth:`to_xml`."""
        ns = {"ipxact": IPXACT_NS}
        root = ET.fromstring(text)

        def _text(parent, tag: str, default: str = "") -> str:
            node = parent.find(f"ipxact:{tag}", ns)
            return node.text if node is not None and node.text else default

        vlnv = Vlnv(_text(root, "vendor"), _text(root, "library"),
                    _text(root, "name"), _text(root, "version"))
        interfaces: List[BusInterface] = []
        for node in root.findall(
                "ipxact:busInterfaces/ipxact:busInterface", ns):
            mode = ("master"
                    if node.find("ipxact:master", ns) is not None
                    else "slave")
            bus_type = node.find("ipxact:busType", ns)
            protocol = bus_type.get("name") if bus_type is not None else "AXI4"
            interfaces.append(BusInterface(
                name=_text(node, "name"),
                mode=mode,
                protocol=protocol,
                data_width_bits=int(_text(node, "bitsInLau", "128")),
            ))
        parameters = {
            _text(node, "name"): _text(node, "value")
            for node in root.findall(
                "ipxact:parameters/ipxact:parameter", ns)
        }
        return cls(vlnv=vlnv, interfaces=interfaces, parameters=parameters,
                   description=_text(root, "description"))


# ----------------------------------------------------------------------
# factories for the IPs of the considered framework
# ----------------------------------------------------------------------

def hyperconnect_component(n_ports: int,
                           data_width_bits: int = 128) -> IpxactComponent:
    """IP-XACT description of an N-port AXI HyperConnect."""
    interfaces = [
        BusInterface(f"S{index:02d}_AXI", "slave",
                     data_width_bits=data_width_bits)
        for index in range(n_ports)
    ]
    interfaces.append(BusInterface("M00_AXI", "master",
                                   data_width_bits=data_width_bits))
    interfaces.append(BusInterface("S_AXI_CTRL", "slave",
                                   protocol="AXI4-Lite",
                                   data_width_bits=32))
    return IpxactComponent(
        vlnv=Vlnv("retis", "interconnect", "axi_hyperconnect", "1.0"),
        interfaces=interfaces,
        parameters={"N_PORTS": str(n_ports),
                    "DATA_WIDTH": str(data_width_bits)},
        description="Predictable hypervisor-level AXI interconnect",
    )


def accelerator_component(name: str, vendor: str = "vendor",
                          data_width_bits: int = 128) -> IpxactComponent:
    """IP-XACT description of a standard HA (master + control slave)."""
    return IpxactComponent(
        vlnv=Vlnv(vendor, "accelerators", name, "1.0"),
        interfaces=[
            BusInterface("M_AXI", "master",
                         data_width_bits=data_width_bits),
            BusInterface("S_AXI_CTRL", "slave", protocol="AXI4-Lite",
                         data_width_bits=32),
        ],
        description=f"hardware accelerator {name}",
    )
