"""In-order DRAM controller model.

The paper relies on one property of real FPGA SoC memory subsystems
(UG585/UG1085): transactions that enter the PS through an FPGA-PS port are
served **in order**.  This model reproduces that behaviour with a unified
command queue, a single shared data bus (one beat per cycle), and pipelined
command processing: while one burst streams its data, the access latency of
the next command overlaps — so back-to-back requests sustain full bus
bandwidth, but an isolated request pays the full access latency.

Timing is configurable through :class:`DramTiming`; an optional bank/row
model adds row-hit/row-miss latency variation for studies that need it
(disabled by default to keep the headline experiments deterministic).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..axi.burst import beat_addresses
from ..axi.payloads import AddrBeat, DataBeat, RespBeat, WriteBeat
from ..axi.port import AxiLink
from ..axi.types import BurstType, Resp
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.stats import OnlineStats
from .store import MemoryAccessFault, MemoryStore


@dataclass(frozen=True)
class DramTiming:
    """Latency parameters of the memory subsystem, in PL clock cycles.

    ``read_latency`` is the delay from a read command reaching the
    controller to its first data beat (covers FPGA-PS port traversal,
    controller queueing and CAS); calibrated in :mod:`repro.platforms` so
    the paper's Fig. 3(b) improvement percentages emerge.
    """

    read_latency: int = 37
    write_latency: int = 12
    resp_latency: int = 4
    #: optional row-buffer model: extra cycles on a row miss.  ``None``
    #: disables the bank/row model entirely.
    row_miss_penalty: Optional[int] = None
    row_bits: int = 13
    bank_bits: int = 2

    def __post_init__(self) -> None:
        if min(self.read_latency, self.write_latency, self.resp_latency) < 1:
            raise ConfigurationError("DRAM latencies must be >= 1 cycle")


@dataclass(slots=True)
class _Command:
    """One queued burst command."""

    is_read: bool
    beat: AddrBeat
    arrival: int
    beats_left: int
    data_start: Optional[int] = None
    address_cursor: int = 0
    #: per-beat addresses for non-INCR bursts (FIXED repeats, WRAP wraps);
    #: None for the common INCR case, where the cursor just increments
    addresses: Optional[list] = None
    beat_index: int = 0
    #: a beat of this command faulted in the backing store; the write
    #: response (and subsequent read beats) carry DECERR instead of OKAY
    error: bool = False

    def current_address(self) -> int:
        if self.addresses is not None:
            return self.addresses[self.beat_index]
        return self.address_cursor

    def step_address(self) -> None:
        self.beat_index += 1
        self.address_cursor += self.beat.size_bytes


class MemorySubsystem(Component):
    """The PS-side slave: FPGA-PS interface + DRAM controller + DRAM.

    Parameters
    ----------
    sim, name:
        Simulation bookkeeping.
    link:
        The AXI link whose slave side this component serves (it pops
        AR/AW/W and pushes R/B).
    timing:
        :class:`DramTiming` latency parameters.
    store:
        Optional :class:`MemoryStore` for functional data; when ``None``
        the model is timing-only (data fields stay ``None``), which is much
        faster for long bandwidth experiments.
    command_depth:
        Capacity of the controller's command queue.  When it is full the
        controller stops accepting AR/AW beats, back-pressuring the
        interconnect — this is where upstream arbitration contention
        becomes observable.
    """

    def __init__(self, sim, name: str, link: AxiLink,
                 timing: DramTiming = DramTiming(),
                 store: Optional[MemoryStore] = None,
                 command_depth: int = 16) -> None:
        super().__init__(sim, name)
        if command_depth < 1:
            raise ConfigurationError("command_depth must be >= 1")
        self.link = link
        self.timing = timing
        self.store = store
        self.command_depth = command_depth
        self._commands: Deque[_Command] = deque()
        self._current: Optional[_Command] = None
        self._write_beats: Deque[WriteBeat] = deque()
        self._pending_b: List[Tuple[int, RespBeat]] = []
        self._bus_free_at = 0
        #: open row per bank (bank/row model, when enabled)
        self._open_rows = {}
        self.queue_delay = OnlineStats()
        self.reads_served = 0
        self.writes_served = 0
        self.beats_served = 0
        #: beats that faulted in the backing store and answered DECERR
        self.decode_errors = 0

    # ------------------------------------------------------------------

    def _row_penalty(self, address: int) -> int:
        if self.timing.row_miss_penalty is None:
            return 0
        t = self.timing
        bank = (address >> 12) & ((1 << t.bank_bits) - 1)
        row = address >> (12 + t.bank_bits)
        if self._open_rows.get(bank) == row:
            return 0
        self._open_rows[bank] = row
        return t.row_miss_penalty

    def _start_command(self, command: _Command, cycle: int) -> None:
        base = (self.timing.read_latency if command.is_read
                else self.timing.write_latency)
        base += self._row_penalty(command.beat.address)
        command.data_start = max(command.arrival + base, self._bus_free_at)
        command.address_cursor = command.beat.address
        if command.beat.burst is not BurstType.INCR:
            command.addresses = beat_addresses(
                command.beat.address, command.beat.length,
                command.beat.size_bytes, command.beat.burst)
        self.queue_delay.add(cycle - command.arrival)

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        link = self.link
        commands = self._commands
        # 1. ingest at most one address beat per channel per cycle while
        #    the command queue has room (AR before AW: a fixed,
        #    documented tie-break for determinism).  The channel-head
        #    visibility guards are inlined: this tick runs every cycle of
        #    every bandwidth experiment.
        if len(commands) < self.command_depth:
            queue = link.ar._queue
            if queue and queue[0][0] <= cycle:
                beat = link.ar.pop()
                commands.append(_Command(True, beat, cycle, beat.length))
            if len(commands) < self.command_depth:
                queue = link.aw._queue
                if queue and queue[0][0] <= cycle:
                    beat = link.aw.pop()
                    commands.append(
                        _Command(False, beat, cycle, beat.length))
        # 2. ingest one write-data beat per cycle
        queue = link.w._queue
        if queue and queue[0][0] <= cycle:
            self._write_beats.append(link.w.pop())
        # 3. pick the next command when idle
        current = self._current
        if current is None and commands:
            current = self._current = self._take_next_command(cycle)
            self._start_command(current, cycle)
        # 4. stream one data beat of the current command
        if current is not None:
            self._advance(current, cycle)
        # 5. emit one due write response per cycle
        pending = self._pending_b
        if pending and pending[0][0] <= cycle:
            if link.b.can_push():
                __, resp = pending.pop(0)
                link.b.push(resp)

    def is_quiescent(self, cycle: int) -> bool:
        """True when no tick step could act: nothing to ingest, no command
        to pick, the current command still in its access-latency window (or
        blocked on backpressure/missing write data), and no due response.

        Mirrors :meth:`tick` step by step; the W-ingest check also covers
        the write-advance case because a W beat poppable this cycle makes
        the component non-quiescent before ``_advance`` is considered.
        """
        link = self.link
        if (len(self._commands) < self.command_depth
                and (link.ar.can_pop() or link.aw.can_pop())):
            return False
        if link.w.can_pop():
            return False
        command = self._current
        if command is None:
            if self._commands:
                return False
        elif cycle >= command.data_start:
            if command.is_read:
                if link.r.can_push():
                    return False
            elif self._write_beats:
                return False
        if (self._pending_b and self._pending_b[0][0] <= cycle
                and link.b.can_push()):
            return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Access-latency expiry and due write responses are the internal
        timers that can wake an otherwise frozen memory model."""
        horizon: Optional[int] = None
        command = self._current
        if command is not None and cycle < command.data_start:
            horizon = command.data_start
        if self._pending_b:
            due = self._pending_b[0][0]
            if due > cycle and (horizon is None or due < horizon):
                horizon = due
        return horizon

    def wake_channels(self) -> list:
        """All quiescence inputs are states of the served link's channels
        (poppable AR/AW/W, pushable R/B); the access-latency window and
        due responses are internal timers covered by
        :meth:`next_event_cycle`."""
        link = self.link
        return [link.ar, link.aw, link.w, link.r, link.b]

    # ------------------------------------------------------------------

    def _take_next_command(self, cycle: int) -> _Command:
        """Select and remove the command to serve next.

        The base controller is strictly in-order (FIFO), which is what
        today's FPGA SoC memory controllers implement and what the paper's
        system assumes.  :class:`OutOfOrderMemory` overrides this.
        """
        return self._commands.popleft()

    # ------------------------------------------------------------------

    def _advance(self, command: _Command, cycle: int) -> None:
        if cycle < command.data_start:
            return
        beat_bytes = command.beat.size_bytes
        if command.is_read:
            r = self.link.r
            if r.capacity is not None and r._occupancy >= r.capacity:
                return  # backpressured: the bus slot is lost
            data = None
            resp = Resp.OKAY
            if self.store is not None:
                try:
                    data = self.store.read(command.current_address(),
                                           beat_bytes)
                except MemoryAccessFault:
                    # address decode / stage-2 miss: the beat answers
                    # DECERR with no data; the exception never escapes
                    # the kernel
                    command.error = True
                    self.decode_errors += 1
                    resp = Resp.DECERR
            command.beats_left -= 1
            r.push(DataBeat(
                last=command.beats_left == 0,
                txn_id=command.beat.txn_id,
                data=data,
                resp=resp,
                addr_beat=command.beat,
            ))
        else:
            if not self._write_beats:
                return  # write data not here yet
            wbeat = self._write_beats.popleft()
            if self.store is not None and wbeat.data is not None:
                try:
                    self.store.write(command.current_address(), wbeat.data)
                except MemoryAccessFault:
                    # drop the faulting beat; the burst's single write
                    # response reports DECERR for the whole transaction
                    command.error = True
                    self.decode_errors += 1
            command.beats_left -= 1
            if command.beats_left == 0:
                self._pending_b.append((
                    cycle + self.timing.resp_latency,
                    RespBeat(txn_id=command.beat.txn_id,
                             resp=(Resp.DECERR if command.error
                                   else Resp.OKAY),
                             addr_beat=command.beat),
                ))
        # inlined step_address (one call per served beat otherwise)
        command.beat_index += 1
        command.address_cursor += beat_bytes
        self.beats_served += 1
        if command.beats_left == 0:
            if command.is_read:
                self.reads_served += 1
            else:
                self.writes_served += 1
            self._bus_free_at = cycle + 1
            self._current = None

    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Commands queued but not yet started."""
        return len(self._commands)

    def idle(self) -> bool:
        """True when no command is queued, active, or awaiting response."""
        return (self._current is None and not self._commands
                and not self._pending_b and not self._write_beats)
