"""Sparse virtualized address space: per-domain stage-2 translation.

Each tenant domain sees a sparse guest-physical address space made of
region-mapped windows.  A :class:`Stage2Table` holds the domain's
windows (guest base -> host base, non-overlapping on the guest side)
and translates guest accesses to host-physical addresses in the shared
:class:`~repro.memory.store.MemoryStore`.  An access that misses every
window — or straddles a window edge — raises
:class:`~repro.memory.store.TranslationFault`, which the data-path
adapters surface as an AXI DECERR response rather than a Python
exception escaping the kernel.

:class:`VirtualizedStore` is the store-compatible facade: the same
``read``/``write``/``fill_pattern`` surface as ``MemoryStore``, with
every address run through the table first.  The hypervisor hands one to
each guest so tenant software is confined to its grants by construction.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .store import MemoryStore, TranslationFault


@dataclass(frozen=True)
class Stage2Window:
    """One region mapping: ``[guest_base, guest_base + size)`` -> host."""

    guest_base: int
    size: int
    host_base: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("window size must be positive")
        if self.guest_base < 0 or self.host_base < 0:
            raise ValueError("window bases must be non-negative")

    @property
    def guest_end(self) -> int:
        return self.guest_base + self.size

    def contains(self, address: int, count: int = 1) -> bool:
        return (self.guest_base <= address
                and address + count <= self.guest_end)

    def translate(self, address: int) -> int:
        return self.host_base + (address - self.guest_base)


class Stage2Table:
    """Sorted, non-overlapping guest windows for one domain.

    Lookup is a binary search over window bases, so a domain with many
    sparse grants still translates in O(log n).  The table counts
    translations and faults for the isolation oracles.
    """

    def __init__(self, name: str = "stage2") -> None:
        self.name = name
        self._windows: List[Stage2Window] = []
        self._bases: List[int] = []
        self.translations = 0
        self.faults = 0

    # ------------------------------------------------------------------

    def map(self, guest_base: int, size: int,
            host_base: int) -> Stage2Window:
        """Install a window; rejects guest-side overlap."""
        window = Stage2Window(guest_base, size, host_base)
        index = bisect_right(self._bases, guest_base)
        if index > 0:
            prev = self._windows[index - 1]
            if prev.guest_end > guest_base:
                raise ValueError(
                    f"{self.name}: window [0x{guest_base:x}, "
                    f"0x{window.guest_end:x}) overlaps "
                    f"[0x{prev.guest_base:x}, 0x{prev.guest_end:x})")
        if index < len(self._windows):
            nxt = self._windows[index]
            if window.guest_end > nxt.guest_base:
                raise ValueError(
                    f"{self.name}: window [0x{guest_base:x}, "
                    f"0x{window.guest_end:x}) overlaps "
                    f"[0x{nxt.guest_base:x}, 0x{nxt.guest_end:x})")
        self._windows.insert(index, window)
        self._bases.insert(index, guest_base)
        return window

    def unmap(self, guest_base: int) -> Stage2Window:
        """Remove the window starting at ``guest_base``."""
        index = bisect_right(self._bases, guest_base) - 1
        if index < 0 or self._windows[index].guest_base != guest_base:
            raise ValueError(
                f"{self.name}: no window at 0x{guest_base:x}")
        self._bases.pop(index)
        return self._windows.pop(index)

    def window_for(self, address: int) -> Optional[Stage2Window]:
        index = bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        window = self._windows[index]
        return window if address < window.guest_end else None

    def window_for_host(self, host_base: int) -> Optional[Stage2Window]:
        """The window whose *host* range starts at ``host_base``.

        Grant teardown works in physical terms (the hypervisor revokes a
        ``MemoryRegion``, i.e. a host range), so it needs the reverse
        lookup; windows are keyed by guest base, so this is a linear
        scan over the (small, per-domain) window list.
        """
        for window in self._windows:
            if window.host_base == host_base:
                return window
        return None

    def translate(self, address: int, count: int = 1) -> int:
        """Guest -> host for ``count`` contiguous bytes.

        Raises :class:`TranslationFault` when the access misses every
        window or straddles a window edge (region grants are physically
        contiguous, so a legal access never crosses windows).
        """
        window = self.window_for(address)
        if window is None or not window.contains(address, max(count, 1)):
            self.faults += 1
            raise TranslationFault(
                f"{self.name}: no stage-2 mapping for guest "
                f"[0x{address:x}, 0x{address + count:x})",
                address=address, count=count)
        self.translations += 1
        return window.translate(address)

    # ------------------------------------------------------------------

    @property
    def windows(self) -> Tuple[Stage2Window, ...]:
        return tuple(self._windows)

    @property
    def mapped_bytes(self) -> int:
        return sum(w.size for w in self._windows)


class VirtualizedStore:
    """A guest's view of memory: every access translated through stage 2.

    Drop-in for :class:`MemoryStore` at the call sites that matter
    (``read``/``write``/``fill_pattern``), so a memory model or guest
    driver can be pointed at a tenant's sparse address space unchanged.
    """

    def __init__(self, store: MemoryStore, table: Stage2Table) -> None:
        self.store = store
        self.table = table

    def read(self, address: int, count: int) -> bytes:
        return self.store.read(self.table.translate(address, count), count)

    def write(self, address: int, data: bytes) -> None:
        host = self.table.translate(address, len(data))
        self.store.write(host, data)

    def fill_pattern(self, address: int, count: int, seed: int = 0) -> None:
        host = self.table.translate(address, count)
        self.store.fill_pattern(host, count, seed)

    @property
    def size(self) -> int:
        """Span of the sparse guest address space (end of last window)."""
        windows = self.table.windows
        return windows[-1].guest_end if windows else 0

    @property
    def mapped_bytes(self) -> int:
        return self.table.mapped_bytes
