"""FPGA-PS interface helpers.

:class:`AxiPipe` is a transparent five-channel repeater: it forwards every
beat from one link to another at one beat per channel per cycle.  Each
traversed link contributes its channel latency, so a pipe between two
unit-latency links models one extra pipeline stage in both directions.

It is used to model the FPGA-PS port (a registered boundary between the
fabric and the PS) and, in tests, to build arbitrary pipeline depths.
"""

from __future__ import annotations

from ..axi.port import AxiLink
from ..sim.component import Component


class AxiPipe(Component):
    """Transparent pipeline stage between two AXI links.

    ``upstream`` faces the master (the pipe pops its AR/AW/W and pushes its
    R/B); ``downstream`` faces the slave.
    """

    def __init__(self, sim, name: str, upstream: AxiLink,
                 downstream: AxiLink) -> None:
        super().__init__(sim, name)
        self.upstream = upstream
        self.downstream = downstream
        # (source, destination) pairs in forwarding direction
        self._forward = (
            (upstream.ar, downstream.ar),
            (upstream.aw, downstream.aw),
            (upstream.w, downstream.w),
            (downstream.r, upstream.r),
            (downstream.b, upstream.b),
        )

    def tick(self, cycle: int) -> None:
        for source, destination in self._forward:
            if source.can_pop() and destination.can_push():
                destination.push(source.pop())

    def is_quiescent(self, cycle: int) -> bool:
        """A pipe is stateless: it only acts when some pair can forward."""
        for source, destination in self._forward:
            if source.can_pop() and destination.can_push():
                return False
        return True

    def wake_channels(self) -> list:
        """Stateless forwarder: both ends of every forwarding pair."""
        channels = []
        for source, destination in self._forward:
            channels.append(source)
            channels.append(destination)
        return channels


class FpgaPsPort(AxiPipe):
    """The FPGA-PS slave interface of the SoC.

    Functionally a registered boundary; kept as its own class so that
    system builders and diagrams can name it, and so that platform models
    can attach port-specific width or counting logic later.
    """

    def __init__(self, sim, name: str, fabric_side: AxiLink,
                 ps_side: AxiLink) -> None:
        super().__init__(sim, name, upstream=fabric_side,
                         downstream=ps_side)
