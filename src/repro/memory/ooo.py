"""Out-of-order memory controller model (future platforms).

The paper notes that "today's FPGA SoC platforms do not implement
out-of-order transactions at the memory controller", and leaves
out-of-order support in the HyperConnect as future work.  This module
provides the *future platform* side of that story: a controller that may
serve read commands out of arrival order (FR-FCFS style — a queued read
hitting an open DRAM row may overtake older row-miss commands), which is
what high-end memory controllers do to recover row-buffer locality.

Reordering rules (all required for AXI correctness):

* only **reads** are reordered; writes stay in arrival order among
  themselves because their W data arrives on the link in AW order;
* a read never overtakes another command with the **same AXI ID** (the
  AXI per-ID ordering rule);
* the candidate window is bounded (``lookahead``), as in real schedulers.

An interconnect built for in-order platforms mis-routes data on such a
controller; pair this model with
:class:`repro.hyperconnect.reorder.InOrderAdapter` (the paper's
future-work feature) to restore the in-order contract.
"""

from __future__ import annotations

from .dram import MemorySubsystem, _Command


class OutOfOrderMemory(MemorySubsystem):
    """FR-FCFS-like controller: row-hit reads may overtake row misses.

    Parameters (beyond :class:`MemorySubsystem`)
    --------------------------------------------
    lookahead:
        How many queued commands the scheduler inspects when picking the
        next one.
    """

    def __init__(self, *args, lookahead: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = lookahead
        #: commands served ahead of an older queued command
        self.reordered_served = 0

    # ------------------------------------------------------------------

    def _row_is_open(self, address: int) -> bool:
        """Would this address hit the currently open row of its bank?"""
        if self.timing.row_miss_penalty is None:
            return False
        bank = (address >> 12) & ((1 << self.timing.bank_bits) - 1)
        row = address >> (12 + self.timing.bank_bits)
        return self._open_rows.get(bank) == row

    def _take_next_command(self, cycle: int) -> _Command:
        window = min(self.lookahead, len(self._commands))
        head = self._commands[0]
        blocked_ids = {head.beat.txn_id} if not head.is_read else set()
        chosen = 0
        for index in range(window):
            candidate = self._commands[index]
            if index == 0:
                if self._row_is_open(candidate.beat.address):
                    break  # head is already a hit; nothing to gain
                blocked_ids.add(candidate.beat.txn_id)
                continue
            if not candidate.is_read:
                # writes are a reorder barrier for same-ID and for other
                # writes; stop promoting past this point entirely to keep
                # the W-data FIFO aligned
                break
            if candidate.beat.txn_id in blocked_ids:
                blocked_ids.add(candidate.beat.txn_id)
                continue
            if self._row_is_open(candidate.beat.address):
                chosen = index
                break
            blocked_ids.add(candidate.beat.txn_id)
        if chosen == 0:
            return self._commands.popleft()
        self.reordered_served += 1
        command = self._commands[chosen]
        del self._commands[chosen]
        return command
