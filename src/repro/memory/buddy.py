"""Buddy allocator for physical region grants.

The hypervisor carves the physical DRAM window into power-of-two region
grants, one or more per tenant domain.  A buddy allocator keeps the
carving deterministic (lowest-address block first), keeps fragmentation
bounded, and makes free/coalesce cheap enough to run inside fault
campaigns that create and destroy hundreds of domains.

The allocator is pure bookkeeping over ``[base, base + size)`` — it
never touches a :class:`~repro.memory.store.MemoryStore`; callers pair
a grant with a store (or a stage-2 window) themselves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _round_up_pow2(value: int) -> int:
    return 1 << (value - 1).bit_length()


class AllocationError(Exception):
    """The allocator cannot satisfy a request (exhausted or invalid)."""


class BuddyAllocator:
    """Deterministic power-of-two buddy allocator.

    Parameters
    ----------
    base:
        Start address of the managed physical range.  Must be aligned to
        ``size``.
    size:
        Total managed bytes; must be a power of two.
    min_block:
        Smallest grantable block (default 4 KiB, one store page).
        Requests are rounded up to a power-of-two multiple of this.
    """

    def __init__(self, base: int, size: int, min_block: int = 4096) -> None:
        if not _is_pow2(size):
            raise AllocationError(f"size 0x{size:x} is not a power of two")
        if not _is_pow2(min_block) or min_block > size:
            raise AllocationError(
                f"min_block 0x{min_block:x} must be a power of two "
                f"<= size 0x{size:x}")
        if base % size:
            raise AllocationError(
                f"base 0x{base:x} is not aligned to size 0x{size:x}")
        self.base = base
        self.size = size
        self.min_block = min_block
        # free lists keyed by block size; each list kept sorted so the
        # lowest-address candidate is always granted first (determinism)
        self._free: Dict[int, List[int]] = {size: [base]}
        #: live grants: address -> block size
        self._allocated: Dict[int, int] = {}
        self.allocations = 0
        self.frees = 0

    # ------------------------------------------------------------------

    def _block_size_for(self, request: int) -> int:
        if request <= 0:
            raise AllocationError("allocation size must be positive")
        return max(self.min_block, _round_up_pow2(request))

    def alloc(self, size: int) -> int:
        """Grant a block of at least ``size`` bytes; return its address."""
        block = self._block_size_for(size)
        if block > self.size:
            raise AllocationError(
                f"request 0x{size:x} exceeds pool size 0x{self.size:x}")
        # find the smallest free block that fits
        candidate = block
        while candidate <= self.size and not self._free.get(candidate):
            candidate <<= 1
        if candidate > self.size:
            raise AllocationError(
                f"out of memory: no free block for 0x{block:x} bytes")
        address = self._free[candidate].pop(0)
        # split down to the requested size, returning upper halves
        while candidate > block:
            candidate >>= 1
            buddy = address + candidate
            self._free.setdefault(candidate, []).append(buddy)
            self._free[candidate].sort()
        self._allocated[address] = block
        self.allocations += 1
        return address

    def reserve(self, base: int, size: int) -> List[int]:
        """Claim the exact range ``[base, base + size)`` from the pool.

        Used for pinned placements (``adopt_region``-style grants and
        same-range re-grants after a revocation) where the caller — not
        the allocator — chose the address.  The range is decomposed into
        maximal naturally-aligned power-of-two blocks, each of which
        becomes an active grant; returns the block addresses in
        ascending order.  Freeing every returned address coalesces the
        range back exactly as :meth:`free` would.

        Raises :class:`AllocationError` (leaving the pool untouched) if
        the range is misaligned, out of bounds, or any part of it is
        already granted.
        """
        if size <= 0:
            raise AllocationError("reservation size must be positive")
        if base % self.min_block or size % self.min_block:
            raise AllocationError(
                f"reservation 0x{base:x}+0x{size:x} is not a multiple of "
                f"min_block 0x{self.min_block:x}")
        if base < self.base or base + size > self.base + self.size:
            raise AllocationError(
                f"reservation 0x{base:x}+0x{size:x} outside pool "
                f"[0x{self.base:x}, 0x{self.base + self.size:x})")
        blocks: List[Tuple[int, int]] = []
        addr, remaining = base, size
        while remaining:
            offset = addr - self.base
            align = offset & -offset if offset else self.size
            block = min(align, 1 << (remaining.bit_length() - 1))
            blocks.append((addr, block))
            addr += block
            remaining -= block
        claimed: List[int] = []
        try:
            for addr, block in blocks:
                self._claim(addr, block)
                claimed.append(addr)
        except AllocationError:
            for addr in claimed:
                self.free(addr)
            # rollback is not a caller-visible alloc/free pair
            self.frees -= len(claimed)
            self.allocations -= len(claimed)
            raise
        return claimed

    def _claim(self, address: int, block: int) -> None:
        """Split the free pool to grant exactly ``[address, addr+block)``."""
        holder = None
        for cand_size in sorted(self._free):
            for cand in self._free[cand_size]:
                if cand <= address and address + block <= cand + cand_size:
                    holder = (cand, cand_size)
                    break
            if holder:
                break
        if holder is None:
            raise AllocationError(
                f"range 0x{address:x}+0x{block:x} is not free")
        start, size = holder
        self._free[size].remove(start)
        while size > block:
            half = size >> 1
            if address >= start + half:
                self._free.setdefault(half, []).append(start)
                start += half
            else:
                self._free.setdefault(half, []).append(start + half)
            self._free[half].sort()
            size = half
        self._allocated[start] = block
        self.allocations += 1

    def is_granted(self, address: int) -> bool:
        """True when ``address`` is the base of an active grant."""
        return address in self._allocated

    def free(self, address: int) -> None:
        """Release a grant and coalesce with free buddies."""
        block = self._allocated.pop(address, None)
        if block is None:
            raise AllocationError(f"0x{address:x} is not an active grant")
        self.frees += 1
        while block < self.size:
            offset = address - self.base
            buddy = self.base + (offset ^ block)
            peers = self._free.get(block, [])
            if buddy not in peers:
                break
            peers.remove(buddy)
            address = min(address, buddy)
            block <<= 1
        self._free.setdefault(block, []).append(address)
        self._free[block].sort()

    # ------------------------------------------------------------------

    def grant_size(self, address: int) -> int:
        """Block size of an active grant (KeyError if not granted)."""
        return self._allocated[address]

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self.size - self.allocated_bytes

    @property
    def largest_free_block(self) -> int:
        sizes = [s for s, blocks in self._free.items() if blocks]
        return max(sizes) if sizes else 0

    def stats(self) -> Dict[str, int]:
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "allocated_bytes": self.allocated_bytes,
            "free_bytes": self.free_bytes,
            "largest_free_block": self.largest_free_block,
        }

    def grants(self) -> List[Tuple[int, int]]:
        """Active grants as sorted ``(address, size)`` pairs."""
        return sorted(self._allocated.items())
