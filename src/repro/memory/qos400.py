"""ARM QoS-400-style PS-side traffic regulator.

The paper's Related Work dismisses PS-side QoS blocks: "modern FPGA SoC
platforms integrate specific blocks to manage the QoS in AXI, such as the
ARM QoS-400 ... implemented in the PS of the SoC ... after requests for
transactions issued by different HAs in the FPGA enter the PS through the
FPGA-PS interface, there are no signals to distinguish them.  Therefore,
the QoS-400 does not allow controlling the bus bandwidth provided to each
individual HA."

This model exists to *demonstrate* that claim experimentally: it is a
faithful stand-in for an outstanding-transaction / transaction-rate
regulator at the PS boundary, and — crucially — it sees only what the
real block sees: an undifferentiated merged stream.  The ``port`` field
our simulation carries on beats is deliberately never read.  The
regulator can shape the *aggregate* (rate limiting, outstanding
limiting), but any setting throttles every HA behind the port alike.
"""

from __future__ import annotations

from typing import Optional

from ..axi.port import AxiLink
from ..sim.errors import ConfigurationError
from .psport import AxiPipe


class PsQosRegulator(AxiPipe):
    """Aggregate transaction regulator at the FPGA-PS boundary.

    Implements the two knobs such blocks offer:

    * ``max_outstanding`` — cap on address requests in flight past the
      regulator (reads + writes);
    * ``rate_budget`` / ``rate_period`` — token bucket: at most
      ``rate_budget`` transactions forwarded per ``rate_period`` cycles
      (``None`` disables rate limiting).

    Both apply to the merged stream; per-HA control is *impossible* from
    this vantage point, which is the paper's argument for supervising
    traffic on the FPGA side instead.
    """

    def __init__(self, sim, name: str, upstream: AxiLink,
                 downstream: AxiLink,
                 max_outstanding: Optional[int] = None,
                 rate_budget: Optional[int] = None,
                 rate_period: int = 1024) -> None:
        super().__init__(sim, name, upstream, downstream)
        if max_outstanding is not None and max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be >= 1")
        if rate_budget is not None and rate_budget < 1:
            raise ConfigurationError("rate_budget must be >= 1")
        if rate_period < 1:
            raise ConfigurationError("rate_period must be >= 1")
        self.max_outstanding = max_outstanding
        self.rate_budget = rate_budget
        self.rate_period = rate_period
        self._tokens = rate_budget if rate_budget is not None else 0
        self._countdown = rate_period
        self._outstanding = 0
        self.throttled_cycles = 0
        self.forwarded_transactions = 0

    # ------------------------------------------------------------------

    def _may_forward(self) -> bool:
        if (self.max_outstanding is not None
                and self._outstanding >= self.max_outstanding):
            return False
        if self.rate_budget is not None and self._tokens <= 0:
            return False
        return True

    def is_quiescent(self, cycle: int) -> bool:
        """Never quiescent: the token-bucket countdown decrements every
        cycle, so no tick is a no-op (unlike the base pipe's stateless
        forwarding)."""
        return False

    def _account_forward(self) -> None:
        self._outstanding += 1
        self.forwarded_transactions += 1
        if self.rate_budget is not None:
            self._tokens -= 1

    def tick(self, cycle: int) -> None:
        # token-bucket recharge
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.rate_period
            if self.rate_budget is not None:
                self._tokens = self.rate_budget
        # regulated address channels (one beat per channel per cycle)
        throttled = False
        for source, destination in ((self.upstream.ar, self.downstream.ar),
                                    (self.upstream.aw, self.downstream.aw)):
            if source.can_pop() and destination.can_push():
                if self._may_forward():
                    destination.push(source.pop())
                    self._account_forward()
                else:
                    throttled = True
        if throttled:
            self.throttled_cycles += 1
        # data/response channels pass through unregulated
        if self.upstream.w.can_pop() and self.downstream.w.can_push():
            self.downstream.w.push(self.upstream.w.pop())
        if self.downstream.r.can_pop() and self.upstream.r.can_push():
            beat = self.downstream.r.pop()
            if beat.last:
                self._outstanding = max(0, self._outstanding - 1)
            self.upstream.r.push(beat)
        if self.downstream.b.can_pop() and self.upstream.b.can_push():
            self._outstanding = max(0, self._outstanding - 1)
            self.upstream.b.push(self.downstream.b.pop())
