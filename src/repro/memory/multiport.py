"""Multi-port memory subsystem: several FPGA-PS interfaces, one DRAM.

Fig. 1 of the paper shows the real topology: the PS exposes *several*
FPGA-PS slave ports (HP0..HP3 on Zynq devices), all funnelling into the
single DRAM controller.  A system integrator may therefore deploy one
HyperConnect per HP port; isolation then has two layers — per-HA within a
HyperConnect, and per-port at the controller.

:class:`MultiPortMemorySubsystem` models that: it serves N links with
round-robin ingest fairness into one shared, bounded, in-order command
queue and one shared data bus (one beat per cycle — the DRAM bottleneck),
returning data and responses to the link each command arrived on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..axi.payloads import DataBeat, RespBeat, WriteBeat
from ..axi.port import AxiLink
from ..axi.types import Resp
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.stats import OnlineStats
from .dram import DramTiming
from .store import MemoryAccessFault, MemoryStore


class _PortedCommand:
    """One queued burst command, remembering its source port."""

    __slots__ = ("is_read", "beat", "arrival", "beats_left", "data_start",
                 "address_cursor", "port", "error")

    def __init__(self, is_read, beat, arrival, port):
        self.is_read = is_read
        self.beat = beat
        self.arrival = arrival
        self.beats_left = beat.length
        self.data_start = None
        self.address_cursor = beat.address
        self.port = port
        self.error = False


class MultiPortMemorySubsystem(Component):
    """In-order DRAM controller shared by several FPGA-PS ports."""

    def __init__(self, sim, name: str, links: List[AxiLink],
                 timing: DramTiming = DramTiming(),
                 store: Optional[MemoryStore] = None,
                 command_depth: int = 16) -> None:
        super().__init__(sim, name)
        if not links:
            raise ConfigurationError("at least one link required")
        if command_depth < 1:
            raise ConfigurationError("command_depth must be >= 1")
        self.links = list(links)
        self.timing = timing
        self.store = store
        self.command_depth = command_depth
        self._commands: Deque[_PortedCommand] = deque()
        self._current: Optional[_PortedCommand] = None
        #: per-port write-data FIFOs (W beats follow AW order per port)
        self._write_beats: List[Deque[WriteBeat]] = [
            deque() for _ in links]
        self._pending_b: List[Tuple[int, int, RespBeat]] = []
        self._bus_free_at = 0
        self.queue_delay = OnlineStats()
        self.beats_served = 0
        self.per_port_beats = [0 for _ in links]
        #: beats that faulted in the backing store and answered DECERR
        self.decode_errors = 0

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        self._ingest(cycle)
        if self._current is None and self._commands:
            self._current = self._commands.popleft()
            self._start(self._current, cycle)
        if self._current is not None:
            self._advance(self._current, cycle)
        if self._pending_b and self._pending_b[0][0] <= cycle:
            __, port, response = self._pending_b[0]
            if self.links[port].b.can_push():
                self._pending_b.pop(0)
                self.links[port].b.push(response)

    # ------------------------------------------------------------------

    def _ingest(self, cycle: int) -> None:
        """Round-robin ingest: one address beat per port per cycle,
        starting from a rotating pointer so no port gets structural
        priority when the command queue is scarce.  The pointer is
        derived from the cycle number (identical to a counter bumped on
        every tick, since ticks are per-cycle) so that bulk-skipped idle
        cycles cannot desynchronize it."""
        n_ports = len(self.links)
        for offset in range(n_ports):
            port = (cycle + offset) % n_ports
            link = self.links[port]
            if (len(self._commands) < self.command_depth
                    and link.ar.can_pop()):
                beat = link.ar.pop()
                self._commands.append(
                    _PortedCommand(True, beat, cycle, port))
            if (len(self._commands) < self.command_depth
                    and link.aw.can_pop()):
                beat = link.aw.pop()
                self._commands.append(
                    _PortedCommand(False, beat, cycle, port))
            if link.w.can_pop():
                self._write_beats[port].append(link.w.pop())

    def _start(self, command: _PortedCommand, cycle: int) -> None:
        base = (self.timing.read_latency if command.is_read
                else self.timing.write_latency)
        command.data_start = max(command.arrival + base,
                                 self._bus_free_at)
        self.queue_delay.add(cycle - command.arrival)

    def _advance(self, command: _PortedCommand, cycle: int) -> None:
        if cycle < command.data_start:
            return
        link = self.links[command.port]
        beat_bytes = command.beat.size_bytes
        if command.is_read:
            if not link.r.can_push():
                return
            data = None
            resp = Resp.OKAY
            if self.store is not None:
                try:
                    data = self.store.read(command.address_cursor,
                                           beat_bytes)
                except MemoryAccessFault:
                    command.error = True
                    self.decode_errors += 1
                    resp = Resp.DECERR
            command.beats_left -= 1
            link.r.push(DataBeat(
                last=command.beats_left == 0,
                txn_id=command.beat.txn_id, data=data,
                resp=resp, addr_beat=command.beat))
        else:
            queue = self._write_beats[command.port]
            if not queue:
                return
            wbeat = queue.popleft()
            if self.store is not None and wbeat.data is not None:
                try:
                    self.store.write(command.address_cursor, wbeat.data)
                except MemoryAccessFault:
                    command.error = True
                    self.decode_errors += 1
            command.beats_left -= 1
            if command.beats_left == 0:
                self._pending_b.append((
                    cycle + self.timing.resp_latency, command.port,
                    RespBeat(txn_id=command.beat.txn_id,
                             resp=(Resp.DECERR if command.error
                                   else Resp.OKAY),
                             addr_beat=command.beat)))
        command.address_cursor += beat_bytes
        self.beats_served += 1
        self.per_port_beats[command.port] += 1
        if command.beats_left == 0:
            self._bus_free_at = cycle + 1
            self._current = None

    # ------------------------------------------------------------------
    # fast-path contract
    # ------------------------------------------------------------------

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick`: a cycle acts iff a command could start,
        the active command could move a beat, a due B response could be
        delivered, or any port presents an ingestible beat."""
        if self._commands and self._current is None:
            return False
        command = self._current
        if command is not None and cycle >= command.data_start:
            link = self.links[command.port]
            if command.is_read:
                if link.r.can_push():
                    return False
            elif self._write_beats[command.port]:
                return False
        if self._pending_b and self._pending_b[0][0] <= cycle:
            if self.links[self._pending_b[0][1]].b.can_push():
                return False
        room = len(self._commands) < self.command_depth
        for link in self.links:
            if room and (link.ar.can_pop() or link.aw.can_pop()):
                return False
            if link.w.can_pop():
                return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Internal timers: the active command's data start and the head
        B-response release."""
        horizon: Optional[int] = None
        command = self._current
        if (command is not None and command.data_start is not None
                and command.data_start > cycle):
            horizon = command.data_start
        if self._pending_b and self._pending_b[0][0] > cycle:
            due = self._pending_b[0][0]
            if horizon is None or due < horizon:
                horizon = due
        return horizon

    def wake_channels(self) -> list:
        """Every served link's five channels; internal timers (data start,
        B release) are covered by :meth:`next_event_cycle`."""
        channels = []
        for link in self.links:
            channels.extend((link.ar, link.aw, link.w, link.r, link.b))
        return channels

    # ------------------------------------------------------------------

    def idle(self) -> bool:
        """True when no work is queued, active, or pending."""
        return (self._current is None and not self._commands
                and not self._pending_b
                and all(not queue for queue in self._write_beats))
