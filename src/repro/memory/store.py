"""Sparse byte-addressable backing store.

Models the DRAM contents.  Storage is allocated lazily in 4 KiB pages so a
full 32-bit address space can be simulated without reserving gigabytes of
host memory.  Unwritten bytes read as zero.
"""

from __future__ import annotations

from typing import Dict

_PAGE_SIZE = 4096


class MemoryAccessFault(ValueError):
    """An access the backing store cannot satisfy.

    Subclasses ``ValueError`` for backward compatibility with callers
    that caught the old bare exception.  Data-path adapters catch this
    and synthesize an AXI DECERR response instead of letting a Python
    exception escape the simulation kernel.
    """

    def __init__(self, message: str, address: int = 0, count: int = 0) -> None:
        super().__init__(message)
        self.address = address
        self.count = count


class TranslationFault(MemoryAccessFault):
    """A guest access with no (or a straddled) stage-2 mapping."""


class MemoryStore:
    """Lazily-allocated sparse memory.

    Parameters
    ----------
    size:
        Total addressable bytes; accesses beyond it raise
        :class:`MemoryAccessFault` (the simulation-model analogue of a
        DECERR-causing address decode failure, which data-path adapters
        translate into an AXI error response).
    """

    def __init__(self, size: int = 1 << 32) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------

    def _check_range(self, address: int, count: int) -> None:
        if address < 0 or count < 0 or address + count > self.size:
            raise MemoryAccessFault(
                f"access [0x{address:x}, 0x{address + count:x}) outside "
                f"memory of size 0x{self.size:x}",
                address=address, count=count)

    def read(self, address: int, count: int) -> bytes:
        """Read ``count`` bytes starting at ``address``."""
        self._check_range(address, count)
        out = bytearray(count)
        offset = 0
        while offset < count:
            page_index, page_offset = divmod(address + offset, _PAGE_SIZE)
            chunk = min(count - offset, _PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = (
                    page[page_offset:page_offset + chunk])
            offset += chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check_range(address, len(data))
        offset = 0
        count = len(data)
        while offset < count:
            page_index, page_offset = divmod(address + offset, _PAGE_SIZE)
            chunk = min(count - offset, _PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_index] = page
            page[page_offset:page_offset + chunk] = (
                data[offset:offset + chunk])
            offset += chunk

    # ------------------------------------------------------------------

    def fill_pattern(self, address: int, count: int, seed: int = 0) -> None:
        """Fill a range with a cheap deterministic byte pattern.

        Used by tests and examples to create verifiable source buffers
        without hauling a RNG around.
        """
        pattern = bytes((seed + i * 131 + (i >> 8) * 17) & 0xFF
                        for i in range(min(count, _PAGE_SIZE)))
        offset = 0
        while offset < count:
            chunk = min(count - offset, len(pattern))
            self.write(address + offset, pattern[:chunk])
            offset += chunk

    def scrub(self, address: int, count: int) -> None:
        """Zero a range, dropping fully-covered pages from the sparse map.

        The hypervisor scrubs a physical range when a grant is revoked so
        the next grantee never observes the previous tenant's data.
        Whole pages are simply deallocated (unwritten bytes read as
        zero), keeping the sparse footprint bounded under tenant churn;
        partial pages at the edges are zero-filled in place.
        """
        self._check_range(address, count)
        end = address + count
        first_full = -(-address // _PAGE_SIZE)  # ceil
        last_full = end // _PAGE_SIZE           # exclusive
        if first_full >= last_full:
            # range never spans a full page: zero-fill in place
            if count:
                self.write(address, bytes(count))
            return
        for page_index in range(first_full, last_full):
            self._pages.pop(page_index, None)
        if address < first_full * _PAGE_SIZE:
            self.write(address, bytes(first_full * _PAGE_SIZE - address))
        if end > last_full * _PAGE_SIZE:
            self.write(last_full * _PAGE_SIZE,
                       bytes(end - last_full * _PAGE_SIZE))

    @property
    def allocated_bytes(self) -> int:
        """Host bytes actually allocated (sparse footprint)."""
        return len(self._pages) * _PAGE_SIZE
