"""Fault-injecting slave models for robustness testing.

Safety-critical integration requires knowing how the fabric behaves when
the *slave* side misbehaves — error responses, stalls, dead silence.
These wrappers let the test-suite (and users validating their own HAs)
inject such faults deterministically.
"""

from __future__ import annotations

import random
from typing import Optional

from ..axi.types import Resp
from ..sim.errors import ConfigurationError
from .dram import MemorySubsystem


class FaultInjectingMemory(MemorySubsystem):
    """Memory subsystem with deterministic, seeded fault injection.

    Parameters (beyond :class:`MemorySubsystem`)
    --------------------------------------------
    error_rate:
        Probability that a served beat/response carries SLVERR.
    error_window:
        Optional ``(base, end)`` address range; faults fire only inside
        it (models one bad device behind the decoder).
    stall_rate / stall_cycles:
        Probability of freezing the data pipeline for ``stall_cycles``
        before serving a beat (models controller hiccups / refresh).
    dead_after_beats:
        Deterministic hard failure: once this many beats have been
        served the data pipeline goes permanently silent (commands are
        still accepted and queue up, exactly like a wedged controller
        whose bus interface still acks).  :meth:`revive` undoes it.
    freeze_window:
        Deterministic transient failure: an absolute ``(start, end)``
        cycle range during which the data pipeline serves nothing.
        Unlike ``stall_rate`` this draws no randomness, so watchdog
        trip cycles are exactly reproducible.
    seed:
        All randomness is seeded — runs are reproducible.
    """

    def __init__(self, *args, error_rate: float = 0.0,
                 error_window: Optional[tuple] = None,
                 stall_rate: float = 0.0, stall_cycles: int = 20,
                 dead_after_beats: Optional[int] = None,
                 freeze_window: Optional[tuple] = None,
                 seed: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        if not 0.0 <= stall_rate <= 1.0:
            raise ConfigurationError("stall_rate must be in [0, 1]")
        if stall_cycles < 1:
            raise ConfigurationError("stall_cycles must be >= 1")
        if dead_after_beats is not None and dead_after_beats < 0:
            raise ConfigurationError("dead_after_beats must be >= 0")
        if freeze_window is not None and freeze_window[0] >= freeze_window[1]:
            raise ConfigurationError(
                "freeze_window must be a (start, end) cycle range")
        self.error_rate = error_rate
        self.error_window = error_window
        self.stall_rate = stall_rate
        self.stall_cycles = stall_cycles
        self.dead_after_beats = dead_after_beats
        self.freeze_window = freeze_window
        self._rng = random.Random(seed)
        self._stalled_until = 0
        self.errors_injected = 0
        self.stalls_injected = 0

    def is_quiescent(self, cycle: int) -> bool:
        """Never quiescent: the fault injector draws from its RNG stream
        in states the base model treats as idle (e.g. while a read is
        backpressured), so any skipped tick would change the sequence of
        injected faults."""
        return False

    # ------------------------------------------------------------------

    @property
    def is_dead(self) -> bool:
        """True once the deterministic hard-failure threshold is reached."""
        return (self.dead_after_beats is not None
                and self.beats_served >= self.dead_after_beats)

    def revive(self) -> None:
        """Clear the hard-failure state (a power-cycle, in effect)."""
        self.dead_after_beats = None
        self.sim.wake()

    def _fault_applies(self, address: int) -> bool:
        if self.error_window is None:
            return True
        base, end = self.error_window
        return base <= address < end

    def _maybe_error(self, address: int) -> Resp:
        if (self.error_rate > 0.0 and self._fault_applies(address)
                and self._rng.random() < self.error_rate):
            self.errors_injected += 1
            return Resp.SLVERR
        return Resp.OKAY

    def _advance(self, command, cycle: int) -> None:
        if self.is_dead:
            return
        if (self.freeze_window is not None
                and self.freeze_window[0] <= cycle < self.freeze_window[1]):
            return
        if cycle < self._stalled_until:
            return
        if (self.stall_rate > 0.0
                and self._rng.random() < self.stall_rate):
            self._stalled_until = cycle + self.stall_cycles
            self.stalls_injected += 1
            return
        before = self.beats_served
        super()._advance(command, cycle)
        # fault the beat that was just emitted, if any
        if self.beats_served > before:
            resp = self._maybe_error(command.address_cursor
                                     - command.beat.size_bytes)
            if resp is not Resp.OKAY:
                self._poison_last_emission(resp)

    def _poison_last_emission(self, resp: Resp) -> None:
        """Rewrite the response of the beat just pushed (R) or just
        scheduled (B)."""
        def _set_resp(beat):
            beat.resp = resp

        if self.link.r.amend_staged(_set_resp):    # read beat this cycle
            return
        if self._pending_b:                        # write response due
            self._pending_b[-1][1].resp = resp
