"""Fault-injecting slave models for robustness testing.

Safety-critical integration requires knowing how the fabric behaves when
the *slave* side misbehaves — error responses, stalls, dead silence.
These wrappers let the test-suite (and users validating their own HAs)
inject such faults deterministically.
"""

from __future__ import annotations

import random
from typing import Optional

from ..axi.types import Resp
from ..sim.errors import ConfigurationError
from .dram import MemorySubsystem


class FaultInjectingMemory(MemorySubsystem):
    """Memory subsystem with deterministic, seeded fault injection.

    Parameters (beyond :class:`MemorySubsystem`)
    --------------------------------------------
    error_rate:
        Probability that a served beat/response carries SLVERR.
    error_window:
        Optional ``(base, end)`` address range; faults fire only inside
        it (models one bad device behind the decoder).
    stall_rate / stall_cycles:
        Probability of freezing the data pipeline for ``stall_cycles``
        before serving a beat (models controller hiccups / refresh).
    dead_after_beats:
        Deterministic hard failure: once this many beats have been
        served the data pipeline goes permanently silent (commands are
        still accepted and queue up, exactly like a wedged controller
        whose bus interface still acks).  :meth:`revive` undoes it.
    freeze_window:
        Deterministic transient failure: an absolute ``(start, end)``
        cycle range during which the data pipeline serves nothing.
        Unlike ``stall_rate`` this draws no randomness, so watchdog
        trip cycles are exactly reproducible.
    seed:
        All randomness is seeded — runs are reproducible.
    """

    def __init__(self, *args, error_rate: float = 0.0,
                 error_window: Optional[tuple] = None,
                 stall_rate: float = 0.0, stall_cycles: int = 20,
                 dead_after_beats: Optional[int] = None,
                 freeze_window: Optional[tuple] = None,
                 seed: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        if not 0.0 <= stall_rate <= 1.0:
            raise ConfigurationError("stall_rate must be in [0, 1]")
        if stall_cycles < 1:
            raise ConfigurationError("stall_cycles must be >= 1")
        if dead_after_beats is not None and dead_after_beats < 0:
            raise ConfigurationError("dead_after_beats must be >= 0")
        if freeze_window is not None and freeze_window[0] >= freeze_window[1]:
            raise ConfigurationError(
                "freeze_window must be a (start, end) cycle range")
        self.error_rate = error_rate
        self.error_window = error_window
        self.stall_rate = stall_rate
        self.stall_cycles = stall_cycles
        self.dead_after_beats = dead_after_beats
        self.freeze_window = freeze_window
        self._rng = random.Random(seed)
        self._stalled_until = 0
        self.errors_injected = 0
        self.stalls_injected = 0

    def is_quiescent(self, cycle: int) -> bool:
        """Quiescent exactly when this tick cannot change state *or* the
        RNG stream.

        ``stall_rate`` is the one knob that draws randomness on every
        advance attempt (even while backpressured or inside the access-
        latency window), so any tick with an active command must run when
        it is armed — skipping would change the sequence of injected
        faults.  ``error_rate`` draws only when a beat is actually
        served, which the base predicate already treats as
        non-quiescent.

        While the data pipeline is deterministically frozen (``is_dead``
        or inside ``freeze_window``) the advance step is a guaranteed
        no-op, so the component is quiescent unless one of the *other*
        tick steps (ingest, command pick, due B response) could act —
        mirrored below exactly as :meth:`MemorySubsystem.is_quiescent`
        mirrors them, minus the advance branch."""
        if (self.stall_rate > 0.0
                and (self._current is not None or self._commands)):
            return False
        if not self._data_frozen(cycle):
            return super().is_quiescent(cycle)
        link = self.link
        if (len(self._commands) < self.command_depth
                and (link.ar.can_pop() or link.aw.can_pop())):
            return False
        if link.w.can_pop():
            return False
        if self._current is None and self._commands:
            return False
        if (self._pending_b and self._pending_b[0][0] <= cycle
                and link.b.can_push()):
            return False
        return True

    def next_event_cycle(self, cycle: int):
        """Adds the freeze-window *revive edge* to the base timers.

        Without it a fabric frozen alongside the memory would sleep
        through ``freeze_window[1]`` and silently never observe the
        revival — the targeted kernel-equivalence test pins this."""
        horizon = super().next_event_cycle(cycle)
        fw = self.freeze_window
        if fw is not None and cycle < fw[1]:
            edge = fw[1] if cycle >= fw[0] else fw[0]
            if horizon is None or edge < horizon:
                horizon = edge
        return horizon

    def _data_frozen(self, cycle: int) -> bool:
        """True while the advance step is a deterministic no-op."""
        return (self.is_dead
                or (self.freeze_window is not None
                    and self.freeze_window[0] <= cycle
                    < self.freeze_window[1]))

    # ------------------------------------------------------------------

    @property
    def is_dead(self) -> bool:
        """True once the deterministic hard-failure threshold is reached."""
        return (self.dead_after_beats is not None
                and self.beats_served >= self.dead_after_beats)

    def revive(self) -> None:
        """Clear the hard-failure state (a power-cycle, in effect)."""
        self.dead_after_beats = None
        self.sim.wake()

    def _fault_applies(self, address: int) -> bool:
        if self.error_window is None:
            return True
        base, end = self.error_window
        return base <= address < end

    def _maybe_error(self, address: int) -> Resp:
        if (self.error_rate > 0.0 and self._fault_applies(address)
                and self._rng.random() < self.error_rate):
            self.errors_injected += 1
            return Resp.SLVERR
        return Resp.OKAY

    def _advance(self, command, cycle: int) -> None:
        if self.is_dead:
            return
        if (self.freeze_window is not None
                and self.freeze_window[0] <= cycle < self.freeze_window[1]):
            return
        if cycle < self._stalled_until:
            return
        if (self.stall_rate > 0.0
                and self._rng.random() < self.stall_rate):
            self._stalled_until = cycle + self.stall_cycles
            self.stalls_injected += 1
            return
        before = self.beats_served
        super()._advance(command, cycle)
        # fault the beat that was just emitted, if any
        if self.beats_served > before:
            resp = self._maybe_error(command.address_cursor
                                     - command.beat.size_bytes)
            if resp is not Resp.OKAY:
                self._poison_last_emission(resp)

    def _poison_last_emission(self, resp: Resp) -> None:
        """Rewrite the response of the beat just pushed (R) or just
        scheduled (B)."""
        def _set_resp(beat):
            beat.resp = resp

        if self.link.r.amend_staged(_set_resp):    # read beat this cycle
            return
        if self._pending_b:                        # write response due
            self._pending_b[-1][1].resp = resp
