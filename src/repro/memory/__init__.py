"""PS-side memory substrate: backing store, DRAM controller, FPGA-PS port."""

from .dram import DramTiming, MemorySubsystem
from .faulty import FaultInjectingMemory
from .multiport import MultiPortMemorySubsystem
from .ooo import OutOfOrderMemory
from .psport import AxiPipe, FpgaPsPort
from .qos400 import PsQosRegulator
from .store import MemoryStore

__all__ = [
    "DramTiming",
    "MemorySubsystem",
    "FaultInjectingMemory",
    "MultiPortMemorySubsystem",
    "OutOfOrderMemory",
    "AxiPipe",
    "FpgaPsPort",
    "PsQosRegulator",
    "MemoryStore",
]
