"""PS-side memory substrate: backing store, DRAM controller, FPGA-PS port."""

from .buddy import AllocationError, BuddyAllocator
from .dram import DramTiming, MemorySubsystem
from .faulty import FaultInjectingMemory
from .multiport import MultiPortMemorySubsystem
from .ooo import OutOfOrderMemory
from .psport import AxiPipe, FpgaPsPort
from .qos400 import PsQosRegulator
from .store import MemoryAccessFault, MemoryStore, TranslationFault
from .virt import Stage2Table, Stage2Window, VirtualizedStore

__all__ = [
    "AllocationError",
    "BuddyAllocator",
    "DramTiming",
    "MemorySubsystem",
    "FaultInjectingMemory",
    "MultiPortMemorySubsystem",
    "OutOfOrderMemory",
    "AxiPipe",
    "FpgaPsPort",
    "PsQosRegulator",
    "MemoryAccessFault",
    "MemoryStore",
    "TranslationFault",
    "Stage2Table",
    "Stage2Window",
    "VirtualizedStore",
]
