"""Central unit: common configuration, synchronous recharge, reset fan-out.

The central unit owns the reservation-period counter and recharges the
budgets of *all* Transaction Supervisors in the same cycle ("the
reservation period is recharged for all the TS modules by the central unit
in a synchronous manner"), mirrors the global enable bit into the TSs, and
fans out reset requests.
"""

from __future__ import annotations

from typing import List

from ..sim.component import Component
from ..sim.errors import ConfigurationError
from .supervisor import TransactionSupervisor


class CentralUnit(Component):
    """Period counter + synchronous recharge + global enable/reset."""

    def __init__(self, sim, name: str,
                 supervisors: List[TransactionSupervisor],
                 period: int = 65536, enabled: bool = True) -> None:
        super().__init__(sim, name)
        if period < 1:
            raise ConfigurationError("reservation period must be >= 1")
        self.supervisors = supervisors
        self._period = period
        self._enabled = enabled
        #: absolute cycle of the next synchronous recharge (the paper's
        #: period counter, kept as a deadline so idle periods need no
        #: per-cycle countdown work)
        self._next_recharge = sim.now + period - 1
        self.recharges = 0
        self._apply_enable()

    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """Reservation period T in clock cycles."""
        return self._period

    @period.setter
    def period(self, value: int) -> None:
        if value < 1:
            raise ConfigurationError("reservation period must be >= 1")
        self._period = value
        # a shorter period takes effect no later than the new length
        self._next_recharge = min(self._next_recharge,
                                  self.sim.now + value - 1)
        self.sim.wake()

    @property
    def enabled(self) -> bool:
        """Global enable: when false, no TS forwards new requests."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._apply_enable()

    def _apply_enable(self) -> None:
        for supervisor in self.supervisors:
            supervisor.enabled = self._enabled
        self.sim.wake()

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if cycle >= self._next_recharge:
            self._next_recharge = cycle + self._period
            self.recharges += 1
            for supervisor in self.supervisors:
                supervisor.recharge()

    def is_quiescent(self, cycle: int) -> bool:
        """Between recharge deadlines the central unit does nothing."""
        return cycle < self._next_recharge

    def next_event_cycle(self, cycle: int) -> int:
        """The recharge deadline is a guaranteed internal event."""
        return self._next_recharge

    def wake_channels(self) -> list:
        """Pure timer component: wakes only via the recharge deadline
        (heap entry from :meth:`next_event_cycle`) or explicit wakes from
        the enable/period/reset paths."""
        return []

    def reset(self) -> None:
        self._next_recharge = self.sim.now + self._period - 1
        for supervisor in self.supervisors:
            supervisor.reset()
        self.sim.wake()
