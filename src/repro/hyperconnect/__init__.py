"""The AXI HyperConnect: the paper's primary contribution."""

from .central import CentralUnit
from .driver import HyperConnectDriver
from .efifo import EFifoLink, GatedChannel, PortGate
from .exbar import Exbar
from .hyperconnect import HyperConnect, MasterEFifo
from .reorder import InOrderAdapter
from .regs import (
    BUDGET_UNLIMITED,
    ControlSlave,
    RegisterAccessError,
    RegisterFile,
    port_register,
)
from .supervisor import (
    PortConfig,
    TransactionSupervisor,
    drain_and_complete_orphans,
)

__all__ = [
    "CentralUnit",
    "HyperConnectDriver",
    "EFifoLink",
    "GatedChannel",
    "PortGate",
    "Exbar",
    "InOrderAdapter",
    "HyperConnect",
    "MasterEFifo",
    "BUDGET_UNLIMITED",
    "ControlSlave",
    "RegisterAccessError",
    "RegisterFile",
    "port_register",
    "PortConfig",
    "TransactionSupervisor",
    "drain_and_complete_orphans",
]
