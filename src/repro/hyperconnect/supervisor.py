"""Transaction Supervisor (TS): per-port bandwidth and access management.

The TS is "the core module of the AXI HyperConnect concerning bandwidth and
memory access management".  One TS instance supervises one input port and
implements, per the paper:

* **burst equalization** (mechanism of [11]): incoming read/write requests
  are split into sub-requests of a *nominal burst size*; the returning data
  and responses are merged back transparently (the merge itself is carried
  out on the proactive data paths, see :mod:`repro.hyperconnect.exbar`);
* **outstanding-transaction limiting** ([11]): at most a programmable
  number of sub-transactions of each port are in flight;
* **bandwidth reservation** (mechanism of [10]): each port holds a budget
  of sub-transactions that is consumed on every issued sub-request and
  recharged synchronously every reservation period by the central unit;
* **decoupling**: a decoupled port's requests are neither popped nor
  forwarded (the eFIFO gate additionally holds the HA-side handshake low).

The TS adds exactly one cycle of latency on each address request — its
output channel is a single registered stage — and zero latency on the
R/W/B channels, which it manages proactively via routing metadata.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..axi.burst import split_burst
from ..axi.checker import ProtocolError, check_addr_beat
from ..axi.payloads import AddrBeat, DataBeat, RespBeat
from ..axi.types import BurstType, Resp
from ..sim.channel import Channel
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.events import PortFaultEvent
from ..sim.stats import PortFaultStats
from .efifo import EFifoLink


@dataclass
class PortConfig:
    """Runtime-reconfigurable parameters of one input port.

    Mutated by the register-file callbacks; read by the TS every cycle.
    """

    nominal_burst: int = 16
    max_outstanding: int = 8
    #: sub-transactions per reservation period; ``None`` = unlimited
    budget: Optional[int] = None
    #: watchdog: max cycles an issued sub-transaction may stay
    #: outstanding before the port is contained; ``None`` disables the
    #: watchdog (and the ingest-time protocol guard armed with it)
    timeout_cycles: Optional[int] = None
    #: region filter (stage-2 grant enforcement on the data plane): any
    #: request whose burst footprint leaves
    #: ``[region_base, region_base + region_bytes)`` trips containment
    #: with DECERR.  ``region_bytes == 0`` disables the filter, which is
    #: the default so untenanted systems behave exactly as before.
    region_base: int = 0
    region_bytes: int = 0
    #: counters exposed through the read-only ISSUED_* registers
    issued_read: int = field(default=0)
    issued_write: int = field(default=0)

    def validate(self) -> None:
        """Raise on inconsistent values (driver-level guard)."""
        if self.nominal_burst < 1:
            raise ConfigurationError("nominal_burst must be >= 1")
        if self.max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ConfigurationError("timeout_cycles must be >= 1 or None")
        if self.region_base < 0 or self.region_bytes < 0:
            raise ConfigurationError(
                "region_base/region_bytes must be >= 0")


def drain_and_complete_orphans(link, inflight_reads, inflight_writes,
                               synth_resp, stats) -> None:
    """One containment cycle on a decoupled port: drain, then synthesize.

    Pure with respect to its arguments — it touches only the given eFIFO
    ``link``, the ``[origin, beats_owed]`` read queue / origin write queue,
    and the :class:`~repro.sim.stats.PortFaultStats` counters — so it can
    be unit-tested without building a HyperConnect (and reused by any
    future containment host).  Semantics:

    * swallow every request and W beat still visible in the eFIFO (they
      were accepted before the gate closed); newly drained requests join
      the orphan queues;
    * synthesize at most one R beat and one B response per call, carrying
      ``synth_resp``, so the upstream master's protocol state machine
      finishes every burst it started — with an error, but without
      hanging.
    """
    while link.ar.can_pop():
        beat = link.ar.pop()
        inflight_reads.append([beat, beat.length])
        stats.drained_requests += 1
    while link.aw.can_pop():
        beat = link.aw.pop()
        inflight_writes.append(beat)
        stats.drained_requests += 1
    while link.w.can_pop():
        link.w.pop()
        stats.drained_w_beats += 1
    if inflight_reads and link.r.can_push():
        origin, owed = inflight_reads[0]
        link.r.push(DataBeat(last=owed == 1, txn_id=origin.txn_id,
                             resp=synth_resp, addr_beat=origin))
        stats.synth_r_beats += 1
        if owed == 1:
            stats.orphans_completed += 1
    if inflight_writes and link.b.can_push():
        origin = inflight_writes[0]
        link.b.push(RespBeat(txn_id=origin.txn_id,
                             resp=synth_resp, addr_beat=origin))
        stats.synth_b_beats += 1
        stats.orphans_completed += 1


class TransactionSupervisor(Component):
    """Supervises one HyperConnect input port.

    Parameters
    ----------
    ha_link:
        The port's :class:`~repro.hyperconnect.efifo.EFifoLink` (HA side).
    out_ar / out_aw:
        Registered single-stage channels towards the EXBAR; their one
        cycle of latency is the TS's address-path latency.
    config:
        Shared :class:`PortConfig` (also mutated via the register file).
    """

    def __init__(self, sim, name: str, port_index: int,
                 ha_link: EFifoLink, out_ar: Channel, out_aw: Channel,
                 config: Optional[PortConfig] = None) -> None:
        super().__init__(sim, name)
        self.port_index = port_index
        self.ha_link = ha_link
        self.out_ar = out_ar
        self.out_aw = out_aw
        self.config = config if config is not None else PortConfig()
        self.config.validate()
        #: sub-requests produced by the splitter, awaiting issue
        self._pending_ar: Deque[AddrBeat] = deque()
        self._pending_aw: Deque[AddrBeat] = deque()
        #: in-flight sub-transactions (issued, not yet completed)
        self.outstanding_reads = 0
        self.outstanding_writes = 0
        #: remaining reservation budget in the current period
        self.budget_remaining: Optional[int] = self.config.budget
        #: global enable flag mirrored from the central unit
        self.enabled = True
        self.stalled_on_budget = 0   # cycles a request waited on budget
        self.splits_performed = 0
        #: issue cycles of forwarded sub-transactions, completion order
        #: (head = oldest; the watchdog deadline derives from it)
        self._read_issue_cycles: Deque[int] = deque()
        self._write_issue_cycles: Deque[int] = deque()
        #: ingested origin requests still owed data/responses by this
        #: port, in ingest order: reads as ``[origin, beats_owed]``,
        #: writes as origins (each owed exactly one B).  Maintained by
        #: push subscriptions on the return channels, so genuine and
        #: synthesized deliveries are accounted uniformly.
        self._inflight_reads: Deque[list] = deque()
        self._inflight_writes: Deque[AddrBeat] = deque()
        #: W-emission ledger: ``[txn_id, beats_not_yet_pushed]`` per
        #: upstream write, in AW-push order.  AXI write data is not
        #: interleaved, so W pushes decrement the head entry.  The ledger
        #: exists for revocation: when a planned quiesce synthesizes a B
        #: before the engine has emitted every W beat, the shortfall is
        #: remembered so the late beats can be swallowed after recouple
        #: instead of wedging the port (nothing downstream routes them).
        self._w_expected: Deque[list] = deque()
        #: future W pushes that belong to revocation-retired writes
        self._w_skip_push = 0
        #: residual W beats already in the eFIFO awaiting swallow
        self._w_residue = 0
        #: containment state: once a watchdog or protocol trip fires the
        #: port is decoupled and the TS switches to orphan completion
        self.faulted = False
        self.fault_cycle: Optional[int] = None
        self._synth_resp = Resp.SLVERR
        self.fault_stats = PortFaultStats()
        #: lifetime count of hypervisor-initiated revocation quiesces
        #: (deliberately NOT part of fault_stats: a revocation is a
        #: planned transition, not a fault, and must not perturb the
        #: pinned fault-stat digests)
        self.revocations = 0
        #: True between begin_revocation and clear_fault/reset: gates the
        #: residue capture so watchdog/protocol containment is untouched
        self._revoking = False
        ha_link.r.subscribe_push(self._on_r_push)
        ha_link.b.subscribe_push(self._on_b_push)
        ha_link.aw.subscribe_push(self._on_aw_push)
        ha_link.w.subscribe_push(self._on_w_push)

    # ------------------------------------------------------------------
    # orphan accounting (return-channel push subscriptions)
    # ------------------------------------------------------------------

    def _on_r_push(self, cycle: int, beat) -> None:
        """One R beat reached the HA; the oldest read owes one fewer."""
        if self._inflight_reads:
            entry = self._inflight_reads[0]
            entry[1] -= 1
            if entry[1] <= 0:
                self._inflight_reads.popleft()

    def _on_b_push(self, cycle: int, beat) -> None:
        """One B response reached the HA; the oldest write is answered."""
        if self._inflight_writes:
            origin = self._inflight_writes.popleft()
            if self._revoking:
                self._note_retired_write(origin.txn_id)

    def _on_aw_push(self, cycle: int, beat) -> None:
        """The engine started a write burst; it owes ``length`` W beats."""
        self._w_expected.append([beat.txn_id, beat.length])

    def _on_w_push(self, cycle: int, beat) -> None:
        """One W beat entered the eFIFO from the engine.

        If retired writes still owe pushes, this beat is theirs (the W
        stream is in order) and must be swallowed rather than routed;
        otherwise it advances the oldest live write's ledger entry.
        """
        if self._w_skip_push > 0:
            self._w_skip_push -= 1
            self._w_residue += 1
            return
        if self._w_expected:
            entry = self._w_expected[0]
            entry[1] -= 1
            if entry[1] <= 0:
                self._w_expected.popleft()

    def _note_retired_write(self, txn_id) -> None:
        """A revocation answered this write early: remember the W beats
        the engine has not pushed yet, so they can be swallowed when
        they arrive after recouple (decoupling gates the engine's
        pushes, so waiting for them before commit would deadlock)."""
        for index, entry in enumerate(self._w_expected):
            if entry[0] == txn_id:
                if entry[1] > 0:
                    self._w_skip_push += entry[1]
                del self._w_expected[index]
                return

    # ------------------------------------------------------------------
    # central-unit interface
    # ------------------------------------------------------------------

    def recharge(self) -> None:
        """Synchronous budget recharge at the reservation period boundary.

        Called by the central unit from *its* tick — a cross-component
        mutation the fast path cannot see through channels, so a sleeping
        TS (e.g. budget-exhausted with nothing outstanding) is woken
        explicitly.
        """
        self.budget_remaining = self.config.budget
        self.wake()

    def note_read_complete(self) -> None:
        """A sub-read's last data beat was delivered (EXBAR callback).

        Direct cross-component call: outstanding counters gate issue, so
        the TS is woken in case it slept on the outstanding limit.
        """
        if self.outstanding_reads <= 0:
            raise ConfigurationError(
                f"{self.name}: read completion with none outstanding")
        self.outstanding_reads -= 1
        if self._read_issue_cycles:
            self._read_issue_cycles.popleft()
        self.wake()

    def note_write_complete(self) -> None:
        """A sub-write's response arrived (EXBAR callback)."""
        if self.outstanding_writes <= 0:
            raise ConfigurationError(
                f"{self.name}: write completion with none outstanding")
        self.outstanding_writes -= 1
        if self._write_issue_cycles:
            self._write_issue_cycles.popleft()
        self.wake()

    # ------------------------------------------------------------------

    @property
    def coupled(self) -> bool:
        """Mirrors the eFIFO gate state."""
        return self.ha_link.coupled

    def _budget_available(self) -> bool:
        if self.budget_remaining is None:
            return True
        return self.budget_remaining > 0

    def _consume_budget(self) -> None:
        if self.budget_remaining is not None:
            self.budget_remaining -= 1

    def _split(self, beat: AddrBeat) -> Deque[AddrBeat]:
        """Equalize one request to the nominal burst size."""
        nominal = self.config.nominal_burst
        beat.port = self.port_index
        if beat.length <= nominal:
            beat.final_sub = True
            return deque((beat,))
        pieces = split_burst(beat.address, beat.length, beat.size_bytes,
                             nominal)
        self.splits_performed += 1
        return deque(
            beat.split_child(addr, length, final_sub=index == len(pieces) - 1)
            for index, (addr, length) in enumerate(pieces))

    # ------------------------------------------------------------------
    # watchdog and containment
    # ------------------------------------------------------------------

    def _watchdog_deadline(self) -> Optional[int]:
        """Absolute cycle at which the oldest sub-transaction times out.

        ``None`` when the watchdog is disarmed or nothing is in flight.
        Deadlines derive from stored issue cycles, so a runtime change of
        ``timeout_cycles`` re-times every pending deadline.
        """
        timeout = self.config.timeout_cycles
        if timeout is None:
            return None
        deadline = None
        if self._read_issue_cycles:
            deadline = self._read_issue_cycles[0] + timeout
        if self._write_issue_cycles:
            candidate = self._write_issue_cycles[0] + timeout
            if deadline is None or candidate < deadline:
                deadline = candidate
        return deadline

    def _guard_request(self, beat: AddrBeat) -> Optional[str]:
        """Ingest-time protocol check (armed together with the watchdog)."""
        if self.config.timeout_cycles is None:
            return None
        try:
            check_addr_beat(beat, self.ha_link.version,
                            self.ha_link.data_bytes)
        except ProtocolError as exc:
            return str(exc)
        return None

    def _check_region(self, beat: AddrBeat) -> Optional[str]:
        """Stage-2 grant check: the burst footprint must stay inside the
        port's granted region.  Armed whenever ``region_bytes > 0``
        (independently of the watchdog — the hypervisor programs grants
        even on ports it does not watchdog)."""
        span = self.config.region_bytes
        if span == 0:
            return None
        if beat.burst is BurstType.FIXED:
            footprint = beat.size_bytes
        else:
            footprint = beat.length * beat.size_bytes
        base = self.config.region_base
        if beat.address < base or beat.address + footprint > base + span:
            return (f"access [0x{beat.address:x}, "
                    f"0x{beat.address + footprint:x}) outside granted "
                    f"region [0x{base:x}, 0x{base + span:x})")
        return None

    def _trip(self, cycle: int, kind: str, resp: Resp, age: int = 0,
              detail: str = "") -> None:
        """Enter containment: decouple, discard pending, raise the event.

        Sub-transactions already forwarded to the EXBAR are *not*
        cancelled — the EXBAR's decoupled-port routing drops/flushes
        their beats so the shared path drains at full speed, and the
        completion callbacks keep the outstanding counters exact.  The
        origins they derive from stay in the in-flight queues and are
        completed with synthesized error responses by
        :meth:`_containment_tick`.
        """
        self.faulted = True
        self.fault_cycle = cycle
        self._synth_resp = resp
        if kind == "watchdog_timeout":
            self.fault_stats.watchdog_trips += 1
        else:
            self.fault_stats.protocol_trips += 1
        self._pending_ar.clear()
        self._pending_aw.clear()
        self.ha_link.decouple()
        self.sim.events.publish(PortFaultEvent(
            cycle=cycle, source=self.name, port=self.port_index,
            kind=kind, age=age,
            outstanding_reads=self.outstanding_reads,
            outstanding_writes=self.outstanding_writes,
            detail=detail))

    def begin_revocation(self, cycle: int) -> None:
        """Enter containment for a hypervisor-initiated grant revocation.

        Same drain machinery as a watchdog trip — decouple, discard
        pending requests, complete orphans with synthesized ``DECERR``
        (the evicted tenant's view of its vanished grant) — but it is a
        planned transition, not a fault: no :class:`PortFaultEvent` is
        published (recovery agents must not auto-retry a deliberate
        revocation) and no trip counter moves.  A port already in
        containment stays on its fault path; the revocation rides the
        drain that is already underway.
        """
        if self.faulted:
            return
        self.faulted = True
        self.fault_cycle = cycle
        self._synth_resp = Resp.DECERR
        self.revocations += 1
        self._revoking = True
        self._pending_ar.clear()
        self._pending_aw.clear()
        self.ha_link.decouple()
        self.wake()
        self.sim.wake()

    def _containment_tick(self, cycle: int) -> None:
        """Drain the decoupled port and complete its orphans (delegates
        to the pure :func:`drain_and_complete_orphans` helper)."""
        self._swallow_residual_w()
        drain_and_complete_orphans(self.ha_link, self._inflight_reads,
                                   self._inflight_writes, self._synth_resp,
                                   self.fault_stats)

    def _swallow_residual_w(self) -> None:
        """Discard W beats owed by revocation-retired writes.

        Their B was synthesized during the quiesce; once the engine is
        recoupled it finishes pushing the burst it had started, and no
        consumer exists for those beats (the EXBAR only pops W for
        routed sub-writes) — without this they wedge the port forever.
        """
        while self._w_residue > 0 and self.ha_link.w.can_pop():
            self.ha_link.w.pop()
            self._w_residue -= 1
            self.fault_stats.drained_w_beats += 1

    @property
    def drained(self) -> bool:
        """True once containment has fully run its course.

        Nothing outstanding downstream (the EXBAR finished dropping and
        flushing), nothing owed upstream, nothing pending or queued in
        the eFIFO: the port can be reset and re-coupled without any stale
        beat ever reaching a fresh engine.  A port wedged on a dead slave
        never drains — recovery policies give up and leave it
        quarantined, which is the correct end state.
        """
        return (self.outstanding_reads == 0
                and self.outstanding_writes == 0
                and not self._inflight_reads
                and not self._inflight_writes
                and not self._pending_ar
                and not self._pending_aw
                and self.ha_link.ar.is_idle
                and self.ha_link.aw.is_idle
                and self.ha_link.w.is_idle)

    def clear_fault(self) -> None:
        """Leave containment (hypervisor recovery, after :meth:`reset`)."""
        self.faulted = False
        self.fault_cycle = None
        self._revoking = False
        self.sim.wake()

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if self.faulted:
            self._containment_tick(cycle)
            return
        if not self.coupled or not self.enabled:
            return
        if self._w_residue:
            self._swallow_residual_w()
        deadline = self._watchdog_deadline()
        if deadline is not None and cycle >= deadline:
            self._trip(cycle, "watchdog_timeout", Resp.SLVERR,
                       age=self.config.timeout_cycles)
            self._containment_tick(cycle)
            return
        # ingest at most one new request per channel per cycle, keeping the
        # pending queues shallow (the eFIFO provides the real buffering)
        if not self._pending_ar and self.ha_link.ar.can_pop():
            beat = self.ha_link.ar.pop()
            kind = "protocol_violation"
            violation = self._guard_request(beat)
            if violation is None:
                violation = self._check_region(beat)
                if violation is not None:
                    kind = "region_violation"
            self._inflight_reads.append([beat, beat.length])
            if violation is not None:
                self._trip(cycle, kind, Resp.DECERR, detail=violation)
                self._containment_tick(cycle)
                return
            self._pending_ar = self._split(beat)
        if not self._pending_aw and self.ha_link.aw.can_pop():
            beat = self.ha_link.aw.pop()
            kind = "protocol_violation"
            violation = self._guard_request(beat)
            if violation is None:
                violation = self._check_region(beat)
                if violation is not None:
                    kind = "region_violation"
            self._inflight_writes.append(beat)
            if violation is not None:
                self._trip(cycle, kind, Resp.DECERR, detail=violation)
                self._containment_tick(cycle)
                return
            self._pending_aw = self._split(beat)
        # forward at most one sub-request per address channel per cycle,
        # subject to the outstanding limit and the reservation budget
        if self._pending_ar:
            if (self.outstanding_reads < self.config.max_outstanding
                    and self._budget_available()
                    and self.out_ar.can_push()):
                sub = self._pending_ar.popleft()
                sub.stamps["ts_forward"] = cycle
                self.out_ar.push(sub)
                self.outstanding_reads += 1
                self._read_issue_cycles.append(cycle)
                self._consume_budget()
                self.config.issued_read += 1
            elif not self._budget_available():
                self.stalled_on_budget += 1
        if self._pending_aw:
            if (self.outstanding_writes < self.config.max_outstanding
                    and self._budget_available()
                    and self.out_aw.can_push()):
                sub = self._pending_aw.popleft()
                sub.stamps["ts_forward"] = cycle
                self.out_aw.push(sub)
                self.outstanding_writes += 1
                self._write_issue_cycles.append(cycle)
                self._consume_budget()
                self.config.issued_write += 1
            elif not self._budget_available():
                self.stalled_on_budget += 1

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick`: decoupled/disabled supervisors are fully
        idle; otherwise the TS acts when it can ingest, can forward, or is
        budget-stalled (the stall counter makes a budget-blocked cycle a
        state change, so it must not be skipped).  A faulted TS acts
        while the eFIFO still holds anything or orphans remain to be
        answered; a due watchdog deadline is itself an action.
        """
        if self.faulted:
            link = self.ha_link
            if (link.ar.can_pop() or link.aw.can_pop()
                    or link.w.can_pop()):
                return False
            if self._inflight_reads and link.r.can_push():
                return False
            if self._inflight_writes and link.b.can_push():
                return False
            return True
        link = self.ha_link
        if not link.gate.coupled or not self.enabled:
            return True
        if self._w_residue:
            queue = link.w._queue
            if queue and queue[0][0] <= cycle:
                return False
        # channel and budget guards inlined: this predicate is the fast
        # path's per-cycle poll of every supervisor, so it must cost less
        # than the tick it elides
        timeout = self.config.timeout_cycles
        if timeout is not None:
            if (self._read_issue_cycles
                    and cycle >= self._read_issue_cycles[0] + timeout):
                return False
            if (self._write_issue_cycles
                    and cycle >= self._write_issue_cycles[0] + timeout):
                return False
        pending_ar = self._pending_ar
        if not pending_ar:
            queue = link.ar._queue
            if queue and queue[0][0] <= cycle:
                return False
        pending_aw = self._pending_aw
        if not pending_aw:
            queue = link.aw._queue
            if queue and queue[0][0] <= cycle:
                return False
        budget = self.budget_remaining
        if pending_ar:
            if budget is not None and budget <= 0:
                return False
            if self.outstanding_reads < self.config.max_outstanding:
                out = self.out_ar
                if out.capacity is None or out._occupancy < out.capacity:
                    return False
        if pending_aw:
            if budget is not None and budget <= 0:
                return False
            if self.outstanding_writes < self.config.max_outstanding:
                out = self.out_aw
                if out.capacity is None or out._occupancy < out.capacity:
                    return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """The watchdog deadline is the TS's only internal alarm.

        Absolute-cycle based, so frozen-horizon bulk skips on the fast
        path stop exactly at the trip cycle.
        """
        if self.faulted or not self.coupled or not self.enabled:
            return None
        return self._watchdog_deadline()

    def wake_channels(self) -> list:
        """Channels whose activity can end the TS's quiescence.

        Everything else that can un-quiesce a TS arrives through explicit
        wakes: EXBAR completion callbacks and central-unit recharges call
        :meth:`~repro.sim.Component.wake`, gate flips and register writes
        call :meth:`Simulator.wake`, and the watchdog deadline rides the
        wake heap via :meth:`next_event_cycle`.
        """
        link = self.ha_link
        return [link.ar, link.aw, link.w, link.r, link.b,
                self.out_ar, self.out_aw]

    def shard_affinity(self) -> Optional[str]:
        """The TS belongs to its port's shard (stamped on the eFIFO link).

        The TS only touches its own port's channels during a tick; its
        cross-shard interactions (EXBAR completion callbacks, central
        unit recharges, fault events) arrive through the kernel's wake
        and event services, which the parallel engine defers to the
        stage barrier.
        """
        return getattr(self.ha_link, "shard_key", None)

    def reset(self) -> None:
        self._pending_ar.clear()
        self._pending_aw.clear()
        self.outstanding_reads = 0
        self.outstanding_writes = 0
        self.budget_remaining = self.config.budget
        self._read_issue_cycles.clear()
        self._write_issue_cycles.clear()
        self._inflight_reads.clear()
        self._inflight_writes.clear()
        self._w_expected.clear()
        self._w_skip_push = 0
        self._w_residue = 0
        self.faulted = False
        self.fault_cycle = None
        self._revoking = False
        self.sim.wake()
