"""Transaction Supervisor (TS): per-port bandwidth and access management.

The TS is "the core module of the AXI HyperConnect concerning bandwidth and
memory access management".  One TS instance supervises one input port and
implements, per the paper:

* **burst equalization** (mechanism of [11]): incoming read/write requests
  are split into sub-requests of a *nominal burst size*; the returning data
  and responses are merged back transparently (the merge itself is carried
  out on the proactive data paths, see :mod:`repro.hyperconnect.exbar`);
* **outstanding-transaction limiting** ([11]): at most a programmable
  number of sub-transactions of each port are in flight;
* **bandwidth reservation** (mechanism of [10]): each port holds a budget
  of sub-transactions that is consumed on every issued sub-request and
  recharged synchronously every reservation period by the central unit;
* **decoupling**: a decoupled port's requests are neither popped nor
  forwarded (the eFIFO gate additionally holds the HA-side handshake low).

The TS adds exactly one cycle of latency on each address request — its
output channel is a single registered stage — and zero latency on the
R/W/B channels, which it manages proactively via routing metadata.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..axi.burst import split_burst
from ..axi.payloads import AddrBeat
from ..sim.channel import Channel
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from .efifo import EFifoLink


@dataclass
class PortConfig:
    """Runtime-reconfigurable parameters of one input port.

    Mutated by the register-file callbacks; read by the TS every cycle.
    """

    nominal_burst: int = 16
    max_outstanding: int = 8
    #: sub-transactions per reservation period; ``None`` = unlimited
    budget: Optional[int] = None
    #: counters exposed through the read-only ISSUED_* registers
    issued_read: int = field(default=0)
    issued_write: int = field(default=0)

    def validate(self) -> None:
        """Raise on inconsistent values (driver-level guard)."""
        if self.nominal_burst < 1:
            raise ConfigurationError("nominal_burst must be >= 1")
        if self.max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")


class TransactionSupervisor(Component):
    """Supervises one HyperConnect input port.

    Parameters
    ----------
    ha_link:
        The port's :class:`~repro.hyperconnect.efifo.EFifoLink` (HA side).
    out_ar / out_aw:
        Registered single-stage channels towards the EXBAR; their one
        cycle of latency is the TS's address-path latency.
    config:
        Shared :class:`PortConfig` (also mutated via the register file).
    """

    def __init__(self, sim, name: str, port_index: int,
                 ha_link: EFifoLink, out_ar: Channel, out_aw: Channel,
                 config: Optional[PortConfig] = None) -> None:
        super().__init__(sim, name)
        self.port_index = port_index
        self.ha_link = ha_link
        self.out_ar = out_ar
        self.out_aw = out_aw
        self.config = config if config is not None else PortConfig()
        self.config.validate()
        #: sub-requests produced by the splitter, awaiting issue
        self._pending_ar: Deque[AddrBeat] = deque()
        self._pending_aw: Deque[AddrBeat] = deque()
        #: in-flight sub-transactions (issued, not yet completed)
        self.outstanding_reads = 0
        self.outstanding_writes = 0
        #: remaining reservation budget in the current period
        self.budget_remaining: Optional[int] = self.config.budget
        #: global enable flag mirrored from the central unit
        self.enabled = True
        self.stalled_on_budget = 0   # cycles a request waited on budget
        self.splits_performed = 0

    # ------------------------------------------------------------------
    # central-unit interface
    # ------------------------------------------------------------------

    def recharge(self) -> None:
        """Synchronous budget recharge at the reservation period boundary."""
        self.budget_remaining = self.config.budget

    def note_read_complete(self) -> None:
        """A sub-read's last data beat was delivered (EXBAR callback)."""
        if self.outstanding_reads <= 0:
            raise ConfigurationError(
                f"{self.name}: read completion with none outstanding")
        self.outstanding_reads -= 1

    def note_write_complete(self) -> None:
        """A sub-write's response arrived (EXBAR callback)."""
        if self.outstanding_writes <= 0:
            raise ConfigurationError(
                f"{self.name}: write completion with none outstanding")
        self.outstanding_writes -= 1

    # ------------------------------------------------------------------

    @property
    def coupled(self) -> bool:
        """Mirrors the eFIFO gate state."""
        return self.ha_link.coupled

    def _budget_available(self) -> bool:
        if self.budget_remaining is None:
            return True
        return self.budget_remaining > 0

    def _consume_budget(self) -> None:
        if self.budget_remaining is not None:
            self.budget_remaining -= 1

    def _split(self, beat: AddrBeat) -> Deque[AddrBeat]:
        """Equalize one request to the nominal burst size."""
        nominal = self.config.nominal_burst
        beat.port = self.port_index
        if beat.length <= nominal:
            beat.final_sub = True
            return deque((beat,))
        pieces = split_burst(beat.address, beat.length, beat.size_bytes,
                             nominal)
        self.splits_performed += 1
        return deque(
            beat.split_child(addr, length, final_sub=index == len(pieces) - 1)
            for index, (addr, length) in enumerate(pieces))

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if not self.coupled or not self.enabled:
            return
        # ingest at most one new request per channel per cycle, keeping the
        # pending queues shallow (the eFIFO provides the real buffering)
        if not self._pending_ar and self.ha_link.ar.can_pop():
            self._pending_ar = self._split(self.ha_link.ar.pop())
        if not self._pending_aw and self.ha_link.aw.can_pop():
            self._pending_aw = self._split(self.ha_link.aw.pop())
        # forward at most one sub-request per address channel per cycle,
        # subject to the outstanding limit and the reservation budget
        if self._pending_ar:
            if (self.outstanding_reads < self.config.max_outstanding
                    and self._budget_available()
                    and self.out_ar.can_push()):
                sub = self._pending_ar.popleft()
                sub.stamps["ts_forward"] = cycle
                self.out_ar.push(sub)
                self.outstanding_reads += 1
                self._consume_budget()
                self.config.issued_read += 1
            elif not self._budget_available():
                self.stalled_on_budget += 1
        if self._pending_aw:
            if (self.outstanding_writes < self.config.max_outstanding
                    and self._budget_available()
                    and self.out_aw.can_push()):
                sub = self._pending_aw.popleft()
                sub.stamps["ts_forward"] = cycle
                self.out_aw.push(sub)
                self.outstanding_writes += 1
                self._consume_budget()
                self.config.issued_write += 1
            elif not self._budget_available():
                self.stalled_on_budget += 1

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick`: decoupled/disabled supervisors are fully
        idle; otherwise the TS acts when it can ingest, can forward, or is
        budget-stalled (the stall counter makes a budget-blocked cycle a
        state change, so it must not be skipped).
        """
        if not self.coupled or not self.enabled:
            return True
        if not self._pending_ar and self.ha_link.ar.can_pop():
            return False
        if not self._pending_aw and self.ha_link.aw.can_pop():
            return False
        if self._pending_ar:
            if not self._budget_available():
                return False
            if (self.outstanding_reads < self.config.max_outstanding
                    and self.out_ar.can_push()):
                return False
        if self._pending_aw:
            if not self._budget_available():
                return False
            if (self.outstanding_writes < self.config.max_outstanding
                    and self.out_aw.can_push()):
                return False
        return True

    def reset(self) -> None:
        self._pending_ar.clear()
        self._pending_aw.clear()
        self.outstanding_reads = 0
        self.outstanding_writes = 0
        self.budget_remaining = self.config.budget
        self.sim.wake()
