"""In-order adapter: HyperConnect support for out-of-order platforms.

The paper leaves out-of-order completion "as a future work to make the
AXI HyperConnect compatible with future platforms".  This module
implements that feature as a self-contained pipeline stage placed between
the HyperConnect's master port and an out-of-order memory subsystem
(:class:`repro.memory.ooo.OutOfOrderMemory`):

* every forwarded read/write is re-tagged with a unique AXI ID, so the
  downstream controller is free to reorder across transactions while the
  AXI per-ID rule keeps each transaction intact;
* returning R and B beats are buffered per ID and released upstream in
  the original grant order, restoring exactly the in-order contract the
  HyperConnect's routing information relies on.

The adapter is transparent: same links, same beat objects (address beats
are shallow-copied so upstream bookkeeping never sees the re-tagged IDs),
one cycle of latency in each direction (its queues are registered
channels like every other stage).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List

from ..axi.idgen import IdAllocator
from ..axi.payloads import AddrBeat, DataBeat, RespBeat
from ..axi.port import AxiLink
from ..sim.component import Component
from ..sim.errors import ConfigurationError


class InOrderAdapter(Component):
    """Re-tagging, re-ordering bridge between two AXI links.

    Parameters
    ----------
    upstream:
        Link whose master side is driven by the HyperConnect (in-order
        world).
    downstream:
        Link served by the (possibly out-of-order) memory subsystem.
    id_bits:
        Width of the tracking-ID space; bounds outstanding transactions.
    buffer_beats:
        Total R beats the reorder buffer may hold.  Admission control
        reserves buffer space *before* forwarding a read downstream, so
        an overtaken oldest transaction can always land its data — the
        classic reorder-buffer deadlock is impossible by construction.
        Must be at least the largest forwarded burst length (the nominal
        burst, after HyperConnect equalization).
    """

    def __init__(self, sim, name: str, upstream: AxiLink,
                 downstream: AxiLink, id_bits: int = 6,
                 buffer_beats: int = 256) -> None:
        super().__init__(sim, name)
        if buffer_beats < 1:
            raise ConfigurationError("buffer_beats must be >= 1")
        self.upstream = upstream
        self.downstream = downstream
        self.buffer_beats = buffer_beats
        self._ids = IdAllocator(id_bits)
        #: grant-order bookkeeping: [tracking_id, original_id, beats_left]
        self._read_order: Deque[list] = deque()
        self._write_order: Deque[list] = deque()
        #: out-of-order arrivals, keyed by tracking id
        self._read_buffers: Dict[int, List[DataBeat]] = {}
        self._resp_buffers: Dict[int, RespBeat] = {}
        self._buffered_beats = 0
        #: buffer space promised to forwarded-but-unreleased reads
        self._reserved_beats = 0
        #: beats that arrived for a transaction other than the oldest
        #: outstanding one while the oldest had produced nothing yet —
        #: direct evidence the downstream served out of order
        self.out_of_order_arrivals = 0

    # ------------------------------------------------------------------
    # request path (upstream -> downstream)
    # ------------------------------------------------------------------

    def _forward_request(self, source, destination,
                         order: Deque[list]) -> None:
        if not source.can_pop() or not destination.can_push():
            return
        if not self._ids.available():
            return
        beat: AddrBeat = source.front()
        is_read = order is self._read_order
        if is_read:
            if beat.length > self.buffer_beats:
                raise ConfigurationError(
                    f"{self.name}: burst of {beat.length} beats exceeds "
                    f"the reorder buffer ({self.buffer_beats} beats); "
                    f"raise buffer_beats or lower the nominal burst")
            if self._reserved_beats + beat.length > self.buffer_beats:
                return  # admission control: no space promised yet
            self._reserved_beats += beat.length
        tracking_id = self._ids.allocate()
        retagged = dataclasses.replace(beat, txn_id=tracking_id)
        source.pop()
        destination.push(retagged)
        order.append([tracking_id, beat.txn_id, beat.length, beat])

    # ------------------------------------------------------------------
    # return path (downstream -> upstream), in original order
    # ------------------------------------------------------------------

    def _ingest_read_data(self) -> None:
        if not self.downstream.r.can_pop():
            return
        if self._buffered_beats >= self.buffer_beats:
            return
        beat: DataBeat = self.downstream.r.pop()
        if (self._read_order and beat.txn_id != self._read_order[0][0]
                and not self._read_buffers.get(self._read_order[0][0])):
            self.out_of_order_arrivals += 1
        self._read_buffers.setdefault(beat.txn_id, []).append(beat)
        self._buffered_beats += 1

    def _release_read_data(self) -> None:
        if not self._read_order or not self.upstream.r.can_push():
            return
        tracking_id, original_id, beats_left, request = self._read_order[0]
        buffered = self._read_buffers.get(tracking_id)
        if not buffered:
            return
        beat = buffered.pop(0)
        self._buffered_beats -= 1
        beat.txn_id = original_id
        beat.addr_beat = request
        self.upstream.r.push(beat)
        self._reserved_beats -= 1
        entry = self._read_order[0]
        entry[2] -= 1
        if entry[2] == 0:
            self._read_order.popleft()
            self._read_buffers.pop(tracking_id, None)
            self._ids.release(tracking_id)

    def _ingest_write_response(self) -> None:
        if not self.downstream.b.can_pop():
            return
        response: RespBeat = self.downstream.b.front()
        if response.txn_id in self._resp_buffers:
            return  # cannot happen with unique ids; defensive
        self.downstream.b.pop()
        self._resp_buffers[response.txn_id] = response

    def _release_write_response(self) -> None:
        if not self._write_order or not self.upstream.b.can_push():
            return
        tracking_id, original_id, __, request = self._write_order[0]
        response = self._resp_buffers.pop(tracking_id, None)
        if response is None:
            return
        response.txn_id = original_id
        response.addr_beat = request
        self.upstream.b.push(response)
        self._write_order.popleft()
        self._ids.release(tracking_id)

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        self._forward_request(self.upstream.ar, self.downstream.ar,
                              self._read_order)
        self._forward_request(self.upstream.aw, self.downstream.aw,
                              self._write_order)
        # write data needs no re-tagging: it follows AW order on both
        # sides (the OoO controller never reorders writes)
        if self.upstream.w.can_pop() and self.downstream.w.can_push():
            self.downstream.w.push(self.upstream.w.pop())
        self._ingest_read_data()
        self._release_read_data()
        self._ingest_write_response()
        self._release_write_response()

    # ------------------------------------------------------------------
    # fast-path contract
    # ------------------------------------------------------------------

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick` sub-step by sub-step.

        The only subtle case is the read-forward guard: an oversized
        burst at the upstream AR head makes :meth:`tick` *raise*, which
        is a (terminal) state change — the cycle must not be skipped, or
        the fast path would hide the configuration error.
        """
        up, down = self.upstream, self.downstream
        if self._ids.available():
            if up.ar.can_pop() and down.ar.can_push():
                beat = up.ar.front()
                if beat.length > self.buffer_beats:
                    return False  # tick would raise
                if (self._reserved_beats + beat.length
                        <= self.buffer_beats):
                    return False
            if up.aw.can_pop() and down.aw.can_push():
                return False
        if up.w.can_pop() and down.w.can_push():
            return False
        if down.r.can_pop() and self._buffered_beats < self.buffer_beats:
            return False
        if (self._read_order and up.r.can_push()
                and self._read_buffers.get(self._read_order[0][0])):
            return False
        if down.b.can_pop():
            return False
        if (self._write_order and up.b.can_push()
                and self._write_order[0][0] in self._resp_buffers):
            return False
        return True

    def wake_channels(self) -> list:
        """Both links' channels; the adapter has no internal timers —
        every guard in :meth:`is_quiescent` reads channel state plus
        bookkeeping that only :meth:`tick` itself mutates."""
        up, down = self.upstream, self.downstream
        return [up.ar, up.aw, up.w, up.r, up.b,
                down.ar, down.aw, down.w, down.r, down.b]

    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Transactions forwarded downstream and not yet fully released."""
        return self._ids.in_flight

    def idle(self) -> bool:
        """True when nothing is tracked or buffered."""
        return (not self._read_order and not self._write_order
                and self._buffered_beats == 0
                and not self._resp_buffers)
