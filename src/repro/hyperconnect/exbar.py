"""EXBAR: the efficient crossbar of the AXI HyperConnect.

The EXBAR solves conflicts between the address requests propagated by the
Transaction Supervisors using **round-robin arbitration with a fixed
granularity of one transaction per TS module per round-cycle** — the
property that bounds per-transaction interference to ``N - 1`` competing
transactions (versus ``g * (N - 1)`` for interconnects with variable
granularity ``g``).

It also keeps the *routing information* — the order in which requests were
granted — in circular buffers, and uses it to route the R, W and B channels
**proactively**: data and response beats are moved directly between the
master-side queues and the per-port eFIFO queues with no additional
latency, exactly matching the paper's latency budget (one cycle through
the EXBAR on address requests, zero on data/response channels).

Merge duties performed while routing (burst equalization bookkeeping):

* R: RLAST is cleared on the last beat of non-final sub-bursts so the HA
  sees a single seamless burst;
* W: beats from the granted port are re-chunked with WLAST per sub-burst;
* B: responses of non-final sub-writes are absorbed (their response code
  folded into the origin's accumulator); only the final sub-write's B —
  carrying the merged "worst" response — reaches the HA.

Decoupling safety: if a port is decoupled while its sub-transactions are
in flight, returning R/B beats are dropped (and counted) and owed W beats
are injected as null flush beats, so a misbehaving HA can never deadlock
the shared path — an isolation property the hypervisor relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..axi.payloads import RespBeat, WriteBeat
from ..axi.port import AxiLink
from ..sim.channel import Channel
from ..sim.component import Component
from .efifo import EFifoLink
from .supervisor import TransactionSupervisor


class Exbar(Component):
    """The crossbar and proactive data-path router.

    Parameters
    ----------
    supervisors:
        The per-port TS modules (completion notifications flow back to
        them so outstanding counters stay accurate).
    ts_ar / ts_aw:
        Per-port registered channels carrying sub-requests from the TSs.
    ha_links:
        Per-port eFIFO links (data-path endpoints on the HA side).
    out_ar / out_aw:
        Registered single-stage channels towards the master eFIFO; their
        latency is the EXBAR's address-path latency.
    master_link:
        The HyperConnect's master-side link (data-path endpoint towards
        the FPGA-PS interface).
    """

    def __init__(self, sim, name: str,
                 supervisors: List[TransactionSupervisor],
                 ts_ar: List[Channel], ts_aw: List[Channel],
                 ha_links: List[EFifoLink],
                 out_ar: Channel, out_aw: Channel,
                 master_link: AxiLink) -> None:
        super().__init__(sim, name)
        if not (len(supervisors) == len(ts_ar) == len(ts_aw)
                == len(ha_links)):
            raise ValueError("per-port argument lists must align")
        self.supervisors = supervisors
        self.ts_ar = ts_ar
        self.ts_aw = ts_aw
        self.ha_links = ha_links
        self.out_ar = out_ar
        self.out_aw = out_aw
        self.master_link = master_link
        self.n_ports = len(supervisors)
        self._rr_ar = 0
        self._rr_aw = 0
        #: routing information (circular buffers in the RTL): grant order
        #: of sub-reads / sub-writes, consumed by the R / W+B routers.
        #: ``port`` and ``final_sub`` are snapshotted at grant time: when
        #: HyperConnects cascade, the downstream level's TS re-stamps both
        #: fields on the same AddrBeat object, so routing must not re-read
        #: them from the beat later.
        self._route_r: Deque[list] = deque()
        self._route_w: Deque[list] = deque()
        self._route_b: Deque[list] = deque()
        self.grants_ar = 0
        self.grants_aw = 0
        self.dropped_beats = 0   # beats destined to a decoupled port
        self.flush_beats = 0     # null W beats injected for decoupled ports

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        # Round-robin arbitration (one grant per address channel, fixed
        # granularity of one transaction) is written out inline and the
        # routing sub-steps are gated on their routing buffers: this tick
        # runs every cycle of every saturated-bandwidth experiment, so
        # call economy here is measurable end to end.
        n_ports = self.n_ports
        out = self.out_ar
        if out.capacity is None or out._occupancy < out.capacity:
            ts_ar = self.ts_ar
            port = self._rr_ar
            scan = n_ports
            while scan:
                scan -= 1
                channel = ts_ar[port]
                queue = channel._queue
                if queue and queue[0][0] <= cycle:
                    beat = channel.pop()
                    out.push(beat)
                    beat.stamps["exbar_grant"] = cycle
                    # granularity 1: the pointer moves past the granted
                    # port
                    port += 1
                    self._rr_ar = port if port < n_ports else 0
                    self.grants_ar += 1
                    self._route_r.append(
                        [beat.port, beat, beat.length, beat.final_sub])
                    break
                port += 1
                if port >= n_ports:
                    port = 0
        out = self.out_aw
        if out.capacity is None or out._occupancy < out.capacity:
            ts_aw = self.ts_aw
            port = self._rr_aw
            scan = n_ports
            while scan:
                scan -= 1
                channel = ts_aw[port]
                queue = channel._queue
                if queue and queue[0][0] <= cycle:
                    beat = channel.pop()
                    out.push(beat)
                    beat.stamps["exbar_grant"] = cycle
                    port += 1
                    self._rr_aw = port if port < n_ports else 0
                    self.grants_aw += 1
                    self._route_w.append([beat.port, beat, beat.length])
                    self._route_b.append([beat.port, beat.final_sub, beat])
                    break
                port += 1
                if port >= n_ports:
                    port = 0
        # the master-side guard of each router is hoisted here so a cycle
        # with nothing to move costs attribute tests instead of calls
        master = self.master_link
        if self._route_w:
            out = master.w
            if out.capacity is None or out._occupancy < out.capacity:
                self._route_write_data(cycle)
        if self._route_r:
            queue = master.r._queue
            if queue and queue[0][0] <= cycle:
                self._route_read_data(cycle)
        if self._route_b:
            queue = master.b._queue
            if queue and queue[0][0] <= cycle:
                self._route_write_responses(cycle)

    # ------------------------------------------------------------------
    # proactive data-path routing
    # ------------------------------------------------------------------

    def _route_write_data(self, cycle: int) -> None:
        """Move one W beat from the granted port to the master side.

        Caller guarantees ``self._route_w`` is non-empty and the master W
        channel has room; the remaining channel guards are inlined (see
        the tick docstring).
        """
        master_w = self.master_link.w
        entry = self._route_w[0]
        port, sub, beats_left = entry
        link = self.ha_links[port]
        if not link.gate.coupled:
            # flush: complete the owed sub-burst with null beats so the
            # memory subsystem (and every other port) is never blocked by
            # a decoupled HA
            beat = WriteBeat(last=beats_left == 1, data=None, addr_beat=sub)
            self.flush_beats += 1
        else:
            beat = link.w.try_pop()
            if beat is None:
                return
            beat.last = beats_left == 1
            beat.addr_beat = sub
        master_w.push(beat)
        entry[2] -= 1
        if entry[2] == 0:
            self._route_w.popleft()

    def _route_read_data(self, cycle: int) -> None:
        """Route one R beat from the master side to its port.

        Caller guarantees ``self._route_r`` is non-empty and the master R
        head is visible this cycle.
        """
        master_r = self.master_link.r
        beat = master_r._queue[0][1]
        entry = self._route_r[0]
        port, sub, beats_left, final_sub = entry
        link = self.ha_links[port]
        if link.gate.coupled:
            r = link.r
            if r.capacity is not None and r._occupancy >= r.capacity:
                return  # backpressure towards the memory side
            master_r.pop()
            if beat.last and not final_sub:
                beat.last = False   # seam between merged sub-bursts
            beat.addr_beat = sub
            r.push(beat)
        else:
            master_r.pop()
            self.dropped_beats += 1
        entry[2] -= 1
        if entry[2] == 0:
            self._route_r.popleft()
            self.supervisors[port].note_read_complete()

    def _route_write_responses(self, cycle: int) -> None:
        """Consume one B response, merging per the equalization rules.

        Caller guarantees ``self._route_b`` is non-empty and the master B
        head is visible this cycle.
        """
        master_b = self.master_link.b
        response = master_b._queue[0][1]
        port, final_sub, sub = self._route_b[0]
        link = self.ha_links[port]
        origin = sub.origin()
        if final_sub and link.gate.coupled:
            if not link.b.can_push():
                return
            master_b.pop()
            merged = origin.resp_acc.merged_with(response.resp)
            link.b.push(RespBeat(txn_id=origin.txn_id, resp=merged,
                                 addr_beat=origin))
        else:
            master_b.pop()
            origin.resp_acc = origin.resp_acc.merged_with(response.resp)
            if final_sub:
                self.dropped_beats += 1
        self._route_b.popleft()
        self.supervisors[port].note_write_complete()

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors every tick action's guard exactly.

        The arbitration pointers only move on a grant, and the routing
        buffers only change when a beat actually transfers, so a cycle in
        which every guard below fails is a strict no-op.
        """
        if self.out_ar.can_push():
            for channel in self.ts_ar:
                if channel.can_pop():
                    return False
        if self.out_aw.can_push():
            for channel in self.ts_aw:
                if channel.can_pop():
                    return False
        master = self.master_link
        if self._route_w and master.w.can_push():
            port = self._route_w[0][0]
            link = self.ha_links[port]
            if not link.coupled or link.w.can_pop():
                return False
        if self._route_r and master.r.can_pop():
            port = self._route_r[0][0]
            link = self.ha_links[port]
            if not link.coupled or link.r.can_push():
                return False
        if self._route_b and master.b.can_pop():
            port, final_sub, _sub = self._route_b[0]
            link = self.ha_links[port]
            if not (final_sub and link.coupled) or link.b.can_push():
                return False
        return True

    def wake_channels(self) -> list:
        """Every channel whose activity can end the EXBAR's quiescence.

        The EXBAR has no internal timers (``next_event_cycle`` stays
        ``None``): its state only moves when a beat can transfer, which
        requires activity on one of the channels below.  Gate flips
        (couple/decouple) call :meth:`Simulator.wake` globally.
        """
        master = self.master_link
        channels = [self.out_ar, self.out_aw, master.w, master.r, master.b]
        channels.extend(self.ts_ar)
        channels.extend(self.ts_aw)
        for link in self.ha_links:
            channels.extend((link.w, link.r, link.b))
        return channels

    # ------------------------------------------------------------------

    @property
    def routing_backlog(self) -> int:
        """Entries currently held in the routing-information buffers."""
        return len(self._route_r) + len(self._route_w) + len(self._route_b)

    def reset(self) -> None:
        self._rr_ar = 0
        self._rr_aw = 0
        self._route_r.clear()
        self._route_w.clear()
        self._route_b.clear()
        self.sim.wake()
