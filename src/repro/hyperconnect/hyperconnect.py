"""Assembly of the full AXI HyperConnect IP.

Pipeline structure (Fig. 2 of the paper) and the latency each stage adds
to address requests::

    HA --> [eFIFO slave]  --> [TS] --> [EXBAR] --> [eFIFO master] --> PS
              1 cycle        1 cycle    1 cycle        1 cycle

giving the measured d_AR = d_AW = 4 cycles.  The R/W/B channels traverse
only the two eFIFO boundaries (the TS and EXBAR route them proactively),
giving d_R = d_W = d_B = 2 cycles.

In this model each "1 cycle" is one registered :class:`~repro.sim.Channel`:
the HA-side :class:`~repro.hyperconnect.efifo.EFifoLink` queues (slave
eFIFO), the TS output channels, the EXBAR output channels, and the
master-side link channels (master eFIFO).  The data channels of the master
eFIFO are the master link's queues themselves; the EXBAR moves data beats
directly between them and the per-port eFIFO queues, so no extra cycles
appear on R/W/B — matching the paper's proactive design.
"""

from __future__ import annotations

from typing import List, Optional

from ..axi.port import AxiLink
from ..axi.types import AxiVersion
from ..sim.channel import Channel
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from .central import CentralUnit
from .efifo import EFifoLink
from .exbar import Exbar
from .regs import (
    BUDGET_UNLIMITED,
    PORT_BASE,
    PORT_BUDGET,
    PORT_CTRL,
    PORT_FAULTS,
    PORT_ISSUED_READ,
    PORT_ISSUED_WRITE,
    PORT_MAX_OUTSTANDING,
    PORT_NOMINAL_BURST,
    PORT_STRIDE,
    PORT_TIMEOUT,
    REG_CTRL,
    REG_PERIOD,
    REGION_BASE_OFFSET,
    REGION_BASE_REG,
    REGION_GRANULE,
    REGION_PAGES_REG,
    REGION_STRIDE,
    ControlSlave,
    RegisterFile,
    port_register,
)
from .supervisor import PortConfig, TransactionSupervisor


class MasterEFifo(Component):
    """Address side of the master eFIFO: one registered forwarding stage."""

    def __init__(self, sim, name: str, in_ar: Channel, in_aw: Channel,
                 master_link: AxiLink) -> None:
        super().__init__(sim, name)
        self.in_ar = in_ar
        self.in_aw = in_aw
        self.master_link = master_link

    def tick(self, cycle: int) -> None:
        # channel guards inlined: the forwarder runs (or is polled) every
        # cycle of every bandwidth experiment
        in_ar = self.in_ar
        queue = in_ar._queue
        if queue and queue[0][0] <= cycle:
            out = self.master_link.ar
            if out.capacity is None or out._occupancy < out.capacity:
                out.push(in_ar.pop())
        in_aw = self.in_aw
        queue = in_aw._queue
        if queue and queue[0][0] <= cycle:
            out = self.master_link.aw
            if out.capacity is None or out._occupancy < out.capacity:
                out.push(in_aw.pop())

    def is_quiescent(self, cycle: int) -> bool:
        """Stateless forwarder: only acts when a beat can move."""
        queue = self.in_ar._queue
        if queue and queue[0][0] <= cycle:
            out = self.master_link.ar
            if out.capacity is None or out._occupancy < out.capacity:
                return False
        queue = self.in_aw._queue
        if queue and queue[0][0] <= cycle:
            out = self.master_link.aw
            if out.capacity is None or out._occupancy < out.capacity:
                return False
        return True

    def wake_channels(self) -> list:
        """Stateless: only channel activity can make a beat movable."""
        return [self.in_ar, self.in_aw,
                self.master_link.ar, self.master_link.aw]


class HyperConnect:
    """The AXI HyperConnect: N slave ports, one master port.

    Parameters
    ----------
    sim, name:
        Simulation bookkeeping.
    n_ports:
        Number of input (slave) ports, one per hardware accelerator.
    master_link:
        The :class:`~repro.axi.port.AxiLink` connecting the HyperConnect's
        master port to the FPGA-PS interface / memory subsystem.  Its
        channels play the role of the master eFIFO's queues.
    period:
        Initial reservation period T (cycles).
    data_bytes / version:
        Bus parameters of the slave ports (must match the master link).

    Attributes
    ----------
    ports:
        Per-port :class:`EFifoLink`; hardware accelerators drive these.
    regs:
        The memory-mapped :class:`RegisterFile` — normally accessed
        through :class:`repro.hyperconnect.driver.HyperConnectDriver`.
    """

    def __init__(self, sim, name: str, n_ports: int, master_link: AxiLink,
                 period: int = 65536,
                 data_bytes: Optional[int] = None,
                 version: Optional[AxiVersion] = None,
                 addr_depth: int = 4, data_depth: int = 32) -> None:
        if n_ports < 1:
            raise ConfigurationError("HyperConnect needs >= 1 port")
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.master_link = master_link
        data_bytes = (master_link.data_bytes if data_bytes is None
                      else data_bytes)
        version = master_link.version if version is None else version
        if data_bytes != master_link.data_bytes:
            raise ConfigurationError(
                "slave-port width must match the master link")

        self.ports: List[EFifoLink] = [
            EFifoLink(sim, f"{name}.p{i}", data_bytes=data_bytes,
                      version=version, addr_depth=addr_depth,
                      data_depth=data_depth)
            for i in range(n_ports)
        ]
        # Declare each port as its own shard for the parallel kernel:
        # the port's supervisor and whatever accelerator engine drives
        # the link pick this key up through their shard_affinity()
        # hooks, so the per-port eFIFO/TS pipelines can tick on
        # concurrent workers while the EXBAR/central-unit hub stays
        # serial (see repro.sim.partition).
        for i, port_link in enumerate(self.ports):
            port_link.shard_key = f"{name}.p{i}"
        self.configs: List[PortConfig] = [PortConfig()
                                          for _ in range(n_ports)]
        # registered stages: TS outputs and EXBAR outputs (capacity 2 keeps
        # full throughput through a latency-1 stage)
        self._ts_ar = [Channel(sim, f"{name}.ts{i}.AR", 1, 2)
                       for i in range(n_ports)]
        self._ts_aw = [Channel(sim, f"{name}.ts{i}.AW", 1, 2)
                       for i in range(n_ports)]
        self._xbar_ar = Channel(sim, f"{name}.xbar.AR", 1, 2)
        self._xbar_aw = Channel(sim, f"{name}.xbar.AW", 1, 2)

        self.supervisors: List[TransactionSupervisor] = [
            TransactionSupervisor(sim, f"{name}.TS{i}", i, self.ports[i],
                                  self._ts_ar[i], self._ts_aw[i],
                                  self.configs[i])
            for i in range(n_ports)
        ]
        self.exbar = Exbar(sim, f"{name}.EXBAR", self.supervisors,
                           self._ts_ar, self._ts_aw, self.ports,
                           self._xbar_ar, self._xbar_aw, master_link)
        self.master_efifo = MasterEFifo(sim, f"{name}.mEFIFO",
                                        self._xbar_ar, self._xbar_aw,
                                        master_link)
        self.central = CentralUnit(sim, f"{name}.central",
                                   self.supervisors, period=period)
        self.regs = RegisterFile(n_ports)
        self.regs.poke(REG_PERIOD, period)
        self.regs.on_write(self._apply_register)
        for i in range(n_ports):
            self.regs.provide(
                port_register(i, PORT_ISSUED_READ),
                (lambda cfg=self.configs[i]: cfg.issued_read))
            self.regs.provide(
                port_register(i, PORT_ISSUED_WRITE),
                (lambda cfg=self.configs[i]: cfg.issued_write))
            # live gate state: a hardware-initiated decouple (watchdog
            # containment) must be visible through PORT_CTRL reads
            self.regs.provide(
                port_register(i, PORT_CTRL),
                (lambda link=self.ports[i]: 1 if link.coupled else 0))
            self.regs.provide(
                port_register(i, PORT_FAULTS),
                (lambda ts=self.supervisors[i]: ts.fault_stats.trips))
        self.control_slave: Optional[ControlSlave] = None

    # ------------------------------------------------------------------
    # register side effects (runtime reconfiguration)
    # ------------------------------------------------------------------

    def _apply_register(self, offset: int, value: int) -> None:
        # every register side effect may change some component's
        # quiescence, so drop any cached bulk-skip horizon
        self.sim.wake()
        if offset == REG_CTRL:
            self.central.enabled = bool(value & 1)
            return
        if offset == REG_PERIOD:
            self.central.period = max(1, value)
            return
        if offset < PORT_BASE:
            return
        if offset >= REGION_BASE_OFFSET:
            port, field_offset = divmod(
                offset - REGION_BASE_OFFSET, REGION_STRIDE)
            if port >= self.n_ports:
                return
            config = self.configs[port]
            if field_offset == REGION_BASE_REG:
                config.region_base = value * REGION_GRANULE
            elif field_offset == REGION_PAGES_REG:
                config.region_bytes = value * REGION_GRANULE
            return
        port, field_offset = divmod(offset - PORT_BASE, PORT_STRIDE)
        if port >= self.n_ports:
            return
        config = self.configs[port]
        if field_offset == PORT_CTRL:
            if value & 1:
                self.ports[port].couple()
            else:
                self.ports[port].decouple()
        elif field_offset == PORT_NOMINAL_BURST:
            config.nominal_burst = max(1, value)
        elif field_offset == PORT_MAX_OUTSTANDING:
            config.max_outstanding = max(1, value)
        elif field_offset == PORT_BUDGET:
            config.budget = (None if value == BUDGET_UNLIMITED
                             else value)
            # a newly imposed budget takes effect at the next synchronous
            # recharge; an *unlimited* setting applies immediately
            if config.budget is None:
                self.supervisors[port].budget_remaining = None
        elif field_offset == PORT_TIMEOUT:
            # 0 disarms the watchdog; pending deadlines re-time from the
            # stored issue cycles on the very next poll
            config.timeout_cycles = None if value == 0 else value

    # ------------------------------------------------------------------

    def attach_control_interface(self, link: AxiLink,
                                 base_address: int = 0xA000_0000
                                 ) -> ControlSlave:
        """Expose the register file as an AXI slave on ``link``.

        In a deployment this link hangs off the PS-FPGA interface and is
        mapped into the hypervisor's address space only.
        """
        self.control_slave = ControlSlave(
            self.sim, f"{self.name}.ctrl", link, self.regs, base_address)
        return self.control_slave

    # convenience views ----------------------------------------------------

    def port(self, index: int) -> EFifoLink:
        """The slave link HAs connect to."""
        return self.ports[index]

    @property
    def total_grants(self) -> int:
        """Address grants performed by the EXBAR since reset."""
        return self.exbar.grants_ar + self.exbar.grants_aw

    def idle(self) -> bool:
        """True when no beat is in flight anywhere inside the IP."""
        internal = [*self._ts_ar, *self._ts_aw, self._xbar_ar,
                    self._xbar_aw]
        return (all(ch.is_idle for ch in internal)
                and all(link.is_idle() for link in self.ports)
                and self.exbar.routing_backlog == 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HyperConnect({self.name!r}, n_ports={self.n_ports})"
