"""Open-source driver for the AXI HyperConnect.

The paper ships the HyperConnect with "an open-source driver to control
it"; this module is that driver's Python equivalent.  It speaks exclusively
through the register map (:mod:`repro.hyperconnect.regs`), so everything it
does could equally be performed by a processor writing the memory-mapped
control interface — which is exactly how the hypervisor model uses it.

The most important convenience is :meth:`HyperConnectDriver.set_bandwidth_shares`,
which converts the "HC-X-Y" percentage notation of the paper's Fig. 5 into
reservation budgets: a port reserved fraction ``f`` of the bus receives
``floor(f * T / nominal_burst)`` sub-transaction slots per period (each
equalized sub-transaction occupies ``nominal_burst`` data-bus cycles).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..sim.errors import ConfigurationError
from .hyperconnect import HyperConnect
from .regs import (
    BUDGET_UNLIMITED,
    PORT_BUDGET,
    PORT_CTRL,
    PORT_FAULTS,
    PORT_ISSUED_READ,
    PORT_ISSUED_WRITE,
    PORT_MAX_OUTSTANDING,
    PORT_NOMINAL_BURST,
    PORT_TIMEOUT,
    REG_CTRL,
    REG_N_PORTS,
    REG_PERIOD,
    REGION_BASE_REG,
    REGION_GRANULE,
    REGION_PAGES_REG,
    RegisterFile,
    port_register,
    region_epoch_register,
    region_register,
)


class HyperConnectDriver:
    """Typed API over the HyperConnect register map."""

    def __init__(self, target) -> None:
        """``target`` may be a :class:`HyperConnect` or a raw
        :class:`RegisterFile` (e.g. one reached through a control link)."""
        if isinstance(target, HyperConnect):
            self.regs: RegisterFile = target.regs
        elif isinstance(target, RegisterFile):
            self.regs = target
        else:
            raise ConfigurationError(
                f"driver target must be HyperConnect or RegisterFile, "
                f"got {type(target).__name__}")

    # ------------------------------------------------------------------
    # global controls
    # ------------------------------------------------------------------

    @property
    def n_ports(self) -> int:
        """Number of slave ports of the attached IP."""
        return self.regs.read(REG_N_PORTS)

    def enable(self) -> None:
        """Allow all (coupled) ports to forward transactions."""
        self.regs.write(REG_CTRL, self.regs.read(REG_CTRL) | 1)

    def disable(self) -> None:
        """Globally freeze new request forwarding (in-flight completes)."""
        self.regs.write(REG_CTRL, self.regs.read(REG_CTRL) & ~1)

    def set_period(self, cycles: int) -> None:
        """Set the reservation period T (common to all ports)."""
        if cycles < 1:
            raise ConfigurationError("period must be >= 1 cycle")
        self.regs.write(REG_PERIOD, cycles)

    @property
    def period(self) -> int:
        """Current reservation period T in cycles."""
        return self.regs.read(REG_PERIOD)

    # ------------------------------------------------------------------
    # per-port controls
    # ------------------------------------------------------------------

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ConfigurationError(
                f"port {port} out of range (0..{self.n_ports - 1})")

    def couple(self, port: int) -> None:
        """(Re)connect a port to the memory subsystem."""
        self._check_port(port)
        self.regs.write(port_register(port, PORT_CTRL), 1)

    def decouple(self, port: int) -> None:
        """Disconnect a port (isolating a misbehaving/faulty HA)."""
        self._check_port(port)
        self.regs.write(port_register(port, PORT_CTRL), 0)

    def is_coupled(self, port: int) -> bool:
        """Whether the port may currently exchange data."""
        self._check_port(port)
        return bool(self.regs.read(port_register(port, PORT_CTRL)) & 1)

    def set_nominal_burst(self, port: int, beats: int) -> None:
        """Set the equalization burst size of a port."""
        self._check_port(port)
        if beats < 1:
            raise ConfigurationError("nominal burst must be >= 1 beat")
        self.regs.write(port_register(port, PORT_NOMINAL_BURST), beats)

    def set_max_outstanding(self, port: int, limit: int) -> None:
        """Set the outstanding sub-transaction limit of a port."""
        self._check_port(port)
        if limit < 1:
            raise ConfigurationError("outstanding limit must be >= 1")
        self.regs.write(port_register(port, PORT_MAX_OUTSTANDING), limit)

    def set_budget(self, port: int, transactions: Optional[int]) -> None:
        """Set a port's reservation budget (``None`` = unlimited)."""
        self._check_port(port)
        if transactions is None:
            self.regs.write(port_register(port, PORT_BUDGET),
                            BUDGET_UNLIMITED)
            return
        if transactions < 0:
            raise ConfigurationError("budget must be >= 0")
        self.regs.write(port_register(port, PORT_BUDGET), transactions)

    def set_watchdog_timeout(self, port: int,
                             cycles: Optional[int]) -> None:
        """Arm (or disarm) a port's transaction watchdog.

        ``cycles`` is the maximum age of an outstanding sub-transaction
        before the port is contained; ``None`` (or 0) disarms the
        watchdog.  Arming it also arms the ingest-time protocol guard.
        """
        self._check_port(port)
        if cycles is None:
            cycles = 0
        if cycles < 0:
            raise ConfigurationError("watchdog timeout must be >= 0")
        self.regs.write(port_register(port, PORT_TIMEOUT), cycles)

    def watchdog_timeout(self, port: int) -> Optional[int]:
        """The port's watchdog timeout (``None`` = disarmed)."""
        self._check_port(port)
        value = self.regs.read(port_register(port, PORT_TIMEOUT))
        return None if value == 0 else value

    def set_region_filter(self, port: int, base: int, size: int) -> None:
        """Program a port's stage-2 region grant.

        Any request whose burst footprint leaves ``[base, base + size)``
        trips containment with DECERR.  ``base`` and ``size`` must be
        multiples of the 4 KiB register granule; ``size == 0`` disables
        the filter (see :meth:`clear_region_filter`).
        """
        self._check_port(port)
        if base < 0 or size < 0:
            raise ConfigurationError("region base/size must be >= 0")
        if base % REGION_GRANULE or size % REGION_GRANULE:
            raise ConfigurationError(
                f"region base/size must be multiples of "
                f"0x{REGION_GRANULE:x}")
        self.regs.write(region_register(port, REGION_BASE_REG),
                        base // REGION_GRANULE)
        self.regs.write(region_register(port, REGION_PAGES_REG),
                        size // REGION_GRANULE)

    def clear_region_filter(self, port: int) -> None:
        """Disable a port's region filter (all addresses pass)."""
        self._check_port(port)
        self.regs.write(region_register(port, REGION_PAGES_REG), 0)

    def region_filter(self, port: int) -> Optional[Dict[str, int]]:
        """The port's programmed grant, or ``None`` when disabled."""
        self._check_port(port)
        pages = self.regs.read(region_register(port, REGION_PAGES_REG))
        if pages == 0:
            return None
        base = self.regs.read(region_register(port, REGION_BASE_REG))
        return {"base": base * REGION_GRANULE,
                "size": pages * REGION_GRANULE}

    def region_epoch(self, port: int) -> int:
        """The port's region-filter retarget counter (read-only reg).

        Bumped by the hypervisor on every grant/revoke/re-grant that
        reprograms the port's filter, so software can observe that a
        revocation has committed with a single register read.
        """
        self._check_port(port)
        return self.regs.read(region_epoch_register(port))

    def note_region_retarget(self, port: int) -> None:
        """Advance a port's region epoch (hypervisor-internal poke)."""
        self._check_port(port)
        reg = region_epoch_register(port)
        self.regs.poke(reg, self.regs.read(reg) + 1)

    def faults(self, port: int) -> int:
        """Containment entries (watchdog + protocol trips) of a port."""
        self._check_port(port)
        return self.regs.read(port_register(port, PORT_FAULTS))

    def issued(self, port: int) -> Dict[str, int]:
        """Live issue counters of a port."""
        self._check_port(port)
        return {
            "read": self.regs.read(port_register(port, PORT_ISSUED_READ)),
            "write": self.regs.read(port_register(port, PORT_ISSUED_WRITE)),
        }

    # ------------------------------------------------------------------
    # bandwidth-reservation convenience (the HC-X-Y notation of Fig. 5)
    # ------------------------------------------------------------------

    def budget_for_share(self, fraction: float, period: Optional[int] = None,
                         nominal_burst: int = 16) -> int:
        """Sub-transaction budget reserving ``fraction`` of the data bus.

        Each equalized sub-transaction moves ``nominal_burst`` beats and
        the bus streams one beat per cycle, so a period of T cycles offers
        ``T / nominal_burst`` transaction slots in total.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"bandwidth fraction must be in (0, 1], got {fraction}")
        if period is None:
            period = self.period
        return max(1, int(fraction * period / nominal_burst))

    def set_bandwidth_shares(self, shares: Mapping[int, float],
                             period: Optional[int] = None) -> Dict[int, int]:
        """Program budgets so each port gets its fraction of the bus.

        ``shares`` maps port index to a bandwidth fraction (fractions may
        sum to <= 1.0; ports not mentioned keep their current budget).
        Returns the budgets programmed, per port.

        Semantics note: a budget is a *cap* ([10]), not a priority —
        arbitration stays round-robin among ports with budget left.  A
        port is therefore only guaranteed more than its fair 1/N share
        when every competitor is capped below its own fair share, which
        is why the paper's HC-X-Y configurations always program both the
        reserved fraction X and its complement Y.
        """
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"bandwidth shares sum to {total:.3f} > 1")
        if period is not None:
            self.set_period(period)
        budgets: Dict[int, int] = {}
        for port, fraction in shares.items():
            self._check_port(port)
            nominal = self.regs.read(
                port_register(port, PORT_NOMINAL_BURST))
            budget = self.budget_for_share(fraction, self.period, nominal)
            self.set_budget(port, budget)
            budgets[port] = budget
        return budgets
