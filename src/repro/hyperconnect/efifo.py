"""eFIFO: the buffered AXI interfaces of the HyperConnect.

Each HyperConnect slave port is an *efficient FIFO* module: five proactive
(always ready to receive when not full) circular buffers, one per AXI
channel, each adding exactly one clock cycle of latency.  In this model the
buffers are the registered :class:`~repro.sim.Channel` queues of an
:class:`EFifoLink` — a drop-in :class:`~repro.axi.port.AxiLink` whose
master-to-slave channels are gated by a :class:`PortGate`.

The gate implements the paper's *decoupling from the memory subsystem*:
when a port is decoupled, "the AXI handshake signals on all the AXI
channels are kept low, not allowing the HA connected to them to exchange
data".  In simulation terms: the gated channels refuse pushes from the HA
(``can_push`` is false, like a de-asserted READY), and the HyperConnect
side stops popping/pushing on the port entirely.
"""

from __future__ import annotations

from typing import Optional

from ..axi.port import AxiLink
from ..sim.channel import Channel


class PortGate:
    """Shared coupled/decoupled state of one HyperConnect input port."""

    __slots__ = ("coupled",)

    def __init__(self, coupled: bool = True) -> None:
        self.coupled = coupled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PortGate(coupled={self.coupled})"


class GatedChannel(Channel):
    """A channel whose producer handshake is gated.

    When the gate is open (coupled) it behaves exactly like a plain
    channel; when closed, ``can_push`` is false — the producer sees a
    de-asserted READY and stalls, exchanging no data.
    """

    __slots__ = ("gate",)

    def __init__(self, sim, name: str, gate: PortGate, latency: int = 1,
                 capacity: Optional[int] = 16) -> None:
        super().__init__(sim, name, latency, capacity)
        self.gate = gate

    def can_push(self, count: int = 1) -> bool:
        if not self.gate.coupled:
            return False
        return super().can_push(count)

    def try_push(self, item) -> bool:
        if not self.gate.coupled:
            return False
        return super().try_push(item)


class EFifoLink(AxiLink):
    """The eFIFO module of one HyperConnect slave port.

    An :class:`~repro.axi.port.AxiLink` whose HA-driven channels (AR, AW,
    W) are :class:`GatedChannel` instances sharing one :class:`PortGate`.
    The return channels (R, B) are plain: the HyperConnect simply stops
    pushing on them while the port is decoupled, which together with the
    gated request channels fully disconnects the HA.

    Queue depths default to the paper's slim design point (shallow address
    queues, data queues sized for a nominal burst in flight).
    """

    #: channel roles driven by the hardware accelerator
    _GATED_ROLES = ("AR", "AW", "W")

    def __init__(self, sim, name: str, data_bytes: int = 16,
                 version=None, latency: int = 1,
                 addr_depth: Optional[int] = 4,
                 data_depth: Optional[int] = 32,
                 coupled: bool = True) -> None:
        self.gate = PortGate(coupled)
        #: partition key for the sharded parallel kernel: the owning
        #: HyperConnect stamps its port identity here, and every
        #: component attached to this link (the port's supervisor, the
        #: hardware accelerator's engine) reports it as its
        #: :meth:`~repro.sim.Component.shard_affinity`.  ``None`` means
        #: "no affinity declared" (components fall back to the hub).
        self.shard_key: Optional[str] = None
        kwargs = {}
        if version is not None:
            kwargs["version"] = version
        super().__init__(sim, name, data_bytes=data_bytes, latency=latency,
                         addr_depth=addr_depth, data_depth=data_depth,
                         **kwargs)

    def _make_channel(self, role: str, latency: int,
                      capacity: Optional[int]) -> Channel:
        if role in self._GATED_ROLES:
            return GatedChannel(self.sim, f"{self.name}.{role}", self.gate,
                                latency, capacity)
        return Channel(self.sim, f"{self.name}.{role}", latency, capacity)

    # ------------------------------------------------------------------

    @property
    def coupled(self) -> bool:
        """True while the port may exchange data with the HyperConnect."""
        return self.gate.coupled

    def decouple(self) -> None:
        """Disconnect the HA (handshake signals held low).

        Wakes the fast kernel path: gate flips change the quiescence of
        every component watching this port (supervisor, EXBAR, the HA
        itself), so any cached bulk-skip horizon must be recomputed.
        """
        self.gate.coupled = False
        self.sim.wake()

    def couple(self) -> None:
        """Reconnect the HA."""
        self.gate.coupled = True
        self.sim.wake()
