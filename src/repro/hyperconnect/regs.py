"""Memory-mapped control interface of the AXI HyperConnect.

The HyperConnect "exports a control AXI slave interface that allows
changing its configuration from the PS as a standard memory-mapped device"
— managed by the hypervisor.  This module defines the register map, the
:class:`RegisterFile` backing store (with read-only enforcement and write
callbacks for side effects), and :class:`ControlSlave`, the AXI-Lite-style
slave that serves single-beat register transactions over a link.

Register map (32-bit registers, byte offsets)::

    0x00  CTRL             bit 0: global enable (1 = forward transactions)
    0x04  PERIOD           reservation period T in clock cycles
    0x08  N_PORTS          read-only: number of slave ports
    0x0C  VERSION          read-only: IP version
    0x40 + i*0x20          per-port register block, port i:
      +0x00  PORT_CTRL        bit 0: coupled (0 decouples the port)
      +0x04  NOMINAL_BURST    equalization burst size, beats
      +0x08  MAX_OUTSTANDING  outstanding sub-transaction limit
      +0x0C  BUDGET           reservation budget, sub-transactions per
                              period; 0xFFFFFFFF = unlimited
      +0x10  ISSUED_READ      read-only: sub-reads issued (wraps at 2^32)
      +0x14  ISSUED_WRITE     read-only: sub-writes issued
      +0x18  TIMEOUT          watchdog timeout in cycles; 0 = disabled
      +0x1C  FAULTS           read-only: containment entries (watchdog
                              and protocol trips) since reset
    0x1000 + i*0x8           per-port region-grant block, port i (the
                             per-port block at 0x40 is full, so stage-2
                             grants live in their own aperture):
      +0x00  REGION_BASE      granted region base, 4 KiB pages
      +0x04  REGION_PAGES     granted region size, 4 KiB pages;
                              0 = region filter disabled
    0x2000 + i*0x4           REGION_EPOCH, port i: read-only counter
                             bumped on every region-filter retarget
                             (grant/revoke/re-grant commit marker)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..axi.payloads import DataBeat, RespBeat
from ..axi.port import AxiLink
from ..axi.types import Resp
from ..sim.component import Component
from ..sim.errors import ConfigurationError, ReproError

# global registers
REG_CTRL = 0x00
REG_PERIOD = 0x04
REG_N_PORTS = 0x08
REG_VERSION = 0x0C

# per-port block
PORT_BASE = 0x40
PORT_STRIDE = 0x20
PORT_CTRL = 0x00
PORT_NOMINAL_BURST = 0x04
PORT_MAX_OUTSTANDING = 0x08
PORT_BUDGET = 0x0C
PORT_ISSUED_READ = 0x10
PORT_ISSUED_WRITE = 0x14
PORT_TIMEOUT = 0x18
PORT_FAULTS = 0x1C

# per-port region-grant block (stage-2 enforcement on the data plane)
REGION_BASE_OFFSET = 0x1000
REGION_STRIDE = 0x8
REGION_BASE_REG = 0x00
REGION_PAGES_REG = 0x04
#: granularity of the region-grant registers (one store page)
REGION_GRANULE = 4096

# per-port region-epoch aperture: a read-only counter bumped by the
# hypervisor every time a port's region filter is retargeted (grant,
# revoke, re-grant).  Software uses it to detect that a revocation has
# committed without polling the base/pages pair for a torn update.
REGION_EPOCH_OFFSET = 0x2000
REGION_EPOCH_STRIDE = 0x4

#: budget register value meaning "no reservation limit"
BUDGET_UNLIMITED = 0xFFFF_FFFF

#: IP version reported by REG_VERSION (1.0.0)
IP_VERSION = 0x0001_0000

_WORD_MASK = 0xFFFF_FFFF


class RegisterAccessError(ReproError):
    """Illegal register access (unknown offset or write to read-only)."""


def port_register(port: int, field_offset: int) -> int:
    """Byte offset of a per-port register."""
    return PORT_BASE + port * PORT_STRIDE + field_offset


def region_register(port: int, field_offset: int) -> int:
    """Byte offset of a per-port region-grant register."""
    return REGION_BASE_OFFSET + port * REGION_STRIDE + field_offset


def region_epoch_register(port: int) -> int:
    """Byte offset of a port's read-only region-epoch counter."""
    return REGION_EPOCH_OFFSET + port * REGION_EPOCH_STRIDE


class RegisterFile:
    """The HyperConnect's register backing store.

    Writes to writable registers invoke the registered callbacks so the
    owning HyperConnect can apply side effects (recomputing budgets,
    toggling gates).  Read-only registers can be refreshed internally via
    :meth:`poke`.
    """

    def __init__(self, n_ports: int) -> None:
        if n_ports < 1:
            raise ConfigurationError("n_ports must be >= 1")
        self.n_ports = n_ports
        self._values: Dict[int, int] = {
            REG_CTRL: 1,
            REG_PERIOD: 65536,
            REG_N_PORTS: n_ports,
            REG_VERSION: IP_VERSION,
        }
        self._read_only = {REG_N_PORTS, REG_VERSION}
        for port in range(n_ports):
            self._values[port_register(port, PORT_CTRL)] = 1
            self._values[port_register(port, PORT_NOMINAL_BURST)] = 16
            self._values[port_register(port, PORT_MAX_OUTSTANDING)] = 8
            self._values[port_register(port, PORT_BUDGET)] = BUDGET_UNLIMITED
            self._values[port_register(port, PORT_ISSUED_READ)] = 0
            self._values[port_register(port, PORT_ISSUED_WRITE)] = 0
            self._values[port_register(port, PORT_TIMEOUT)] = 0
            self._values[port_register(port, PORT_FAULTS)] = 0
            self._read_only.add(port_register(port, PORT_ISSUED_READ))
            self._read_only.add(port_register(port, PORT_ISSUED_WRITE))
            self._read_only.add(port_register(port, PORT_FAULTS))
            self._values[region_register(port, REGION_BASE_REG)] = 0
            self._values[region_register(port, REGION_PAGES_REG)] = 0
            self._values[region_epoch_register(port)] = 0
            self._read_only.add(region_epoch_register(port))
        self._write_callbacks: List[Callable[[int, int], None]] = []
        #: dynamic read providers (live hardware counters)
        self._providers: Dict[int, Callable[[], int]] = {}

    # ------------------------------------------------------------------

    def read(self, offset: int) -> int:
        """Read a register; unknown offsets raise."""
        provider = self._providers.get(offset)
        if provider is not None:
            return provider() & _WORD_MASK
        try:
            return self._values[offset]
        except KeyError:
            raise RegisterAccessError(
                f"read of unmapped register offset 0x{offset:x}") from None

    def provide(self, offset: int, provider: Callable[[], int]) -> None:
        """Back a (read-only) register with a live value provider."""
        if offset not in self._values:
            raise RegisterAccessError(
                f"provider for unmapped register offset 0x{offset:x}")
        self._providers[offset] = provider

    def write(self, offset: int, value: int) -> None:
        """Write a register; read-only or unknown offsets raise."""
        if offset not in self._values:
            raise RegisterAccessError(
                f"write to unmapped register offset 0x{offset:x}")
        if offset in self._read_only:
            raise RegisterAccessError(
                f"write to read-only register offset 0x{offset:x}")
        self._values[offset] = value & _WORD_MASK
        for callback in self._write_callbacks:
            callback(offset, value & _WORD_MASK)

    def poke(self, offset: int, value: int) -> None:
        """Internal update of any register (hardware-side counters)."""
        if offset not in self._values:
            raise RegisterAccessError(
                f"poke of unmapped register offset 0x{offset:x}")
        self._values[offset] = value & _WORD_MASK

    def on_write(self, callback: Callable[[int, int], None]) -> None:
        """Register ``callback(offset, value)`` for writable-reg writes."""
        self._write_callbacks.append(callback)

    # convenience accessors -------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Global enable bit."""
        return bool(self.read(REG_CTRL) & 1)

    @property
    def period(self) -> int:
        """Reservation period T in cycles."""
        return self.read(REG_PERIOD)


class ControlSlave(Component):
    """AXI-Lite-style slave serving the register file over a link.

    Accepts single-beat transactions only (the control interface is a
    32-bit register port); longer bursts are answered with SLVERR.
    Out-of-map addresses return DECERR, faithfully modelling what a
    misprogrammed hypervisor access would see.
    """

    def __init__(self, sim, name: str, link: AxiLink, regs: RegisterFile,
                 base_address: int = 0xA000_0000) -> None:
        super().__init__(sim, name)
        self.link = link
        self.regs = regs
        self.base_address = base_address
        self._pending_write: Optional[tuple] = None

    def tick(self, cycle: int) -> None:
        # reads
        if self.link.ar.can_pop() and self.link.r.can_push():
            request = self.link.ar.pop()
            offset = request.address - self.base_address
            if request.length != 1:
                self.link.r.push(DataBeat(last=True, txn_id=request.txn_id,
                                          resp=Resp.SLVERR,
                                          addr_beat=request))
            else:
                try:
                    value = self.regs.read(offset)
                    self.link.r.push(DataBeat(
                        last=True, txn_id=request.txn_id,
                        data=value.to_bytes(4, "little"),
                        resp=Resp.OKAY, addr_beat=request))
                except RegisterAccessError:
                    self.link.r.push(DataBeat(last=True,
                                              txn_id=request.txn_id,
                                              resp=Resp.DECERR,
                                              addr_beat=request))
        # writes: accept AW, then consume the matching W beat
        if self._pending_write is None and self.link.aw.can_pop():
            self._pending_write = (self.link.aw.pop(),)
        if (self._pending_write is not None and self.link.w.can_pop()
                and self.link.b.can_push()):
            request = self._pending_write[0]
            wbeat = self.link.w.pop()
            self._pending_write = None
            offset = request.address - self.base_address
            resp = Resp.OKAY
            if request.length != 1 or wbeat.data is None:
                resp = Resp.SLVERR
            else:
                try:
                    self.regs.write(
                        offset, int.from_bytes(wbeat.data[:4], "little"))
                except RegisterAccessError:
                    resp = Resp.DECERR
            self.link.b.push(RespBeat(txn_id=request.txn_id, resp=resp,
                                      addr_beat=request))

    def is_quiescent(self, cycle: int) -> bool:
        """Mirrors :meth:`tick`: the slave acts only when a register read
        can be served, an AW can be accepted, or a pending write can
        complete (W beat visible and B pushable)."""
        link = self.link
        if link.ar.can_pop() and link.r.can_push():
            return False
        if self._pending_write is None:
            if link.aw.can_pop():
                return False
        elif link.w.can_pop() and link.b.can_push():
            return False
        return True

    def wake_channels(self) -> list:
        """Stateless request server: all five control-link channels."""
        link = self.link
        return [link.ar, link.aw, link.w, link.r, link.b]
