"""Type-1 hypervisor layer: domains, isolation, integration flow."""

from .accessctl import (AccessControl, AccessViolation, TransitionRecord,
                        ViolationRecord)
from .domain import Criticality, Domain, MemoryRegion
from .hypervisor import (
    HYPERCONNECT_CTRL_BASE,
    HYPERCONNECT_CTRL_SIZE,
    Hypervisor,
)
from .integration import FpgaDesign, PlacedAccelerator, SystemIntegrator
from .interrupts import Interrupt, InterruptController
from .recovery import (FaultRecoveryAgent, RecoveryPolicy,
                       RevocationController, RevocationOrder)

__all__ = [
    "AccessControl",
    "AccessViolation",
    "TransitionRecord",
    "ViolationRecord",
    "Criticality",
    "Domain",
    "MemoryRegion",
    "HYPERCONNECT_CTRL_BASE",
    "HYPERCONNECT_CTRL_SIZE",
    "Hypervisor",
    "FpgaDesign",
    "PlacedAccelerator",
    "SystemIntegrator",
    "Interrupt",
    "InterruptController",
    "FaultRecoveryAgent",
    "RecoveryPolicy",
    "RevocationController",
    "RevocationOrder",
]
