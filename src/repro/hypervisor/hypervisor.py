"""The type-1 hypervisor model.

The AXI HyperConnect is "conceived as a hypervisor-level hardware
component (i.e., a hardware extension of the hypervisor)".  This class
models the hypervisor responsibilities the paper enumerates:

* **booting a design**: only the hypervisor programs the bitstream;
  applications are denied FPGA configuration (a sealed
  :class:`~repro.hypervisor.integration.FpgaDesign` whose signature fails
  to verify is refused);
* **granting each application access to its own HAs only** — modelled by
  :class:`~repro.hypervisor.accessctl.AccessControl`;
* **routing HA interrupts** to their domains;
* **configuring the AXI HyperConnect**: bandwidth reservations per domain,
  nominal bursts, outstanding limits, and runtime isolation (decoupling)
  of misbehaving domains — all through the open-source driver, i.e. the
  memory-mapped control interface that guests can never reach.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..hyperconnect.driver import HyperConnectDriver
from ..hyperconnect.hyperconnect import HyperConnect
from ..hyperconnect.regs import REGION_GRANULE
from ..masters.engine import AxiMasterEngine
from ..memory.buddy import AllocationError, BuddyAllocator
from ..memory.store import MemoryStore
from ..memory.virt import Stage2Table, VirtualizedStore
from ..sim.errors import ConfigurationError
from ..sim.events import GrantRevocationEvent, PortRecoveryEvent
from .accessctl import AccessControl, AccessViolation
from .domain import Criticality, Domain, MemoryRegion
from .integration import FpgaDesign
from .interrupts import InterruptController
from .recovery import (FaultRecoveryAgent, RecoveryPolicy,
                       RevocationController, RevocationOrder)

#: default placement of the HyperConnect control window in the PS map
HYPERCONNECT_CTRL_BASE = 0xA000_0000
HYPERCONNECT_CTRL_SIZE = 0x1000


class Hypervisor:
    """Type-1 hypervisor supervising one FPGA SoC.

    Parameters
    ----------
    hyperconnect:
        The fabric interconnect under hypervisor control.  The paper's
        whole point is that a plain interconnect offers no such control —
        passing a SmartConnect here raises.
    """

    def __init__(self, hyperconnect: HyperConnect) -> None:
        if not isinstance(hyperconnect, HyperConnect):
            raise ConfigurationError(
                "hypervisor-level control requires an AXI HyperConnect "
                f"(got {type(hyperconnect).__name__}); state-of-the-art "
                "interconnects expose no control interface")
        self.hyperconnect = hyperconnect
        self.sim = hyperconnect.sim
        self.driver = HyperConnectDriver(hyperconnect)
        self.domains: Dict[str, Domain] = {}
        self.access = AccessControl(MemoryRegion(
            HYPERCONNECT_CTRL_BASE, HYPERCONNECT_CTRL_SIZE))
        self.interrupts = InterruptController()
        self.design: Optional[FpgaDesign] = None
        #: ports currently held out of service by fault containment
        self.quarantined: Set[int] = set()
        #: engines registered via :meth:`attach_accelerator`, so
        #: :meth:`reset_port` can reset the accelerator with its port
        self._port_engines: Dict[int, AxiMasterEngine] = {}
        self.default_recovery_policy = RecoveryPolicy()
        self._recovery_policies: Dict[str, RecoveryPolicy] = {}
        self.recovery: Optional[FaultRecoveryAgent] = None
        self.revocation: Optional[RevocationController] = None
        #: memory virtualization (set up by :meth:`attach_memory`)
        self.store: Optional[MemoryStore] = None
        self.allocator: Optional[BuddyAllocator] = None
        self._stage2: Dict[str, Stage2Table] = {}
        #: allocator blocks backing each grant, keyed by (domain, base).
        #: ``grant_memory`` grants are one buddy block; pinned
        #: ``adopt_region`` grants may decompose into several.
        self._backing: Dict[Tuple[str, int], List[int]] = {}

    # ------------------------------------------------------------------
    # domain lifecycle
    # ------------------------------------------------------------------

    def create_domain(self, name: str,
                      criticality: Criticality = Criticality.LOW,
                      bandwidth_share: Optional[float] = None) -> Domain:
        """Register an execution domain."""
        if name in self.domains:
            raise ConfigurationError(f"domain {name!r} already exists")
        domain = Domain(name=name, criticality=criticality,
                        bandwidth_share=bandwidth_share)
        self.domains[name] = domain
        return domain

    def domain(self, name: str) -> Domain:
        """Look up a domain by name."""
        try:
            return self.domains[name]
        except KeyError:
            raise ConfigurationError(f"unknown domain {name!r}") from None

    # ------------------------------------------------------------------
    # boot flow
    # ------------------------------------------------------------------

    def boot(self, design: FpgaDesign) -> None:
        """Program the 'bitstream' and bind ports/IRQs to domains.

        Domains referenced by the design must have been created first;
        a tampered design (bad signature) is refused.
        """
        if not design.verify():
            raise ConfigurationError(
                "design signature verification failed; refusing to "
                "program the FPGA")
        if design.n_ports != self.hyperconnect.n_ports:
            raise ConfigurationError(
                f"design has {design.n_ports} ports but the deployed "
                f"HyperConnect has {self.hyperconnect.n_ports}")
        for placed in design.accelerators:
            domain = self.domain(placed.domain)
            domain.ports.append(placed.port)
            self.interrupts.route(placed.irq, placed.domain)
        self.design = design
        # apply any statically declared bandwidth policy
        shares = {name: d.bandwidth_share for name, d in self.domains.items()
                  if d.bandwidth_share is not None and d.ports}
        if shares:
            self.apply_bandwidth_policy(shares)
        # grants made before boot now know their ports: arm the
        # data-plane region filters
        for domain in self.domains.values():
            if domain.regions and domain.ports:
                self._apply_region_filters(domain)

    # ------------------------------------------------------------------
    # HyperConnect policy (hypervisor-only)
    # ------------------------------------------------------------------

    def apply_bandwidth_policy(self, shares: Dict[str, float],
                               period: Optional[int] = None) -> None:
        """Reserve bandwidth per domain (split evenly over its ports)."""
        port_shares: Dict[int, float] = {}
        for name, fraction in shares.items():
            domain = self.domain(name)
            if not domain.ports:
                raise ConfigurationError(
                    f"domain {name!r} has no ports bound")
            per_port = fraction / len(domain.ports)
            for port in domain.ports:
                port_shares[port] = per_port
            domain.bandwidth_share = fraction
        self.driver.set_bandwidth_shares(port_shares, period=period)

    def isolate_domain(self, name: str) -> None:
        """Decouple every port of a (misbehaving) domain."""
        domain = self.domain(name)
        for port in domain.ports:
            self.driver.decouple(port)
        domain.isolated = True

    def restore_domain(self, name: str) -> None:
        """Re-couple a previously isolated domain."""
        domain = self.domain(name)
        for port in domain.ports:
            self.driver.couple(port)
        domain.isolated = False

    # ------------------------------------------------------------------
    # memory virtualization (sparse stage-2 address space)
    # ------------------------------------------------------------------

    def attach_memory(self, store: MemoryStore, base: int = 0,
                      size: Optional[int] = None,
                      min_block: int = REGION_GRANULE) -> BuddyAllocator:
        """Place the DRAM backing store under hypervisor management.

        A buddy allocator carves ``[base, base + size)`` (default: the
        whole store) into power-of-two region grants;
        :meth:`grant_memory` hands them to tenant domains.
        """
        allocator = BuddyAllocator(base, store.size if size is None
                                   else size, min_block)
        self.store = store
        self.allocator = allocator
        return allocator

    def stage2(self, domain_name: str) -> Stage2Table:
        """The domain's stage-2 translation table (created on demand)."""
        domain = self.domain(domain_name)
        table = self._stage2.get(domain.name)
        if table is None:
            table = Stage2Table(name=f"{domain.name}.stage2")
            self._stage2[domain.name] = table
        return table

    def grant_memory(self, domain_name: str, size: int,
                     guest_base: Optional[int] = None) -> MemoryRegion:
        """Grant a domain a region of hypervisor-managed memory.

        Allocates a buddy block, installs a stage-2 window (identity
        mapped by default, so fabric-side and guest-side addresses
        coincide), records the grant in the access-control plane and the
        domain's region list, and — when the domain's ports are already
        bound — arms the HyperConnect's per-port region filters.
        """
        if self.allocator is None:
            raise ConfigurationError(
                "no managed memory: call attach_memory() first")
        domain = self.domain(domain_name)
        host_base = self.allocator.alloc(size)
        block = self.allocator.grant_size(host_base)
        if guest_base is None:
            guest_base = host_base  # sparse identity-mapped guest window
        table = self.stage2(domain_name)
        try:
            table.map(guest_base, block, host_base)
        except ValueError:
            self.allocator.free(host_base)
            raise
        region = domain.add_region(host_base, block)
        self.access.grant(domain, region, cycle=self.sim.now)
        self._backing[(domain.name, host_base)] = [host_base]
        if domain.ports:
            self._apply_region_filters(domain)
        return region

    def adopt_region(self, domain_name: str, base: int, size: int,
                     guest_base: Optional[int] = None) -> MemoryRegion:
        """Record an externally-placed grant (no allocator involved).

        Used by harness builders whose scenarios pin grant addresses as
        pure data: installs the stage-2 window (identity mapped by
        default), the access-control grant, the domain region, and — when
        ports are bound — the data-plane region filters, exactly like
        :meth:`grant_memory` but at the caller's chosen address.
        """
        domain = self.domain(domain_name)
        if guest_base is None:
            guest_base = base
        self.stage2(domain_name).map(guest_base, size, base)
        region = domain.add_region(base, size)
        self.access.grant(domain, region, cycle=self.sim.now)
        if self.allocator is not None:
            # claim the pinned range from the managed pool so a later
            # revoke/release coalesces it back; placements outside the
            # pool (or colliding with it) stay untracked, as before
            try:
                blocks = self.allocator.reserve(base, size)
            except AllocationError:
                blocks = None
            if blocks is not None:
                self._backing[(domain.name, base)] = blocks
        if domain.ports:
            self._apply_region_filters(domain)
        return region

    def release_memory(self, domain_name: str,
                       region: MemoryRegion) -> None:
        """Return a granted region to the allocator and drop its window.

        Idle-time operation: refuses while any of the domain's ports has
        in-flight traffic, because yanking the window under a running
        burst would leave stale translations landing in freed memory.
        Live teardown is :meth:`revoke_memory`, which quiesces and
        drains first.
        """
        if self.allocator is None:
            raise ConfigurationError("no managed memory attached")
        domain = self.domain(domain_name)
        if region not in domain.regions:
            raise ConfigurationError(
                f"domain {domain_name!r} holds no grant at "
                f"0x{region.base:x}")
        for port in domain.ports:
            if not self.hyperconnect.supervisors[port].drained:
                raise ConfigurationError(
                    f"domain {domain_name!r} port {port} has in-flight "
                    "traffic; release_memory() is an idle-time "
                    "operation — use revoke_memory() to tear down a "
                    "grant under traffic")
        table = self.stage2(domain_name)
        window = table.window_for_host(region.base)
        if window is not None:
            table.unmap(window.guest_base)
        domain.regions.remove(region)
        self.access.revoke(domain, region, cycle=self.sim.now)
        self._release_backing(domain.name, region)
        if domain.ports:
            self._apply_region_filters(domain)

    def _release_backing(self, domain_name: str,
                         region: MemoryRegion) -> None:
        """Coalesce a grant's allocator blocks back into the free pool."""
        blocks = self._backing.pop((domain_name, region.base), None)
        if self.allocator is None:
            return
        if blocks is not None:
            for address in blocks:
                self.allocator.free(address)
        elif self.allocator.is_granted(region.base):
            # legacy grant without a backing record
            self.allocator.free(region.base)

    def domain_store(self, domain_name: str) -> VirtualizedStore:
        """The domain's view of memory: every access translated (and
        confined) by its stage-2 table."""
        if self.store is None:
            raise ConfigurationError(
                "no managed memory: call attach_memory() first")
        return VirtualizedStore(self.store, self.stage2(domain_name))

    def _apply_region_filters(self, domain: Domain) -> None:
        """Arm the data-plane grant filter on every port of a domain.

        The register window is a single contiguous range per port, so it
        is programmed as the convex hull of the domain's grants — the
        hardware-cheap first line of defence; the stage-2 table and the
        control-plane access checks stay exact.
        """
        if not domain.regions:
            for port in domain.ports:
                self.driver.clear_region_filter(port)
                self.driver.note_region_retarget(port)
            return
        base = min(region.base for region in domain.regions)
        end = max(region.end for region in domain.regions)
        base -= base % REGION_GRANULE
        if end % REGION_GRANULE:
            end += REGION_GRANULE - end % REGION_GRANULE
        for port in domain.ports:
            self.driver.set_region_filter(port, base, end - base)
            self.driver.note_region_retarget(port)

    # ------------------------------------------------------------------
    # fault recovery (watchdog containment aftermath)
    # ------------------------------------------------------------------

    def set_recovery_policy(self, domain_name: str,
                            policy: RecoveryPolicy) -> None:
        """Choose how faults on a domain's ports are handled."""
        self.domain(domain_name)  # validate the name
        self._recovery_policies[domain_name] = policy

    def policy_for_port(self, port: int) -> RecoveryPolicy:
        """The recovery policy governing a port (owning domain's, or the
        hypervisor-wide default when no domain claims the port)."""
        for name, domain in self.domains.items():
            if port in domain.ports:
                return self._recovery_policies.get(
                    name, self.default_recovery_policy)
        return self.default_recovery_policy

    def enable_fault_recovery(self) -> FaultRecoveryAgent:
        """Start listening for port faults and applying recovery policy.

        Idempotent: a second call returns the existing agent.
        """
        if self.recovery is None:
            # one agent per supervised interconnect: derive the component
            # name from the HyperConnect so cascaded topologies (several
            # hypervisors in one simulation) never collide
            self.recovery = FaultRecoveryAgent(
                self.sim, f"{self.hyperconnect.name}.hypervisor.recovery",
                self)
        return self.recovery

    # ------------------------------------------------------------------
    # live grant revocation (tenant churn)
    # ------------------------------------------------------------------

    def enable_revocation(self) -> RevocationController:
        """Register the revocation state machine on the simulator.

        Idempotent: a second call returns the existing controller.
        """
        if self.revocation is None:
            self.revocation = RevocationController(
                self.sim,
                f"{self.hyperconnect.name}.hypervisor.revocation", self)
        return self.revocation

    def revoke_memory(self, domain_name: str, region: MemoryRegion,
                      regrant_to: Optional[str] = None,
                      at: Optional[int] = None,
                      on_commit: Optional[Callable] = None
                      ) -> RevocationOrder:
        """Revoke a grant while the domain may be mid-burst.

        The returned order runs the quiesce -> drain -> retarget ->
        coalesce (-> re-grant) state machine on the simulator clock:

        1. **quiesce** (``at``, default now): every port of the victim
           domain enters watchdog-style containment via
           ``begin_revocation`` — decoupled from the shared path, with
           in-flight beats completed as synthesized ``DECERR``.
        2. **drain**: the controller polls the supervisors' ``drained``
           predicate; healthy neighbours keep running throughout.
        3. **commit**: stage-2 window unmapped, access-control grant
           revoked (audited), allocator blocks coalesced, the physical
           range scrubbed, region filters retargeted (epoch bumped).
           Victim ports recouple if the domain still holds other
           grants; a grantless domain's ports stay decoupled —
           re-coupling them with a cleared (= disabled) region filter
           would leave the port unfiltered.
        4. **re-grant** (optional): the same physical range is adopted
           by ``regrant_to``, then ``on_commit(cycle, order)`` fires.
        """
        domain = self.domain(domain_name)
        if region not in domain.regions:
            raise ConfigurationError(
                f"domain {domain_name!r} holds no grant at "
                f"0x{region.base:x}")
        if regrant_to is not None and self.domain(regrant_to) is domain:
            raise ConfigurationError(
                "cannot re-grant a region to the domain it is being "
                "revoked from")
        start = self.sim.now if at is None else at
        if start < self.sim.now:
            raise ConfigurationError(
                f"revocation start cycle {start} is in the past "
                f"(now = {self.sim.now})")
        controller = self.enable_revocation()
        return controller.schedule(domain_name, region.base, region.size,
                                   start, regrant_to=regrant_to,
                                   on_commit=on_commit)

    def quiesce_for_revocation(self, order: RevocationOrder,
                               cycle: int) -> None:
        """Step 1 of a revocation: contain every victim port."""
        domain = self.domain(order.domain)
        order.ports = list(domain.ports)
        for port in order.ports:
            self.hyperconnect.supervisors[port].begin_revocation(cycle)
            # bring the register view in line with the gate state
            self.driver.decouple(port)
        self.sim.events.publish(GrantRevocationEvent(
            cycle=cycle, source="hypervisor", domain=order.domain,
            kind="quiesce", base=order.base, size=order.size,
            beneficiary=order.regrant_to or ""))

    def commit_revocation(self, order: RevocationOrder,
                          cycle: int) -> MemoryRegion:
        """Steps 3-4 of a revocation (called once the drain completes).

        By the time this runs every victim port is ``drained``: nothing
        is outstanding downstream, owed upstream, or queued in the
        eFIFO, so no beat translated through the old window can still be
        in flight anywhere in the fabric.
        """
        domain = self.domain(order.domain)
        region = next((r for r in domain.regions
                       if r.base == order.base and r.size == order.size),
                      None)
        if region is None:
            raise ConfigurationError(
                f"revocation #{order.order_id}: domain "
                f"{order.domain!r} no longer holds 0x{order.base:x}")
        table = self.stage2(domain.name)
        window = table.window_for_host(region.base)
        if window is not None:
            table.unmap(window.guest_base)
        domain.regions.remove(region)
        self.access.revoke(domain, region, cycle=cycle)
        self._release_backing(domain.name, region)
        if self.store is not None:
            # the next grantee must never observe the victim's data
            self.store.scrub(region.base, region.size)
        if domain.ports:
            self._apply_region_filters(domain)
        for port in order.ports:
            supervisor = self.hyperconnect.supervisors[port]
            if domain.regions:
                # the domain still holds grants: the retargeted filter
                # confines the port, so it can return to service
                supervisor.clear_fault()
                self.driver.couple(port)
                self.quarantined.discard(port)
            else:
                # grantless domain: a cleared filter means "unfiltered",
                # so the port must stay decoupled (retired)
                self.quarantined.add(port)
        self.sim.events.publish(GrantRevocationEvent(
            cycle=cycle, source="hypervisor", domain=order.domain,
            kind="commit", base=order.base, size=order.size,
            beneficiary=order.regrant_to or ""))
        if order.regrant_to is not None:
            self.adopt_region(order.regrant_to, region.base, region.size)
            self.sim.events.publish(GrantRevocationEvent(
                cycle=cycle, source="hypervisor", domain=order.domain,
                kind="regrant", base=order.base, size=order.size,
                beneficiary=order.regrant_to))
        return region

    def quarantine(self, port: int) -> None:
        """Take a faulted port out of service (keeps it decoupled).

        Safe to call on a port the watchdog already decoupled: the write
        merely brings the register view in line with the gate state.
        """
        self.driver.decouple(port)
        self.quarantined.add(port)
        self.sim.events.publish(PortRecoveryEvent(
            cycle=self.sim.now, source="hypervisor", port=port,
            kind="quarantine"))

    def reset_port(self, port: int) -> None:
        """Return a quarantined port (and its accelerator) to power-on
        state: supervisor counters, eFIFO queues, and — when the engine
        was registered through :meth:`attach_accelerator` — the HA model
        itself."""
        engine = self._port_engines.get(port)
        if engine is not None:
            engine.reset()
        self.hyperconnect.supervisors[port].reset()
        self.hyperconnect.ports[port].clear()
        self.sim.events.publish(PortRecoveryEvent(
            cycle=self.sim.now, source="hypervisor", port=port,
            kind="reset"))

    def recouple(self, port: int) -> None:
        """Put a quarantined port back in service.

        Refuses while containment is still draining: recoupling with
        orphans outstanding would let stale responses reach a freshly
        reset accelerator.
        """
        supervisor = self.hyperconnect.supervisors[port]
        if not supervisor.drained:
            raise ConfigurationError(
                f"port {port} still has orphaned transactions draining; "
                "recouple refused")
        supervisor.clear_fault()
        self.driver.couple(port)
        self.quarantined.discard(port)
        self.sim.events.publish(PortRecoveryEvent(
            cycle=self.sim.now, source="hypervisor", port=port,
            kind="recouple"))

    # ------------------------------------------------------------------
    # guest-side services
    # ------------------------------------------------------------------

    def guest_access(self, domain_name: str, address: int,
                     count: int = 4) -> None:
        """Validate a guest control-plane access (raises on violation)."""
        self.access.check(self.domain(domain_name), address, count)

    def guest_configure_hyperconnect(self, domain_name: str,
                                     offset: int = 0) -> None:
        """What happens when a guest tries to reprogram the interconnect:
        always an :class:`AccessViolation` — by construction the control
        interface is mapped to the hypervisor only."""
        self.guest_access(domain_name, HYPERCONNECT_CTRL_BASE + offset)

    def attach_accelerator(self, domain_name: str, port: int,
                           engine: AxiMasterEngine) -> None:
        """Hook an accelerator model's completion events to the domain's
        interrupt line (the HA raising its IRQ on job completion)."""
        domain = self.domain(domain_name)
        if port not in domain.ports:
            raise AccessViolation(
                f"domain {domain_name!r} does not own port {port}")
        self._port_engines[port] = engine
        engine.on_job_complete(
            lambda job, cycle: self.interrupts.raise_irq(
                port, engine.name, cycle))

    # ------------------------------------------------------------------

    def ports_of(self, domain_name: str) -> List[int]:
        """The HyperConnect ports owned by a domain."""
        return list(self.domain(domain_name).ports)
