"""Execution domains of the mixed-criticality framework.

Each application of Section IV is a *domain*: a software system in the PS
(possibly its own guest OS) plus a set of hardware accelerators on the
fabric.  Domains are independently developed, carry a criticality level,
and must be isolated from one another by the hypervisor — in the PS by
standard memory virtualization, on the fabric by the AXI HyperConnect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.errors import ConfigurationError


class Criticality(enum.IntEnum):
    """Coarse criticality classes (ordered: higher = more critical)."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous physical address range granted to a domain."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("region size must be positive")
        if self.base < 0:
            raise ConfigurationError("region base must be non-negative")

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int, count: int = 1) -> bool:
        """True if ``[address, address+count)`` lies inside the region."""
        return self.base <= address and address + count <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True if the two regions share any address."""
        return self.base < other.end and other.base < self.end


@dataclass
class Domain:
    """One application: software + accelerators + resource policy."""

    name: str
    criticality: Criticality = Criticality.LOW
    #: DRAM regions this domain's HAs may touch
    regions: List[MemoryRegion] = field(default_factory=list)
    #: fraction of fabric memory bandwidth the integrator reserved (None =
    #: no reservation; best effort)
    bandwidth_share: Optional[float] = None
    #: HyperConnect ports bound to this domain's accelerators
    ports: List[int] = field(default_factory=list)
    #: whether the domain is currently isolated (decoupled) by the
    #: hypervisor
    isolated: bool = False

    def add_region(self, base: int, size: int) -> MemoryRegion:
        """Grant a memory region, rejecting overlap within the domain."""
        region = MemoryRegion(base, size)
        for existing in self.regions:
            if existing.overlaps(region):
                raise ConfigurationError(
                    f"domain {self.name!r}: region 0x{base:x}+0x{size:x} "
                    f"overlaps existing 0x{existing.base:x}")
        self.regions.append(region)
        return region

    def may_access(self, address: int, count: int = 1) -> bool:
        """True if the domain is allowed to touch the address range."""
        return any(region.contains(address, count)
                   for region in self.regions)
