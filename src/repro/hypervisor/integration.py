"""The integration phase (Section IV).

Applications deliver their accelerators as IP-XACT packages; the *system
integrator* embeds them into an FPGA design: each HA master port connects
to a HyperConnect slave port, the HyperConnect master port to the FPGA-PS
interface, every HA control slave to the PS-FPGA interface.  Synthesis
produces a *bitstream*, which only the boot loader / hypervisor may
program — applications are denied FPGA configuration.

This module models that flow: :class:`SystemIntegrator` collects packaged
accelerators, validates them, and emits an :class:`FpgaDesign` (the
bitstream stand-in) that the hypervisor can later boot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ipxact.component import IpxactComponent, hyperconnect_component
from ..platforms.zynq import Platform
from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class PlacedAccelerator:
    """One accelerator placed in the design."""

    component: IpxactComponent
    domain: str
    port: int
    irq: int


@dataclass
class FpgaDesign:
    """The synthesized design: our stand-in for a bitstream file.

    ``signature`` plays the role of the bitstream's integrity hash: the
    hypervisor refuses to boot a design whose signature does not verify.
    """

    platform: str
    interconnect: IpxactComponent
    accelerators: List[PlacedAccelerator] = field(default_factory=list)
    signature: str = ""

    @property
    def n_ports(self) -> int:
        """HyperConnect slave ports in the design."""
        return int(self.interconnect.parameters["N_PORTS"])

    def compute_signature(self) -> str:
        """Deterministic digest over the design contents."""
        digest = hashlib.sha256()
        digest.update(self.platform.encode())
        digest.update(str(self.interconnect.vlnv).encode())
        for placed in self.accelerators:
            digest.update(str(placed.component.vlnv).encode())
            digest.update(f"{placed.domain}:{placed.port}:{placed.irq}"
                          .encode())
        return digest.hexdigest()

    def seal(self) -> "FpgaDesign":
        """Finalize ('synthesize') the design: freeze its signature."""
        self.signature = self.compute_signature()
        return self

    def verify(self) -> bool:
        """True if the sealed signature matches the contents."""
        return bool(self.signature) and (
            self.signature == self.compute_signature())


class SystemIntegrator:
    """Builds an :class:`FpgaDesign` from packaged accelerators."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._pending: List[Tuple[IpxactComponent, str]] = []

    def add_accelerator(self, component: IpxactComponent,
                        domain: str) -> None:
        """Queue one HA package for integration.

        Validates the standard interface of Section II: exactly one AXI
        master port (data) and at least one AXI-Lite slave (control), with
        a data width compatible with the platform's FPGA-PS port.
        """
        masters = component.masters()
        if len(masters) != 1:
            raise ConfigurationError(
                f"{component.vlnv}: expected exactly 1 AXI master "
                f"interface, found {len(masters)}")
        if not component.slaves():
            raise ConfigurationError(
                f"{component.vlnv}: missing the AXI control slave "
                f"interface")
        hp_bits = self.platform.hp_data_bytes * 8
        if masters[0].data_width_bits > hp_bits:
            raise ConfigurationError(
                f"{component.vlnv}: master width "
                f"{masters[0].data_width_bits} exceeds the platform port "
                f"width {hp_bits}")
        self._pending.append((component, domain))

    def integrate(self) -> FpgaDesign:
        """Run the integration: assign ports/IRQs and 'synthesize'."""
        if not self._pending:
            raise ConfigurationError("no accelerators to integrate")
        n_ports = len(self._pending)
        interconnect = hyperconnect_component(
            n_ports, data_width_bits=self.platform.hp_data_bytes * 8)
        design = FpgaDesign(platform=self.platform.name,
                            interconnect=interconnect)
        for port, (component, domain) in enumerate(self._pending):
            design.accelerators.append(PlacedAccelerator(
                component=component, domain=domain, port=port, irq=port))
        return design.seal()

    def port_map(self, design: FpgaDesign) -> Dict[str, List[int]]:
        """Domain -> port indices mapping of a design."""
        mapping: Dict[str, List[int]] = {}
        for placed in design.accelerators:
            mapping.setdefault(placed.domain, []).append(placed.port)
        return mapping
