"""Control-plane access control (the memory-virtualization stand-in).

"The hypervisor is in charge of granting access from each application to
the corresponding HAs only (via standard memory virtualization)": guests
reach their own accelerators' control registers, and nothing else — in
particular, never the HyperConnect's control interface, which belongs to
the hypervisor alone.

This module models that second-stage translation at the granularity the
experiments need: per-domain allowed ranges, explicit deny of the
HyperConnect register window, and an audit trail of violations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..sim.errors import ReproError
from .domain import Domain, MemoryRegion

#: default audit-trail depth; fault storms can deny millions of accesses,
#: so the record list is a ring buffer with a separate total counter
DEFAULT_AUDIT_DEPTH = 1024


class AccessViolation(ReproError):
    """A domain attempted an access outside its granted ranges."""


@dataclass(frozen=True)
class ViolationRecord:
    """Audit entry for a denied access."""

    domain: str
    address: int
    count: int
    reason: str


@dataclass(frozen=True)
class TransitionRecord:
    """Audit entry for a grant-table transition (grant / revoke).

    Tenant-churn campaigns replay a scripted revoke/re-grant sequence
    and compare the resulting trail byte-for-byte against a golden
    file, so the record is JSON-native via :meth:`as_dict`.
    """

    kind: str          # "grant" | "revoke"
    domain: str
    base: int
    size: int
    cycle: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "domain": self.domain,
            "base": self.base,
            "size": self.size,
            "cycle": self.cycle,
        }


class AccessControl:
    """Second-stage access control over the control plane.

    Parameters
    ----------
    hyperconnect_window:
        The HyperConnect control-register range; always denied to guests
        regardless of their grants (defence in depth).
    audit_depth:
        Maximum retained :class:`ViolationRecord` entries.  Older entries
        are evicted (ring buffer); :attr:`total_violations` keeps the
        lifetime count so fault-storm campaigns with millions of denials
        cannot grow memory without bound.
    """

    def __init__(self, hyperconnect_window: MemoryRegion,
                 audit_depth: int = DEFAULT_AUDIT_DEPTH) -> None:
        if audit_depth < 1:
            raise ValueError("audit_depth must be >= 1")
        self.hyperconnect_window = hyperconnect_window
        self._grants: Dict[str, List[MemoryRegion]] = {}
        #: most recent denied accesses (bounded ring buffer)
        self.violations: Deque[ViolationRecord] = deque(maxlen=audit_depth)
        #: lifetime denial count (survives ring-buffer eviction)
        self.total_violations = 0
        #: most recent grant-table transitions (bounded ring buffer)
        self.transitions: Deque[TransitionRecord] = deque(maxlen=audit_depth)
        #: lifetime transition count (survives ring-buffer eviction)
        self.total_transitions = 0

    def grant(self, domain: Domain, region: MemoryRegion,
              cycle: Optional[int] = None) -> None:
        """Allow ``domain`` to access ``region`` (control registers of its
        own HAs, its DRAM buffers, ...)."""
        if region.overlaps(self.hyperconnect_window):
            raise AccessViolation(
                f"cannot grant {domain.name!r} a region overlapping the "
                f"HyperConnect control window")
        self._grants.setdefault(domain.name, []).append(region)
        self._record("grant", domain.name, region, cycle)

    def revoke(self, domain: Domain, region: MemoryRegion,
               cycle: Optional[int] = None) -> None:
        """Withdraw a previously granted region from ``domain``.

        Subsequent :meth:`check` calls against the range are denied (and
        audited) like any other unmatched access.  Raises
        :class:`AccessViolation` when the domain holds no such grant —
        a revocation that silently misses would leave the caller
        believing an access path was closed when it was not.
        """
        regions = self._grants.get(domain.name, [])
        if region not in regions:
            raise AccessViolation(
                f"domain {domain.name!r} holds no grant at "
                f"0x{region.base:x} (+0x{region.size:x})")
        regions.remove(region)
        self._record("revoke", domain.name, region, cycle)

    def grants_of(self, domain_name: str) -> List[MemoryRegion]:
        """Snapshot of a domain's current grants."""
        return list(self._grants.get(domain_name, []))

    def _record(self, kind: str, domain_name: str, region: MemoryRegion,
                cycle: Optional[int]) -> None:
        self.transitions.append(
            TransitionRecord(kind, domain_name, region.base, region.size,
                             cycle))
        self.total_transitions += 1

    def check(self, domain: Domain, address: int, count: int = 4) -> None:
        """Validate a guest access; raises :class:`AccessViolation`.

        Every violation is also recorded for auditing (a real hypervisor
        would inject a fault into the guest).
        """
        probe = MemoryRegion(address, count)
        if probe.overlaps(self.hyperconnect_window):
            self._deny(domain, address, count,
                       "HyperConnect control interface is hypervisor-only")
        for region in self._grants.get(domain.name, []):
            if region.contains(address, count):
                return
        self._deny(domain, address, count, "no matching grant")

    def _deny(self, domain: Domain, address: int, count: int,
              reason: str) -> None:
        record = ViolationRecord(domain.name, address, count, reason)
        self.violations.append(record)
        self.total_violations += 1
        raise AccessViolation(
            f"domain {domain.name!r} denied at 0x{address:x} "
            f"(+{count}): {reason}")
