"""Hypervisor-side fault recovery for contained HyperConnect ports.

The watchdog inside each :class:`~repro.hyperconnect.supervisor.
TransactionSupervisor` *contains* a faulty port (decouple, drain, complete
orphans) but deliberately stops there: whether the port comes back is a
policy decision, and policy belongs to the hypervisor.  This module is
that policy layer:

* :class:`RecoveryPolicy` — per-domain knobs: retry automatically or stay
  quarantined, how many times, and with what (exponentially growing)
  cycle backoff between attempts.
* :class:`FaultRecoveryAgent` — a clocked component the hypervisor
  registers on the simulator.  It listens for
  :class:`~repro.sim.events.PortFaultEvent` on the event bus, quarantines
  the port immediately, and — when the policy allows — schedules a reset
  + recouple once the backoff elapses *and* the supervisor reports the
  port drained.

The agent participates in the fast kernel path: its pending recovery
deadlines are exposed through ``next_event_cycle`` so a frozen system
still wakes up exactly when a retry is due.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.events import PortFaultEvent, PortRecoveryEvent


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the hypervisor treats faults on a domain's ports.

    Attributes
    ----------
    auto_retry:
        ``False`` means quarantine forever (appropriate for high-
        criticality neighbours of an untrusted domain: a port that
        misbehaved once never gets the bus back without operator action).
    max_retries:
        Recovery attempts before giving up and leaving the port
        quarantined.
    backoff_cycles / backoff_factor:
        Attempt ``k`` (0-based) waits ``backoff_cycles * factor**k``
        cycles after the fault before resetting the port.  The growing
        backoff keeps a persistently faulty accelerator from consuming
        bus time with futile recouple/trip churn.
    """

    auto_retry: bool = True
    max_retries: int = 3
    backoff_cycles: int = 512
    backoff_factor: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_cycles < 1:
            raise ConfigurationError("backoff_cycles must be >= 1")
        if self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff_for(self, attempt: int) -> int:
        """Backoff (cycles) before 0-based recovery ``attempt``."""
        return self.backoff_cycles * self.backoff_factor ** attempt


class FaultRecoveryAgent(Component):
    """Event-driven recovery loop run by the hypervisor.

    Lifecycle per fault: ``PortFaultEvent`` -> quarantine (immediate)
    -> wait ``backoff`` cycles -> if the supervisor reports the port
    drained: reset + recouple; otherwise burn the attempt and re-arm the
    (longer) backoff.  Attempts are bounded by the policy; exhaustion
    publishes a ``giveup`` :class:`PortRecoveryEvent` and the port stays
    quarantined.
    """

    def __init__(self, sim, name: str, hypervisor) -> None:
        super().__init__(sim, name)
        self.hypervisor = hypervisor
        #: port -> absolute cycle at which the next attempt is due
        self._due: Dict[int, int] = {}
        #: port -> recovery attempts consumed so far
        self.retries: Dict[int, int] = {}
        #: ports whose policy (or retry budget) ruled out recovery
        self.gave_up: Set[int] = set()
        sim.events.subscribe(self._on_fault, PortFaultEvent)

    # ------------------------------------------------------------------

    def _on_fault(self, event: PortFaultEvent) -> None:
        hyperconnect = self.hypervisor.hyperconnect
        if not 0 <= event.port < hyperconnect.n_ports:
            return
        if hyperconnect.supervisors[event.port].name != event.source:
            return  # someone else's fault (e.g. a SmartConnect baseline)
        port = event.port
        self.hypervisor.quarantine(port)
        policy = self.hypervisor.policy_for_port(port)
        attempt = self.retries.get(port, 0)
        if policy.auto_retry and attempt < policy.max_retries:
            self._due[port] = event.cycle + policy.backoff_for(attempt)
            self.sim.wake()
        else:
            self._give_up(event.cycle, port, attempt)

    def _give_up(self, cycle: int, port: int, attempt: int) -> None:
        self._due.pop(port, None)
        self.gave_up.add(port)
        self.sim.events.publish(PortRecoveryEvent(
            cycle=cycle, source=self.name, port=port, kind="giveup",
            attempt=attempt))

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if not self._due:
            return
        for port, due in list(self._due.items()):
            if cycle < due:
                continue
            supervisor = self.hypervisor.hyperconnect.supervisors[port]
            attempt = self.retries.get(port, 0)
            self.retries[port] = attempt + 1
            if supervisor.drained:
                del self._due[port]
                self.hypervisor.reset_port(port)
                self.hypervisor.recouple(port)
                continue
            # containment is still draining orphans: the attempt is
            # burned (the backoff was evidently too optimistic)
            policy = self.hypervisor.policy_for_port(port)
            if attempt + 1 >= policy.max_retries:
                self._give_up(cycle, port, attempt + 1)
            else:
                self._due[port] = cycle + policy.backoff_for(attempt + 1)

    def is_quiescent(self, cycle: int) -> bool:
        """Pure timer component: acts only when an attempt is due."""
        return not self._due or cycle < min(self._due.values())

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest pending recovery deadline."""
        return min(self._due.values()) if self._due else None

    # ------------------------------------------------------------------

    @property
    def pending(self) -> Dict[int, int]:
        """Scheduled attempts (port -> due cycle), for inspection."""
        return dict(self._due)


@dataclass
class RevocationOrder:
    """One scheduled grant revocation, tracked through its lifecycle.

    ``state`` advances ``scheduled`` -> ``draining`` -> ``committed``.
    ``regrant_to`` names the beneficiary domain that receives the same
    physical range at commit (``None`` = revoke only).  ``on_commit`` is
    invoked as ``on_commit(cycle, order)`` right after the commit (and
    any re-grant) completes — test harnesses use it to launch the
    beneficiary's traffic onto the freshly re-granted range.
    """

    order_id: int
    domain: str
    base: int
    size: int
    start_cycle: int
    regrant_to: Optional[str] = None
    on_commit: Optional[Callable[[int, "RevocationOrder"], None]] = None
    state: str = "scheduled"
    quiesce_cycle: Optional[int] = None
    commit_cycle: Optional[int] = None
    #: victim ports captured at quiesce time (the domain's port set may
    #: legitimately change after the commit)
    ports: List[int] = field(default_factory=list)


class RevocationController(Component):
    """Clocked driver of the revocation state machine.

    Reuses the watchdog containment ladder: at ``start_cycle`` every
    port of the victim domain enters containment via
    ``TransactionSupervisor.begin_revocation`` (decouple + orphan
    completion with synthesized ``DECERR``), then the controller polls
    the supervisors' ``drained`` predicate each cycle — exactly like
    :class:`FaultRecoveryAgent` polls before a recouple — and hands the
    drained domain to ``Hypervisor.commit_revocation`` (stage-2 window
    teardown, filter retarget, buddy coalesce, scrub, optional
    re-grant).  Pure timer component on the serial hub: deadlines are
    exposed through ``next_event_cycle`` so the fast and parallel
    kernels wake exactly when a transition is due.
    """

    def __init__(self, sim, name: str, hypervisor) -> None:
        super().__init__(sim, name)
        self.hypervisor = hypervisor
        self._orders: List[RevocationOrder] = []
        #: order_id -> absolute cycle of the next state-machine step
        self._due: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def schedule(self, domain_name: str, base: int, size: int,
                 start_cycle: int, regrant_to: Optional[str] = None,
                 on_commit: Optional[Callable] = None) -> RevocationOrder:
        """Queue a revocation to begin at ``start_cycle``."""
        for existing in self._orders:
            if (existing.domain == domain_name
                    and existing.state != "committed"):
                raise ConfigurationError(
                    f"domain {domain_name!r} already has revocation "
                    f"#{existing.order_id} in flight")
        order = RevocationOrder(len(self._orders), domain_name, base,
                                size, start_cycle, regrant_to, on_commit)
        self._orders.append(order)
        self._due[order.order_id] = start_cycle
        self.wake()
        self.sim.wake()
        return order

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if not self._due:
            return
        for order_id, due in sorted(self._due.items()):
            if cycle < due:
                continue
            order = self._orders[order_id]
            if order.state == "scheduled":
                self.hypervisor.quiesce_for_revocation(order, cycle)
                order.state = "draining"
                order.quiesce_cycle = cycle
            if order.state == "draining":
                supervisors = self.hypervisor.hyperconnect.supervisors
                if all(supervisors[p].drained for p in order.ports):
                    del self._due[order_id]
                    order.state = "committed"
                    order.commit_cycle = cycle
                    self.hypervisor.commit_revocation(order, cycle)
                    if order.on_commit is not None:
                        order.on_commit(cycle, order)
                else:
                    # orphans still draining; poll again next cycle
                    # (same pattern as FaultRecoveryAgent's drained wait)
                    self._due[order_id] = cycle + 1

    def is_quiescent(self, cycle: int) -> bool:
        """Pure timer component: acts only when a step is due."""
        return not self._due or cycle < min(self._due.values())

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest pending revocation step."""
        return min(self._due.values()) if self._due else None

    # ------------------------------------------------------------------

    @property
    def orders(self) -> List[RevocationOrder]:
        """All orders ever scheduled (committed ones included)."""
        return list(self._orders)

    @property
    def pending(self) -> Dict[int, int]:
        """Uncommitted orders (order_id -> next step cycle)."""
        return dict(self._due)
