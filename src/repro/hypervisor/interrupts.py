"""Interrupt routing between accelerators and domains.

HAs "signal their completion to the PS by means of interrupts", and the
hypervisor "is in charge of ... routing their interrupts" to the right
domain.  This controller models exactly that: accelerator completion
events become pending interrupts in the owning domain's queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class Interrupt:
    """One delivered interrupt."""

    irq: int
    source: str
    cycle: int


class InterruptController:
    """Routes accelerator IRQ lines to domains."""

    def __init__(self) -> None:
        self._routes: Dict[int, str] = {}        # irq -> domain name
        self._pending: Dict[str, List[Interrupt]] = {}
        self.delivered_total = 0
        self.spurious = 0

    def route(self, irq: int, domain_name: str) -> None:
        """Bind an IRQ line to a domain (one domain per line)."""
        if irq in self._routes:
            raise ConfigurationError(f"IRQ {irq} already routed "
                                     f"to {self._routes[irq]!r}")
        self._routes[irq] = domain_name
        self._pending.setdefault(domain_name, [])

    def raise_irq(self, irq: int, source: str, cycle: int) -> None:
        """Deliver an interrupt; unrouted lines count as spurious."""
        domain_name = self._routes.get(irq)
        if domain_name is None:
            self.spurious += 1
            return
        self._pending[domain_name].append(Interrupt(irq, source, cycle))
        self.delivered_total += 1

    def pending(self, domain_name: str) -> List[Interrupt]:
        """The domain's pending interrupts (oldest first)."""
        return list(self._pending.get(domain_name, []))

    def acknowledge(self, domain_name: str) -> List[Interrupt]:
        """Pop and return all pending interrupts of a domain."""
        items = self._pending.get(domain_name, [])
        taken = list(items)
        items.clear()
        return taken
