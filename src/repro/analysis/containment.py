"""Closed-form worst-case bounds for watchdog fault containment.

PR 2's watchdog turns a wedged port into a bounded disturbance: the
Transaction Supervisor detects the hang (``PORT_TIMEOUT``), decouples the
port, lets the already-granted sub-transactions drain through the shared
memory path, and synthesizes error completions for the orphans.  This
module states the *analytic* side of that claim, mirroring how
:mod:`.wcrt` and :mod:`.reservation` attack the response-time and supply
bounds: every term is compositional and safe rather than tight, and the
fault campaign (`tests/test_fault_campaign.py`, `repro.verify`, and
`benchmarks/bench_fault_campaign.py`) asserts measured behaviour against
it on both kernel paths.

Three quantities are bounded:

* **detection** — cycles from fault onset until the watchdog trips.  The
  TS deadline is ``oldest issue + timeout``, so detection is at most the
  programmed ``timeout_cycles`` (the oldest outstanding transaction may
  have been issued the cycle the fault hit).
* **drain** — cycles until the rogue port's already-granted traffic has
  left the shared path.  The outstanding-transaction limit ([11] in the
  paper) is what makes this finite: at most ``max_outstanding`` equalized
  reads plus as many writes can be in flight, each occupying the in-order
  memory for one equalized service slot, plus one memory access latency
  of each kind for the requests already inside the DRAM pipeline.
* **synthesis** — cycles the containment logic needs to complete the
  orphans locally (one R beat and one B response per cycle, per port).
  Synthesis happens on the decoupled side of the port gate, so it never
  occupies the shared path — it extends the rogue port's own recovery
  time (``containment_latency_bound``), not its neighbours' delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.dram import DramTiming
from .interference import transaction_service_cycles
from .latency import hyperconnect_propagation


@dataclass(frozen=True)
class ContainmentBound:
    """Worst-case fault-containment latencies of a watchdog-armed port.

    Parameters
    ----------
    n_ports:
        Input ports of the HyperConnect under analysis.
    nominal_burst:
        Equalization burst size (beats); bounds every in-flight
        sub-transaction's service time.
    memory:
        Memory-subsystem timing (the drain tail is one worst-case access
        of each kind still inside the DRAM pipeline).
    timeout_cycles:
        The rogue port's programmed ``PORT_TIMEOUT``.
    rogue_outstanding:
        The rogue port's outstanding-transaction limit (TS
        ``max_outstanding``) — at most this many equalized reads *and*
        this many equalized writes were granted before the trip.
    period:
        Reservation replenishment period when bandwidth shares are armed
        (``None`` = free-for-all).  A healthy port may additionally sit
        out one full blackout window while its budget replenishes.
    """

    n_ports: int
    nominal_burst: int
    memory: DramTiming
    timeout_cycles: int
    rogue_outstanding: int = 8
    period: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise ValueError("n_ports must be >= 1")
        if self.nominal_burst < 1:
            raise ValueError("nominal_burst must be >= 1")
        if self.timeout_cycles < 1:
            raise ValueError("timeout_cycles must be >= 1")
        if self.rogue_outstanding < 1:
            raise ValueError("rogue_outstanding must be >= 1")
        if self.period is not None and self.period < 1:
            raise ValueError("period must be >= 1 or None")

    # ------------------------------------------------------------------
    # component terms
    # ------------------------------------------------------------------

    @property
    def detection_cycles(self) -> int:
        """Fault onset -> watchdog trip (at most the programmed timeout)."""
        return self.timeout_cycles

    @property
    def drain_cycles(self) -> int:
        """Trip -> shared path clear of the rogue port's granted traffic."""
        service = transaction_service_cycles(self.nominal_burst)
        in_flight = 2 * self.rogue_outstanding * service
        pipeline_tail = (self.memory.read_latency
                         + self.memory.write_latency
                         + self.memory.resp_latency)
        return in_flight + pipeline_tail

    def synthesis_cycles(self, owed_r_beats: Optional[int] = None,
                         owed_b: Optional[int] = None) -> int:
        """Cycles to synthesize all orphan completions on the dead port.

        One R beat and one B response per cycle run concurrently, so the
        pair completes in ``max`` of the two queues.  Defaults assume the
        worst case allowed by the outstanding limit: every orphan read
        owes a full nominal burst and every orphan write owes one B.
        """
        if owed_r_beats is None:
            owed_r_beats = self.rogue_outstanding * self.nominal_burst
        if owed_b is None:
            owed_b = self.rogue_outstanding
        if owed_r_beats < 0 or owed_b < 0:
            raise ValueError("owed beat counts must be >= 0")
        return max(owed_r_beats, owed_b)

    @property
    def propagation_slack(self) -> int:
        """Pipeline-register slack between trip and observable effects."""
        prop = hyperconnect_propagation()
        return prop["AR"] + prop["AW"] + prop["R"] + prop["B"]

    # ------------------------------------------------------------------
    # composite bounds
    # ------------------------------------------------------------------

    def containment_latency_bound(self) -> int:
        """Fault onset -> rogue port fully contained (``drained``).

        This is the window the hypervisor's recovery backoff must at
        least cover for a reset attempt to find the port drained.
        """
        return (self.detection_cycles + self.drain_cycles
                + self.synthesis_cycles() + self.propagation_slack)

    def healthy_port_delay_bound(self) -> int:
        """Worst-case *extra* completion delay one rogue port inflicts on
        a healthy neighbour's workload.

        Composition: until detection the rogue port behaves (at worst)
        like any compliant competitor — round-robin already charges that
        interference to :class:`~repro.analysis.wcrt.HyperConnectWcrt` —
        *except* that transactions granted to the wedged port occupy the
        shared path without retiring, so the healthy port may stall for
        the full detection window, then wait for the rogue traffic to
        drain, then refill the arbitration pipeline (one equalized round
        across all ports).  Synthesis is excluded: it runs behind the
        closed port gate.  With reservations armed the healthy port may
        additionally spend one full period in budget blackout before its
        first post-fault grant.
        """
        service = transaction_service_cycles(self.nominal_burst)
        refill = self.n_ports * service
        bound = (self.detection_cycles + self.drain_cycles + refill
                 + self.propagation_slack)
        if self.period is not None:
            bound += self.period
        return bound

    def multi_fault_delay_bound(self, n_faulted: int) -> int:
        """Worst-case extra delay when ``n_faulted`` ports fault together.

        Serialized composition: the containment windows are assumed not
        to overlap, so each faulted port charges its full single-fault
        healthy-port bound.  Concurrent faults can only shrink the total
        (detection windows elapse in parallel and the shared-path drains
        interleave), so the serialized sum is safe, not tight.  This is
        the per-tenant bound the isolation oracle applies to fault-storm
        scenarios (:func:`repro.verify.oracles.check_isolation`).
        """
        if n_faulted < 0:
            raise ValueError("n_faulted must be >= 0")
        return n_faulted * self.healthy_port_delay_bound()

    def min_safe_timeout(self) -> int:
        """Smallest ``PORT_TIMEOUT`` a *healthy* neighbour may program
        without risking a false trip while a rogue port is contained.

        The neighbour's oldest outstanding transaction can be delayed by
        the full healthy-port bound plus its own worst-case service
        round; a watchdog tighter than that would count fault-induced
        stall as a fault of its own.
        """
        service = transaction_service_cycles(self.nominal_burst)
        own_round = (self.n_ports * service + self.memory.read_latency
                     + self.memory.write_latency + self.memory.resp_latency)
        return self.healthy_port_delay_bound() + own_round

    def cascade_slack(self, levels: int = 2) -> int:
        """Extra slack for ``levels`` cascaded HyperConnects.

        Each extra level adds one address-path traversal and one
        arbitration round at that level's EXBAR to every term measured at
        the leaf; containment itself stays local to the tripping level.
        """
        if levels < 1:
            raise ValueError("levels must be >= 1")
        service = transaction_service_cycles(self.nominal_burst)
        per_level = self.propagation_slack + self.n_ports * service
        return (levels - 1) * per_level
