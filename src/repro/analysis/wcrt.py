"""End-to-end worst-case response-time bounds for accelerator jobs.

Combines the three per-layer bounds into one job-level guarantee:

1. propagation through the interconnect (:mod:`.latency`),
2. arbitration interference at the crossbar (:mod:`.interference`),
3. reservation supply (:mod:`.reservation`),
4. in-order memory service.

The composite bound is intentionally *compositional and safe* rather than
tight: each sub-transaction is charged its full worst-case round — own
service, every competitor's equalized service, and the memory access
latency — with no pipelining credit.  The test-suite checks that simulated
response times under adversarial interference never exceed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..memory.dram import DramTiming
from .interference import transaction_service_cycles
from .latency import hyperconnect_propagation


@dataclass(frozen=True)
class HyperConnectWcrt:
    """Worst-case response time of one port's jobs through a HyperConnect.

    Parameters
    ----------
    n_ports:
        Total input ports of the interconnect.
    nominal_burst:
        Equalization burst size (beats) — bounds every competitor's
        transaction service time as well as our own.
    memory:
        Memory-subsystem timing.
    budget / period:
        The port's reservation, if any (``budget=None`` = unlimited, i.e.
        only arbitration interference applies).
    interferer_outstanding:
        Per-port outstanding-transaction limit enforced by the TS.  This
        is what bounds the *initial backlog*: when our first request
        arrives, every other port may already have this many equalized
        transactions queued in the in-order memory path.  Without the
        TS's outstanding equalization ([11]) this term would be unbounded
        — which is precisely the paper's predictability argument.
    """

    n_ports: int
    nominal_burst: int
    memory: DramTiming
    budget: Optional[int] = None
    period: Optional[int] = None
    interferer_outstanding: int = 8

    def _sub_transactions(self, beats: int) -> int:
        return math.ceil(beats / self.nominal_burst)

    def _round_cycles(self, is_read: bool) -> int:
        """Worst-case cycles one of our sub-transactions needs once
        granted the head of the port's queue: every other port may slip
        one equalized transaction ahead (EXBAR granularity 1), then ours
        is served by the in-order memory."""
        service = transaction_service_cycles(self.nominal_burst)
        interference = (self.n_ports - 1) * service
        access = (self.memory.read_latency if is_read
                  else self.memory.write_latency + self.memory.resp_latency)
        return interference + service + access

    def job_bound_cycles(self, total_beats: int,
                         is_read: bool = True) -> int:
        """Worst-case cycles for a job of ``total_beats`` beats."""
        if total_beats < 1:
            raise ValueError("total_beats must be >= 1")
        m = self._sub_transactions(total_beats)
        propagation = hyperconnect_propagation()
        prop = (propagation["AR"] + propagation["R"] if is_read
                else propagation["AW"] + propagation["W"]
                + propagation["B"])
        round_cycles = self._round_cycles(is_read)
        # one-time term: transactions other ports already had in flight
        # when our first request arrived (bounded by the TS limit)
        service = transaction_service_cycles(self.nominal_burst)
        backlog = ((self.n_ports - 1) * self.interferer_outstanding
                   * service)
        unreserved = prop + backlog + m * round_cycles
        if self.budget is None or self.period is None:
            return unreserved
        # With a reservation, issue times are additionally governed by the
        # supply bound.  The budget effective within one period is capped
        # by how many worst-case rounds fit in it (a TS cannot complete
        # more than that regardless of budget).
        effective_budget = max(1, min(self.budget,
                                      self.period // round_cycles or 1))
        full_periods = (m - 1) // effective_budget
        remainder = m - full_periods * effective_budget
        reserved = (prop + backlog
                    + self.period                 # initial blackout
                    + full_periods * self.period
                    + remainder * round_cycles)
        return max(unreserved, reserved)

    def job_bound_bytes(self, nbytes: int, beat_bytes: int,
                        is_read: bool = True) -> int:
        """Byte-level convenience wrapper around :meth:`job_bound_cycles`."""
        if nbytes < 1 or beat_bytes < 1:
            raise ValueError("nbytes and beat_bytes must be >= 1")
        return self.job_bound_cycles(math.ceil(nbytes / beat_bytes),
                                     is_read)
