"""Worst-case interference bounds at the arbitration point.

The key predictability argument of the paper: the EXBAR's round-robin has
a **fixed granularity of one transaction** per TS module per round-cycle,
so a request can be delayed by at most ``N - 1`` competing transactions.
Interconnects with a variable granularity ``g`` (as observed for the
SmartConnect) admit ``g * (N - 1)`` interfering transactions in the worst
case.

With burst equalization the service time of each interfering transaction
is also bounded — by the nominal burst size — which turns the transaction
counts into hard cycle bounds.
"""

from __future__ import annotations

from dataclasses import dataclass


def interfering_transactions(n_ports: int, granularity: int = 1) -> int:
    """Worst-case competing transactions ahead of a newly arrived request.

    ``granularity`` is the arbiter's maximum consecutive grants per port
    (1 for the EXBAR; ``g`` for variable-granularity interconnects).
    """
    if n_ports < 1:
        raise ValueError("n_ports must be >= 1")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    return granularity * (n_ports - 1)


def transaction_service_cycles(burst_beats: int,
                               command_overhead: int = 1) -> int:
    """Data-bus cycles one transaction occupies (1 beat/cycle + command)."""
    if burst_beats < 1:
        raise ValueError("burst_beats must be >= 1")
    return burst_beats + command_overhead


def worst_case_grant_delay(n_ports: int, granularity: int,
                           interferer_burst_beats: int,
                           command_overhead: int = 1) -> int:
    """Worst-case cycles a request waits for its arbitration grant.

    Every interfering transaction must drain through the shared in-order
    memory path before the request's own grant becomes effective, so the
    bound is the interfering transaction count times the per-transaction
    service time.
    """
    return (interfering_transactions(n_ports, granularity)
            * transaction_service_cycles(interferer_burst_beats,
                                         command_overhead))


@dataclass(frozen=True)
class InterferenceModel:
    """Comparative interference bounds for an N-master system.

    ``equalized_burst`` applies to the HyperConnect column (interferers
    are equalized to the nominal burst); ``max_burst`` to the baseline
    column (interferers may present protocol-maximum bursts, since no
    equalization occurs).
    """

    n_ports: int
    equalized_burst: int = 16
    max_burst: int = 256
    baseline_granularity: int = 8

    def hyperconnect_bound(self) -> int:
        """Worst-case grant delay through the HyperConnect, cycles."""
        return worst_case_grant_delay(self.n_ports, 1, self.equalized_burst)

    def baseline_bound(self) -> int:
        """Worst-case grant delay through the baseline, cycles."""
        return worst_case_grant_delay(self.n_ports,
                                      self.baseline_granularity,
                                      self.max_burst)

    def bound_ratio(self) -> float:
        """Baseline bound / HyperConnect bound (pessimism factor)."""
        hc = self.hyperconnect_bound()
        if hc == 0:
            return 1.0
        return self.baseline_bound() / hc
