"""Reservation analysis: supply bounds of the budget/period mechanism.

The TS reservation (mechanism of [10]) grants each port a budget of ``B``
sub-transactions that recharges every period ``T``.  Each equalized
sub-transaction occupies ``s`` data-bus cycles, so a port behaves like a
periodic server of capacity ``B * s`` per ``T`` — the classic bounded-delay
resource model.  This module provides:

* :func:`supply_transactions` — minimum sub-transactions guaranteed in any
  window of length ``t`` (discrete supply bound function);
* :func:`bandwidth_fraction` — the long-run bus fraction the reservation
  pins;
* :func:`wcrt_transactions` — worst-case completion time of a stream of
  ``m`` sub-transactions under the reservation;
* :class:`ReservationAnalysis` — the above bundled per configuration,
  including the paper's HC-X-Y percentage notation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _check(budget: int, period: int, service: int) -> None:
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if period < 1:
        raise ValueError("period must be >= 1")
    if service < 1:
        raise ValueError("service must be >= 1")
    if budget * service > period:
        raise ValueError(
            f"infeasible reservation: {budget} transactions x {service} "
            f"cycles do not fit in a period of {period} cycles")


def bandwidth_fraction(budget: int, period: int, service: int) -> float:
    """Long-run fraction of the data bus pinned by the reservation."""
    _check(budget, period, service)
    return budget * service / period


def supply_transactions(budget: int, period: int, window: int) -> int:
    """Minimum sub-transactions served in *any* window of ``window`` cycles.

    Worst case: the window opens right after the port consumed its whole
    budget at the start of a period, so the first ``period`` cycles may
    contribute nothing ("blackout"), after which every full period
    contributes ``budget`` transactions.
    """
    if budget < 0 or period < 1:
        raise ValueError("budget must be >= 0 and period >= 1")
    if window <= period:
        return 0
    full_periods = (window - period) // period
    return full_periods * budget


def wcrt_transactions(m: int, budget: int, period: int,
                      service: int) -> int:
    """Worst-case cycles to complete ``m`` sub-transactions.

    The stream needs ``ceil(m / budget)`` periods of budget.  In the worst
    case it arrives just after a recharge was fully consumed (initial
    blackout of up to ``period`` cycles); each subsequent period serves
    ``budget`` transactions, and within the final period the remaining
    transactions complete after their service time.

    The bound is exact for a work-conserving TS that issues its budget
    back-to-back at the start of each period (the adversarial pattern).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    _check(budget, period, service)
    if budget == 0:
        raise ValueError("a zero budget never completes work")
    full_periods = (m - 1) // budget     # periods fully consumed before last
    remainder = m - full_periods * budget
    blackout = period                     # initial worst-case wait
    return blackout + full_periods * period + remainder * service


@dataclass(frozen=True)
class ReservationAnalysis:
    """Analysis bundle for one port's reservation configuration."""

    budget: int
    period: int
    nominal_burst: int
    command_overhead: int = 0

    @property
    def service(self) -> int:
        """Cycles one equalized sub-transaction occupies."""
        return self.nominal_burst + self.command_overhead

    @property
    def fraction(self) -> float:
        """Reserved bus fraction (the "X" of HC-X-Y, as 0..1)."""
        return bandwidth_fraction(self.budget, self.period, self.service)

    def guaranteed_bytes(self, window: int, beat_bytes: int) -> int:
        """Bytes guaranteed to move in any window of ``window`` cycles."""
        transactions = supply_transactions(self.budget, self.period, window)
        return transactions * self.nominal_burst * beat_bytes

    def wcrt_bytes(self, nbytes: int, beat_bytes: int) -> int:
        """Worst-case cycles to transfer ``nbytes``."""
        beats = math.ceil(nbytes / beat_bytes)
        m = math.ceil(beats / self.nominal_burst)
        return wcrt_transactions(m, self.budget, self.period, self.service)

    @classmethod
    def for_share(cls, fraction: float, period: int,
                  nominal_burst: int = 16) -> "ReservationAnalysis":
        """Build the configuration the driver programs for HC-X-Y."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        budget = max(1, int(fraction * period / nominal_burst))
        return cls(budget=budget, period=period,
                   nominal_burst=nominal_burst)
