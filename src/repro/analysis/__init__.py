"""Closed-form predictability analysis of the AXI HyperConnect."""

from .containment import ContainmentBound
from .interference import (
    InterferenceModel,
    interfering_transactions,
    transaction_service_cycles,
    worst_case_grant_delay,
)
from .latency import (
    AccessTimeModel,
    hyperconnect_propagation,
    improvement,
    read_propagation,
    smartconnect_propagation,
    write_propagation,
)
from .reservation import (
    ReservationAnalysis,
    bandwidth_fraction,
    supply_transactions,
    wcrt_transactions,
)
from .wcrt import HyperConnectWcrt

__all__ = [
    "ContainmentBound",
    "InterferenceModel",
    "interfering_transactions",
    "transaction_service_cycles",
    "worst_case_grant_delay",
    "AccessTimeModel",
    "hyperconnect_propagation",
    "improvement",
    "read_propagation",
    "smartconnect_propagation",
    "write_propagation",
    "ReservationAnalysis",
    "bandwidth_fraction",
    "supply_transactions",
    "wcrt_transactions",
    "HyperConnectWcrt",
]
