"""Closed-form propagation-latency model.

The HyperConnect's open architecture makes it "amenable to low-level
inspection to extract worst-case timing bounds".  This module captures the
per-channel propagation latencies as functions of the pipeline structure
(Section V-B / Fig. 3a) so that experiments and users can compare analytic
values against simulation:

* address channels traverse four registered stages — slave eFIFO, TS,
  EXBAR, master eFIFO — one cycle each;
* data/response channels traverse only the two eFIFOs (TS and EXBAR act
  proactively).

The SmartConnect values are the paper's *measured* ones (its internals are
closed); they are constants, not structure-derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..memory.dram import DramTiming

#: pipeline stages traversed by address requests inside the HyperConnect
HYPERCONNECT_ADDRESS_STAGES = ("efifo_slave", "ts", "exbar", "efifo_master")
#: stages traversed by data/response beats (proactive routing in between)
HYPERCONNECT_DATA_STAGES = ("efifo_slave", "efifo_master")


def hyperconnect_propagation() -> Dict[str, int]:
    """Per-channel propagation latency of the HyperConnect, in cycles."""
    address = len(HYPERCONNECT_ADDRESS_STAGES)
    data = len(HYPERCONNECT_DATA_STAGES)
    return {"AR": address, "AW": address, "R": data, "W": data, "B": data}


def smartconnect_propagation() -> Dict[str, int]:
    """Measured per-channel SmartConnect latency (paper Fig. 3a)."""
    return {"AR": 12, "AW": 12, "R": 11, "W": 3, "B": 2}


def read_propagation(latencies: Dict[str, int]) -> int:
    """Total interconnect latency on a read: d_AR + d_R."""
    return latencies["AR"] + latencies["R"]


def write_propagation(latencies: Dict[str, int]) -> int:
    """Total interconnect latency on a write: d_AW + d_W + d_B."""
    return latencies["AW"] + latencies["W"] + latencies["B"]


def improvement(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (0..1)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline


@dataclass(frozen=True)
class AccessTimeModel:
    """Analytic end-to-end memory access time in an uncontended system.

    For a read burst of ``beats`` data beats:

    ``t = d_AR + L_mem + (beats - 1) + d_R``

    where ``L_mem`` is the memory subsystem's command-to-first-data
    latency and the data bus streams one beat per cycle afterwards.
    """

    latencies: Dict[str, int]
    memory: DramTiming

    def read_access_cycles(self, beats: int) -> int:
        """Cycles from AR issue to the last R beat at the master."""
        if beats < 1:
            raise ValueError("beats must be >= 1")
        return (self.latencies["AR"] + self.memory.read_latency
                + (beats - 1) + self.latencies["R"])

    def write_access_cycles(self, beats: int) -> int:
        """Cycles from AW issue to the B response at the master."""
        if beats < 1:
            raise ValueError("beats must be >= 1")
        return (self.latencies["AW"] + self.memory.write_latency
                + (beats - 1) + self.memory.resp_latency
                + self.latencies["B"])

    def streaming_cycles(self, total_beats: int, burst: int,
                         outstanding: int) -> int:
        """Lower bound for a pipelined multi-burst read.

        With enough outstanding transactions (``outstanding * burst >=``
        round-trip latency) the data bus never idles after the first
        burst, so the total time is the first-access latency plus one
        cycle per remaining beat.
        """
        if total_beats < burst:
            return self.read_access_cycles(total_beats)
        first = self.read_access_cycles(burst)
        return first + (total_beats - burst)
