"""A process-exportable offload-farm workload.

The HyperConnect fabric models proper are hub-coupled — ports call into
the central unit, beats are identity-shared objects — so their shards
can never leave the parent process.  This module provides the workload
family the ``processes`` backend exists for: independent compute
engines that exchange *plain integer tuples* with a hub over
long-latency unbounded channels, the shape of a host core farming
hash/compress/filter jobs out to accelerator tiles and collecting
results a fixed pipeline depth later.

Each :class:`OffloadEngine` satisfies the whole eligibility chain of
:func:`repro.sim.partition.build_plan`:

* it opts in via :meth:`~repro.sim.Component.process_exportable` and
  declares its full channel footprint (``wake_channels`` = the request
  link, ``pushes_channels`` = the result link);
* both links are unbounded (no backpressure to observe mid-epoch) and
  their latency sets the epoch length — with the default ``latency=32``
  an 8-engine farm runs 32 cycles between barriers;
* payloads are pure int tuples, so every boundary frame takes the
  :mod:`repro.sim.shardwire` SoA fast path (one int64 buffer per
  channel per epoch, not per-beat pickles);
* all mutable state is two counters, exported/imported losslessly.

The per-job digest loop (:func:`offload_digest`) is deliberately
CPU-bound pure Python: it is the work that worker processes genuinely
overlap, which threads on a GIL build cannot.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..sim import Channel, Component, Simulator

_MASK63 = (1 << 63) - 1
_MASK64 = (1 << 64) - 1
_MIX_MULT = 6364136223846793005
_MIX_ADD = 1442695040888963407
_GOLDEN = 0x9E3779B97F4A7C15

#: default request/result link latency; also the epoch length (must be
#: >= partition.MIN_PROCESS_EPOCH for the shard to stay eligible)
DEFAULT_LATENCY = 32


def offload_digest(seed: int, iters: int) -> int:
    """Deterministic CPU-bound job kernel (LCG + xorshift mixing).

    Returns a 63-bit value so result payloads stay inside the signed
    int64 range the SoA wire format requires.
    """
    value = (seed ^ _GOLDEN) & _MASK64
    for _ in range(iters):
        value = (value * _MIX_MULT + _MIX_ADD) & _MASK64
        value ^= value >> 29
    return value & _MASK63


def job_seed(job_id: int) -> int:
    """The seed the hub attaches to job ``job_id`` (63-bit)."""
    return ((job_id + 1) * _GOLDEN) & _MASK63


class OffloadEngine(Component):
    """One compute tile: pops a request, crunches, pushes the result.

    At most one job is retired per cycle; a request that arrives at
    cycle ``t`` produces a result visible to the hub at
    ``t + res.latency``.  The two failure knobs exist for the crash
    containment tests: ``fail_at_job`` raises mid-tick (a contained
    worker error), ``exit_at_job`` kills the hosting process outright
    (a worker death the parent must detect, not hang on).
    """

    def __init__(self, sim: Simulator, name: str, req: Channel,
                 res: Channel, work_iters: int = 120,
                 fail_at_job: Optional[int] = None,
                 exit_at_job: Optional[int] = None) -> None:
        super().__init__(sim, name)
        self.req = req
        self.res = res
        self.work_iters = work_iters
        self.fail_at_job = fail_at_job
        self.exit_at_job = exit_at_job
        self.jobs_done = 0
        self.checksum = 0

    def tick(self, cycle: int) -> None:
        item = self.req.try_pop()
        if item is None:
            return
        job_id, seed = item
        if self.fail_at_job is not None and job_id == self.fail_at_job:
            raise RuntimeError(
                f"{self.name}: injected failure at job {job_id}")
        if self.exit_at_job is not None and job_id == self.exit_at_job:
            os._exit(17)
        digest = offload_digest(seed, self.work_iters)
        self.jobs_done += 1
        self.checksum = (self.checksum * _MIX_MULT + digest) & _MASK63
        self.res.push((job_id, digest))

    # -- fast-path / partition contracts -------------------------------

    def is_quiescent(self, cycle: int) -> bool:
        queue = self.req._queue
        return not queue or queue[0][0] > cycle

    def wake_channels(self) -> list:
        return [self.req]

    def shard_affinity(self) -> str:
        return self.name

    # -- processes-backend contracts ------------------------------------

    def process_exportable(self) -> bool:
        return True

    def pushes_channels(self) -> list:
        return [self.res]

    def export_state(self) -> dict:
        return {"jobs_done": self.jobs_done, "checksum": self.checksum}

    def import_state(self, state: dict) -> None:
        self.jobs_done = state["jobs_done"]
        self.checksum = state["checksum"]


class OffloadHub(Component):
    """The host side: issues jobs round-robin, folds results.

    Lives on the hub shard (no :meth:`shard_affinity`), so it always
    ticks on the parent — it is the component the engines' boundary
    channels connect to.  ``checksum`` folds ``(job_id, digest)`` in
    arrival order, which is deterministic: result order is fixed by the
    channels' FIFO + latency semantics regardless of backend.
    """

    def __init__(self, sim: Simulator, name: str, requests: List[Channel],
                 results: List[Channel], n_jobs: int,
                 issue_per_cycle: Optional[int] = None) -> None:
        super().__init__(sim, name)
        self.requests = requests
        self.results = results
        self.n_jobs = n_jobs
        self.issue_per_cycle = issue_per_cycle or len(requests)
        self.next_job = 0
        self.results_received = 0
        self.checksum = 0

    def tick(self, cycle: int) -> None:
        for channel in self.results:
            item = channel.try_pop()
            while item is not None:
                job_id, digest = item
                self.results_received += 1
                self.checksum = ((self.checksum * _MIX_MULT
                                  + job_id * 3 + digest) & _MASK63)
                item = channel.try_pop()
        issued = 0
        n_engines = len(self.requests)
        while self.next_job < self.n_jobs and issued < self.issue_per_cycle:
            job_id = self.next_job
            self.requests[job_id % n_engines].push(
                (job_id, job_seed(job_id)))
            self.next_job += 1
            issued += 1

    @property
    def done(self) -> bool:
        """All issued jobs have come back."""
        return self.results_received >= self.n_jobs

    def is_quiescent(self, cycle: int) -> bool:
        if self.next_job < self.n_jobs:
            return False
        for channel in self.results:
            queue = channel._queue
            if queue and queue[0][0] <= cycle:
                return False
        return True

    def wake_channels(self) -> list:
        return list(self.results)


def build_offload_farm(sim: Simulator, n_engines: int, *,
                       latency: int = DEFAULT_LATENCY,
                       work_iters: int = 120, n_jobs: int = 256,
                       issue_per_cycle: Optional[int] = None) -> OffloadHub:
    """Wire an ``n_engines``-tile offload farm into ``sim``.

    Engines register before the hub so their shard stages precede the
    hub stage in the partition plan.  Returns the hub; engines are
    reachable as ``hub.engines``.
    """
    requests: List[Channel] = []
    results: List[Channel] = []
    engines: List[OffloadEngine] = []
    for index in range(n_engines):
        req = Channel(sim, f"offload{index}.req", latency=latency,
                      capacity=None)
        res = Channel(sim, f"offload{index}.res", latency=latency,
                      capacity=None)
        engines.append(OffloadEngine(sim, f"offload{index}", req, res,
                                     work_iters=work_iters))
        requests.append(req)
        results.append(res)
    hub = OffloadHub(sim, "offload-hub", requests, results, n_jobs=n_jobs,
                     issue_per_cycle=issue_per_cycle)
    hub.engines = engines
    return hub


def build_offload_sim(n_engines: int = 4, *,
                      latency: int = DEFAULT_LATENCY,
                      work_iters: int = 120, n_jobs: int = 256,
                      parallel: int = 0, parallel_backend: str = "auto",
                      name: str = "offload-farm") -> Simulator:
    """Standalone farm simulator, usable as a spawn-bootstrap recipe.

    The function is its own :attr:`Simulator.parallel_recipe`: it is a
    module-level callable with picklable arguments, so a spawned worker
    can rebuild the identical simulator and adopt its shards by name.
    The hub is reachable via ``sim.lookup("offload-hub")``.
    """
    sim = Simulator(name, parallel=parallel,
                    parallel_backend=parallel_backend)
    build_offload_farm(sim, n_engines, latency=latency,
                       work_iters=work_iters, n_jobs=n_jobs)
    sim.parallel_recipe = (build_offload_sim, (n_engines,), {
        "latency": latency, "work_iters": work_iters, "n_jobs": n_jobs,
        "parallel": 0, "parallel_backend": "inline", "name": name,
    })
    return sim
