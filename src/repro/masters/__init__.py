"""Hardware-accelerator (bus master) models."""

from .accelerator import Phase, PhasedAccelerator
from .chaidnn import (
    GOOGLENET_LAYERS,
    ChaiDnnAccelerator,
    LayerSpec,
    googlenet_total_macs,
    googlenet_total_weight_bytes,
)
from .dma import AxiDma, DmaDescriptor, standard_case_study_dma
from .engine import AxiMasterEngine, Job
from .faulty import FAULT_MODES, FaultInjectingMaster
from .offload import (
    OffloadEngine,
    OffloadHub,
    build_offload_farm,
    build_offload_sim,
    offload_digest,
)
from .tracefile import (
    BusTraceRecorder,
    TraceRecord,
    TraceReplayMaster,
    load_trace,
)
from .traffic import (
    GreedyTrafficGenerator,
    PeriodicTrafficGenerator,
    RandomTrafficGenerator,
    mixed_fleet,
)

__all__ = [
    "Phase",
    "PhasedAccelerator",
    "GOOGLENET_LAYERS",
    "ChaiDnnAccelerator",
    "LayerSpec",
    "googlenet_total_macs",
    "googlenet_total_weight_bytes",
    "AxiDma",
    "DmaDescriptor",
    "standard_case_study_dma",
    "AxiMasterEngine",
    "Job",
    "FAULT_MODES",
    "FaultInjectingMaster",
    "OffloadEngine",
    "OffloadHub",
    "build_offload_farm",
    "build_offload_sim",
    "offload_digest",
    "BusTraceRecorder",
    "TraceRecord",
    "TraceReplayMaster",
    "load_trace",
    "GreedyTrafficGenerator",
    "PeriodicTrafficGenerator",
    "RandomTrafficGenerator",
    "mixed_fleet",
]
