"""Generic AXI master engine.

Every hardware accelerator model in this library (DMA, traffic generators,
the CHaiDNN-like accelerator) is built on :class:`AxiMasterEngine`: a
clocked component that turns byte-level *jobs* ("read N bytes from X",
"write N bytes to Y", "copy N bytes from X to Y") into protocol-legal AXI
bursts, issues them with a configurable number of outstanding transactions,
supplies/collects the data beats, and records per-transaction and per-job
timing.

The engine obeys the AXI rules the rest of the system depends on:

* bursts never cross 4 KiB boundaries and never exceed the protocol's
  maximum length (:func:`repro.axi.burst.legalize`);
* W beats are supplied in AW issue order with WLAST delimiting each burst;
* IDs are allocated from a fixed-width pool and released on completion;
* reads are matched to AR order (the modelled memory is in-order).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ..axi.burst import legalize, split_burst
from ..axi.idgen import IdAllocator
from ..axi.payloads import (
    AddrBeat,
    Transaction,
    WriteBeat,
    make_read_request,
    make_write_request,
)
from ..axi.port import AxiLink
from ..axi.types import Resp
from ..sim.component import Component
from ..sim.errors import ConfigurationError
from ..sim.stats import OnlineStats

#: hoisted enum member: the R/B collectors test every beat's response
#: against OKAY by identity before paying the ``is_error`` property call
_RESP_OKAY = Resp.OKAY


@dataclass
class Job:
    """One byte-level transfer request handed to a master engine."""

    kind: str                  # "read", "write" or "copy"
    address: int               # source (read/copy) or destination (write)
    nbytes: int
    dest: Optional[int] = None     # copy destination
    data: Optional[bytes] = None   # write payload (None = timing-only)
    label: str = ""
    started: Optional[int] = None
    completed: Optional[int] = None
    read_bytes_done: int = 0
    write_bytes_done: int = 0
    result: Optional[bytearray] = None   # assembled read data, if collected
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def latency(self) -> Optional[int]:
        """Cycles from first address issue to completion."""
        if self.started is None or self.completed is None:
            return None
        return self.completed - self.started


class AxiMasterEngine(Component):
    """Burst-issuing AXI master.

    Parameters
    ----------
    sim, name:
        Simulation bookkeeping.
    link:
        The AXI link whose master side this engine drives.
    burst_len:
        Preferred burst length in beats; long transfers are chopped into
        bursts of this size (further legalized against 4 KiB boundaries).
        This is the knob that differentiates "well-behaved" masters
        (16-beat bursts) from greedy ones (256-beat bursts) in the
        fairness experiments.
    max_outstanding:
        Maximum address requests in flight (issued, not yet completed).
    collect_data:
        Keep the data bytes of read jobs in ``job.result`` (requires the
        memory model to carry real data).  Off by default: timing studies
        do not need payloads and run much faster without them.
    qos:
        Value driven on the AxQOS signals (the paper notes SmartConnect
        ignores it; it is carried for completeness).
    """

    def __init__(self, sim, name: str, link: AxiLink,
                 burst_len: int = 16, max_outstanding: int = 8,
                 id_bits: int = 4, collect_data: bool = False,
                 qos: int = 0, w_beat_gap: int = 0) -> None:
        super().__init__(sim, name)
        if burst_len < 1:
            raise ConfigurationError("burst_len must be >= 1")
        if max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be >= 1")
        self.link = link
        self.burst_len = burst_len
        self.max_outstanding = max_outstanding
        self.collect_data = collect_data
        self.qos = qos
        #: idle cycles inserted between W beats (0 = stream at full rate).
        #: Latency-measurement experiments use a non-zero gap so the W
        #: path is observed without self-inflicted queueing.
        self.w_beat_gap = w_beat_gap
        #: first cycle at which the next W beat may be supplied (absolute,
        #: so idle gap cycles need no per-cycle countdown work)
        self._w_gap_until = 0
        self._ids = IdAllocator(id_bits)
        self._jobs: Deque[Job] = deque()
        self._active_jobs: List[Job] = []
        #: address beats ready to issue: (beat, job)
        self._issue_queue: Deque[tuple] = deque()
        #: reads awaiting data, in AR order: [beat, beats_left, job]
        self._outstanding_reads: Deque[list] = deque()
        #: writes awaiting B, in AW order: (beat, job)
        self._outstanding_writes: Deque[tuple] = deque()
        #: len(_outstanding_reads) + len(_outstanding_writes), maintained
        #: incrementally: the outstanding limit is checked every cycle
        self._n_outstanding = 0
        #: W beats to supply, in AW order
        self._write_data: Deque[WriteBeat] = deque()
        #: copy staging: bytes read but not yet re-issued as writes
        self._copy_buffer: Deque[tuple] = deque()
        self.read_latency = OnlineStats()   # per-burst AR->last R
        self.write_latency = OnlineStats()  # per-burst AW->B
        self.job_latency = OnlineStats()
        self.jobs_completed: List[Job] = []
        self.bytes_read = 0
        self.bytes_written = 0
        #: error responses observed on R and B (SLVERR/DECERR beats)
        self.error_responses = 0
        self._active = True
        self._completion_callbacks: List[Callable[[Job, int], None]] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """When False the engine is completely tri-stated: it neither
        issues nor consumes beats.  Clear it when the accelerator has
        been swapped out by dynamic partial reconfiguration and a new
        engine drives the same port.
        """
        return self._active

    @active.setter
    def active(self, value: bool) -> None:
        self._active = bool(value)
        self.sim.wake()

    def enqueue_read(self, address: int, nbytes: int,
                     label: str = "") -> Job:
        """Queue a read of ``nbytes`` from ``address``."""
        job = Job("read", address, self._check_size(nbytes), label=label)
        self._jobs.append(job)
        self.sim.wake()
        return job

    def enqueue_write(self, address: int, nbytes: int,
                      data: Optional[bytes] = None,
                      label: str = "") -> Job:
        """Queue a write of ``nbytes`` to ``address``.

        ``data`` is optional; without it the engine sends timing-only
        beats (payload ``None``).
        """
        if data is not None and len(data) != nbytes:
            raise ConfigurationError(
                f"write data length {len(data)} != nbytes {nbytes}")
        job = Job("write", address, self._check_size(nbytes), data=data,
                  label=label)
        self._jobs.append(job)
        self.sim.wake()
        return job

    def enqueue_copy(self, source: int, dest: int, nbytes: int,
                     label: str = "") -> Job:
        """Queue a copy: read from ``source``, write the data to ``dest``."""
        job = Job("copy", source, self._check_size(nbytes), dest=dest,
                  label=label)
        self._jobs.append(job)
        self.sim.wake()
        return job

    def on_job_complete(self, callback: Callable[[Job, int], None]) -> None:
        """Register ``callback(job, cycle)`` to run at job completion."""
        self._completion_callbacks.append(callback)

    @property
    def busy(self) -> bool:
        """True while any job is queued or in flight."""
        return bool(self._jobs or self._active_jobs or self._issue_queue
                    or self._outstanding_reads or self._outstanding_writes
                    or self._write_data)

    @property
    def outstanding(self) -> int:
        """Issued address requests still awaiting data/response.

        Liveness tests assert this reaches zero: whatever faults the
        fabric contains, every issued transaction must be answered.
        """
        return len(self._outstanding_reads) + len(self._outstanding_writes)

    def _check_size(self, nbytes: int) -> int:
        beat = self.link.data_bytes
        if nbytes < 1 or nbytes % beat:
            raise ConfigurationError(
                f"transfer size must be a positive multiple of the bus "
                f"width ({beat} B), got {nbytes}")
        return nbytes

    # ------------------------------------------------------------------
    # burst preparation
    # ------------------------------------------------------------------

    def _bursts_for(self, address: int, nbytes: int) -> List[tuple]:
        """Chop a linear transfer into (addr, beats) bursts."""
        beat = self.link.data_bytes
        pieces = []
        for chunk_addr, chunk_beats in split_burst(
                address, nbytes // beat, beat, self.burst_len):
            pieces.extend(legalize(chunk_addr, chunk_beats, beat,
                                   self.link.version))
        return pieces

    def _prepare_job(self, job: Job, cycle: int) -> None:
        """Expand a job into issueable address beats."""
        beat = self.link.data_bytes
        if job.kind in ("read", "copy"):
            for addr, beats in self._bursts_for(job.address, job.nbytes):
                txn = Transaction("read", self.name, addr, beats, beat)
                request = make_read_request(txn, txn_id=0, qos=self.qos)
                self._issue_queue.append((request, job))
        if job.kind == "write":
            offset = 0
            for addr, beats in self._bursts_for(job.address, job.nbytes):
                chunk = None
                if job.data is not None:
                    chunk = job.data[offset:offset + beats * beat]
                txn = Transaction("write", self.name, addr, beats, beat,
                                  data=chunk)
                request = make_write_request(txn, txn_id=0, qos=self.qos)
                self._issue_queue.append((request, job))
                offset += beats * beat
        self._active_jobs.append(job)

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        # start queued jobs (keeping the issue queue shallow: one job's
        # bursts at a time plus the next job for pipelining)
        if self._jobs:
            while self._jobs and len(self._issue_queue) < 2 * self.burst_len:
                self._prepare_job(self._jobs.popleft(), cycle)
        # each sub-step call is gated on the cheap part of its own guard,
        # so an idle step costs an attribute test instead of a call (the
        # guards repeat inside the sub-steps, which subclasses override)
        if self._issue_queue and self._n_outstanding < self.max_outstanding:
            self._issue_addresses(cycle)
        if self._write_data and cycle >= self._w_gap_until:
            self._supply_write_data(cycle)
        link = self.link
        queue = link.r._queue
        if queue and queue[0][0] <= cycle:
            self._collect_read_data(cycle)
        queue = link.b._queue
        if queue and queue[0][0] <= cycle:
            self._collect_write_responses(cycle)
        if self._copy_buffer:
            self._drain_copy_buffer(cycle)

    def is_quiescent(self, cycle: int) -> bool:
        """True when no tick sub-step could act this cycle.

        Mirrors :meth:`tick` exactly: nothing to collect (R/B heads not
        visible), nothing to prepare, the issue-queue head blocked by
        outstanding/ID/channel limits, and W supply gated or blocked.
        Copy staging is treated conservatively (never quiescent while the
        copy buffer holds beats).
        """
        if not self._active:
            return True
        link = self.link
        # inlined can_pop on the two hottest guards (polled every cycle
        # the engine is awake)
        queue = link.r._queue
        if queue and queue[0][0] <= cycle:
            return False
        queue = link.b._queue
        if queue and queue[0][0] <= cycle:
            return False
        if self._jobs and len(self._issue_queue) < 2 * self.burst_len:
            return False
        if self._copy_buffer:
            return False
        if self._issue_queue:
            if (self._n_outstanding < self.max_outstanding
                    and self._ids.available()):
                request, _job = self._issue_queue[0]
                if request.is_read:
                    if link.ar.can_push():
                        return False
                elif link.aw.can_push():
                    return False
        if (self._write_data and cycle >= self._w_gap_until
                and link.w.can_push()):
            return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """The W-beat gap timer is the engine's only internal alarm."""
        if self._active and self._write_data and cycle < self._w_gap_until:
            return self._w_gap_until
        return None

    def wake_channels(self) -> list:
        """The engine's five AXI channels.

        Every other un-quiescing input arrives through explicit wakes:
        job enqueues, the ``active`` setter, and :meth:`reset` all call
        :meth:`Simulator.wake`, and the W-gap timer rides the wake heap
        via :meth:`next_event_cycle`.
        """
        link = self.link
        return [link.ar, link.aw, link.w, link.r, link.b]

    def shard_affinity(self) -> Optional[str]:
        """Engines inherit the shard of the port link they drive.

        A HyperConnect port link carries a ``shard_key``; a plain
        :class:`~repro.axi.port.AxiLink` (e.g. behind an in-order
        adapter) does not, which correctly lands the engine in the
        serial hub shard.  The partitioner additionally demotes engines
        whose completion callbacks are owned by foreign objects (e.g. a
        hypervisor interrupt bridge), since those callbacks run inside
        the engine's tick.
        """
        return getattr(self.link, "shard_key", None)

    # -- address issue --------------------------------------------------

    def _issue_addresses(self, cycle: int) -> None:
        issued_ar = issued_aw = False
        scan = len(self._issue_queue)
        while scan and (not issued_ar or not issued_aw):
            scan -= 1
            if not self._issue_queue:
                break
            request, job = self._issue_queue[0]
            if self._n_outstanding >= self.max_outstanding:
                break
            if not self._ids.available():
                break
            if request.is_read:
                if issued_ar or not self.link.ar.can_push():
                    break
                self._issue_queue.popleft()
                request.txn_id = self._ids.allocate()
                request.txn.issued = cycle
                request.stamps["issued"] = cycle
                if job.started is None:
                    job.started = cycle
                self.link.ar.push(request)
                self._outstanding_reads.append(
                    [request, request.length, job])
                self._n_outstanding += 1
                issued_ar = True
            else:
                if issued_aw or not self.link.aw.can_push():
                    break
                self._issue_queue.popleft()
                request.txn_id = self._ids.allocate()
                request.txn.issued = cycle
                request.stamps["issued"] = cycle
                if job.started is None:
                    job.started = cycle
                self.link.aw.push(request)
                self._outstanding_writes.append((request, job))
                self._n_outstanding += 1
                self._queue_write_beats(request)
                issued_aw = True

    def _queue_write_beats(self, request: AddrBeat) -> None:
        beat_bytes = request.size_bytes
        payload = request.txn.data if request.txn else None
        for index in range(request.length):
            chunk = None
            if payload is not None:
                chunk = payload[index * beat_bytes:(index + 1) * beat_bytes]
            self._write_data.append(WriteBeat(
                last=index == request.length - 1,
                data=chunk,
                addr_beat=request,
            ))

    # -- data movement ---------------------------------------------------

    def _supply_write_data(self, cycle: int) -> None:
        if cycle < self._w_gap_until:
            return
        write_data = self._write_data
        if write_data and self.link.w.try_push(write_data[0]):
            write_data.popleft()
            self._w_gap_until = cycle + self.w_beat_gap + 1

    def _collect_read_data(self, cycle: int) -> None:
        # inlined Channel.try_pop: one beat per cycle at full bandwidth
        # runs through here, so the pop is spelled out (the R channel is
        # never gated — only the HA-driven AR/AW/W sides are)
        r = self.link.r
        queue = r._queue
        if not queue or queue[0][0] > cycle:
            return
        __, beat = queue.popleft()
        r._popped_this_cycle += 1
        r.popped_total += 1
        if not r._dirty:
            r._dirty = True
            sim = r._sim
            sim._dirty_channels.append(r)
            sim._quiescent_until = 0
        if r._pop_listeners:
            for callback in r._pop_listeners:
                callback(cycle, beat)
        if not self._outstanding_reads:
            raise ConfigurationError(
                f"{self.name}: R beat with no outstanding read")
        entry = self._outstanding_reads[0]
        request, beats_left, job = entry
        txn = request.txn
        if txn is not None and txn.first_data is None:
            txn.first_data = cycle
        resp = beat.resp
        if resp is not _RESP_OKAY and resp.is_error:
            self.error_responses += 1
            if txn is not None:
                txn.resp = txn.resp.merged_with(resp)
        entry[1] = beats_left - 1
        self.bytes_read += request.size_bytes
        job.read_bytes_done += request.size_bytes
        if self.collect_data and beat.data is not None:
            if job.result is None:
                job.result = bytearray()
            job.result.extend(beat.data)
        if job.kind == "copy":
            self._copy_buffer.append((job, beat.data))
        if entry[1] == 0:
            self._outstanding_reads.popleft()
            self._n_outstanding -= 1
            self._ids.release(request.txn_id)
            if txn is not None:
                txn.last_data = cycle
                txn.completed = cycle
                if txn.issued is not None:
                    self.read_latency.add(cycle - txn.issued)
            if job.kind == "read":
                self._maybe_finish(job, cycle)

    def _collect_write_responses(self, cycle: int) -> None:
        response = self.link.b.try_pop()
        if response is None:
            return
        if not self._outstanding_writes:
            raise ConfigurationError(
                f"{self.name}: B response with no outstanding write")
        request, job = self._outstanding_writes.popleft()
        self._n_outstanding -= 1
        self._ids.release(request.txn_id)
        resp = response.resp
        if resp is not _RESP_OKAY and resp.is_error:
            self.error_responses += 1
        txn = request.txn
        if txn is not None:
            txn.completed = cycle
            txn.resp = txn.resp.merged_with(response.resp)
            if txn.issued is not None:
                self.write_latency.add(cycle - txn.issued)
        self.bytes_written += request.length * request.size_bytes
        job.write_bytes_done += request.length * request.size_bytes
        self._maybe_finish(job, cycle)

    # -- copy jobs ---------------------------------------------------------

    def _drain_copy_buffer(self, cycle: int) -> None:
        """Turn buffered read beats of copy jobs into write bursts."""
        beat_bytes = self.link.data_bytes
        while self._copy_buffer:
            job = self._copy_buffer[0][0]
            buffered = sum(1 for entry in self._copy_buffer
                           if entry[0] is job)
            total_beats = job.nbytes // beat_bytes
            written = job.meta.get("copy_issued_beats", 0)
            remaining = total_beats - written
            chunk = min(self.burst_len, remaining)
            if buffered < chunk:
                break
            data_parts = []
            for _ in range(chunk):
                __, data = self._copy_buffer.popleft()
                data_parts.append(data)
            address = (job.dest or 0) + written * beat_bytes
            payload = None
            if all(part is not None for part in data_parts):
                payload = b"".join(data_parts)
            for sub_addr, sub_beats in legalize(
                    address, chunk, beat_bytes, self.link.version):
                txn = Transaction("write", self.name, sub_addr, sub_beats,
                                  beat_bytes, data=payload)
                request = make_write_request(txn, txn_id=0, qos=self.qos)
                self._issue_queue.append((request, job))
                payload = None  # only attach once; sub-splits are rare
            job.meta["copy_issued_beats"] = written + chunk

    # -- reset -------------------------------------------------------------

    def reset(self) -> None:
        """Hard reset: drop all queued and in-flight work.

        Models the accelerator being reprogrammed (dynamic partial
        reconfiguration) or reset after a fault: protocol state is gone.
        Callers must only re-couple a previously decoupled port after
        resetting the engine behind it, exactly as a real DPR flow resets
        the swapped region.  Statistics are preserved.
        """
        self._jobs.clear()
        self._active_jobs.clear()
        self._issue_queue.clear()
        self._outstanding_reads.clear()
        self._outstanding_writes.clear()
        self._n_outstanding = 0
        self._write_data.clear()
        self._copy_buffer.clear()
        self._w_gap_until = 0
        self._ids = IdAllocator(self._ids.capacity.bit_length() - 1)
        self.sim.wake()

    # -- completion --------------------------------------------------------

    def _maybe_finish(self, job: Job, cycle: int) -> None:
        if job.completed is not None:
            return
        if job.kind == "read":
            done = job.read_bytes_done >= job.nbytes
        elif job.kind == "write":
            done = job.write_bytes_done >= job.nbytes
        else:  # copy
            done = (job.read_bytes_done >= job.nbytes
                    and job.write_bytes_done >= job.nbytes)
        if not done:
            return
        job.completed = cycle
        if job in self._active_jobs:
            self._active_jobs.remove(job)
        self.jobs_completed.append(job)
        if job.latency is not None:
            self.job_latency.add(job.latency)
        for callback in self._completion_callbacks:
            callback(job, cycle)
