"""Misbehaving AXI masters for the fault-injection campaign.

The watchdog/containment subsystem exists because a *master* can violate
liveness just as thoroughly as a slave: stop accepting R beats and every
queue back to the memory controller fills; withhold W beats and the
write channel wedges behind the granted AW; issue a protocol-illegal
burst and an unchecked interconnect forwards the corruption downstream.
:class:`FaultInjectingMaster` models exactly these three behaviours on
top of the stock :class:`~repro.masters.engine.AxiMasterEngine`.

Determinism contract: the fault trigger is drawn **once** at
construction from a seeded RNG, never per cycle, so the component's
``is_quiescent`` promise stays exact and reference/fast kernel runs are
bit-identical.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, Union

from ..axi.burst import split_burst
from ..axi.port import AxiLink
from ..sim.errors import ConfigurationError
from .engine import AxiMasterEngine

#: supported misbehaviours
FAULT_MODES = ("none", "hung_r", "withheld_w", "illegal_burst")


class FaultInjectingMaster(AxiMasterEngine):
    """An :class:`AxiMasterEngine` that misbehaves on cue.

    Parameters
    ----------
    fault_mode:
        ``"hung_r"`` — after ``hang_after_beats`` R beats, stop accepting
        read data forever (ready held low).
        ``"withheld_w"`` — after ``hang_after_beats`` W beats, stop
        supplying write data forever (valid held low mid-burst).
        ``"illegal_burst"`` — skip burst legalization, so transfers that
        straddle a 4 KiB boundary are issued as single illegal bursts.
        ``"none"`` — behave exactly like the base engine.
    hang_after_beats:
        Beat count before the hang; either an exact int or an inclusive
        ``(lo, hi)`` range resolved once from ``seed``.
    persistent:
        When ``False`` (default) a hypervisor :meth:`reset` also clears
        the fault mode, modelling a transient upset fixed by reprogramming
        the accelerator.  ``True`` models a broken bitstream that refaults
        after every recovery attempt (exercises the retry bound).
    """

    def __init__(self, sim, name: str, link: AxiLink,
                 fault_mode: str = "none",
                 hang_after_beats: Union[int, Tuple[int, int]] = 16,
                 seed: int = 0, persistent: bool = False,
                 **engine_kwargs) -> None:
        super().__init__(sim, name, link, **engine_kwargs)
        if fault_mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault_mode {fault_mode!r}; "
                f"expected one of {FAULT_MODES}")
        self.fault_mode = fault_mode
        self.persistent = persistent
        if isinstance(hang_after_beats, tuple):
            lo, hi = hang_after_beats
            if not 0 <= lo <= hi:
                raise ConfigurationError(
                    f"bad hang_after_beats range {hang_after_beats}")
            # drawn exactly once: per-cycle RNG would void is_quiescent
            hang_after_beats = random.Random(seed).randint(lo, hi)
        if hang_after_beats < 0:
            raise ConfigurationError("hang_after_beats must be >= 0")
        self.hang_after_beats = hang_after_beats
        self._beats_seen = 0
        #: cycle at which the hang engaged (None = still behaving)
        self.hung_at: Optional[int] = None

    @property
    def is_hung(self) -> bool:
        """True once the injected hang has engaged."""
        return self.hung_at is not None

    # ------------------------------------------------------------------
    # the three misbehaviours
    # ------------------------------------------------------------------

    def _bursts_for(self, address: int, nbytes: int) -> List[tuple]:
        if self.fault_mode != "illegal_burst":
            return super()._bursts_for(address, nbytes)
        # skip legalize(): chunks keep the preferred length even when
        # that makes them straddle a 4 KiB boundary
        beat = self.link.data_bytes
        return list(split_burst(address, nbytes // beat, beat,
                                self.burst_len))

    def _collect_read_data(self, cycle: int) -> None:
        if self.fault_mode == "hung_r":
            if self.hung_at is not None:
                return  # ready low forever: R beats pile up behind us
            if self.link.r.can_pop():
                if self._beats_seen >= self.hang_after_beats:
                    self.hung_at = cycle
                    self.sim.wake()
                    return
                self._beats_seen += 1
        super()._collect_read_data(cycle)

    def _supply_write_data(self, cycle: int) -> None:
        if self.fault_mode == "withheld_w":
            if self.hung_at is not None:
                return
            would_supply = (cycle >= self._w_gap_until and self._write_data
                            and self.link.w.can_push())
            if would_supply:
                if self._beats_seen >= self.hang_after_beats:
                    self.hung_at = cycle
                    self.sim.wake()
                    return
                self._beats_seen += 1
        super()._supply_write_data(cycle)

    # ------------------------------------------------------------------
    # fast-path contract
    # ------------------------------------------------------------------

    def is_quiescent(self, cycle: int) -> bool:
        """Exact mirror of the faulty tick.

        Pre-hang the base predicate is already exact (the cycle that
        *would* consume/supply the triggering beat is a state change
        either way).  Post-hang, the hung channel must be masked out of
        the base predicate or the fast path would believe the master
        still wants to act on it.
        """
        if self.hung_at is None:
            return super().is_quiescent(cycle)
        if not self._active:
            return True
        link = self.link
        if self.fault_mode != "hung_r" and link.r.can_pop():
            return False
        if link.b.can_pop():
            return False
        if self._jobs and len(self._issue_queue) < 2 * self.burst_len:
            return False
        if self._copy_buffer:
            return False
        if self._issue_queue:
            if (self._n_outstanding < self.max_outstanding
                    and self._ids.available()):
                request, _job = self._issue_queue[0]
                if request.is_read:
                    if link.ar.can_push():
                        return False
                elif link.aw.can_push():
                    return False
        if (self.fault_mode != "withheld_w" and self._write_data
                and cycle >= self._w_gap_until and link.w.can_push()):
            return False
        return True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.hung_at is not None and self.fault_mode == "withheld_w":
            return None  # the gap timer will never be acted upon
        return super().next_event_cycle(cycle)

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset clears the hang; a non-persistent fault is cured."""
        super().reset()
        self.hung_at = None
        self._beats_seen = 0
        if not self.persistent:
            self.fault_mode = "none"
