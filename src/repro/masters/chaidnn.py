"""CHaiDNN-like DNN accelerator model (quantized GoogleNet workload).

The paper's case study accelerates the quantized GoogleNet network shipped
with Xilinx CHaiDNN.  We cannot run the CHaiDNN bitstream, so this module
reproduces its *bus behaviour*: a layer-by-layer pipeline where each layer
reads its weights and input feature map from DRAM, computes for a number of
cycles proportional to its MAC count, and writes its output feature map
back — i.e. alternating memory and compute phases whose aggregate traffic
and compute match GoogleNet's published shape (~6.9 MB of INT8 weights,
~1.6 G MACs, a few MB of feature maps per frame).

Only this envelope matters for Fig. 4/5: the accelerator needs a bounded
share of memory bandwidth to sustain its frame rate, and a greedy DMA can
steal that share through an unsupervised interconnect.

The byte counts below are per-stage aggregates of the standard GoogleNet
(Inception v1) topology at 224x224 input, INT8 quantized.  A ``scale``
parameter shrinks the workload proportionally so long simulations stay
cheap; frame *rate ratios* between interconnect configurations are
preserved under scaling (both compute and memory shrink alike).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.errors import ConfigurationError
from .accelerator import Phase, PhasedAccelerator


@dataclass(frozen=True)
class LayerSpec:
    """One (aggregated) GoogleNet stage."""

    name: str
    weight_bytes: int
    ifmap_bytes: int
    ofmap_bytes: int
    macs: int


#: Aggregated quantized-GoogleNet stage table (INT8 bytes, MAC counts).
GOOGLENET_LAYERS: List[LayerSpec] = [
    LayerSpec("conv1_7x7_s2", 9_408, 150_528, 802_816, 118_013_952),
    LayerSpec("conv2_3x3", 323_584, 200_704, 401_408, 360_464_384),
    LayerSpec("inception_3a", 163_696, 200_704, 200_704, 128_668_672),
    LayerSpec("inception_3b", 388_736, 200_704, 339_456, 304_901_120),
    LayerSpec("inception_4a", 376_176, 84_864, 92_928, 73_725_952),
    LayerSpec("inception_4b", 449_160, 92_928, 100_352, 88_482_816),
    LayerSpec("inception_4c", 510_104, 100_352, 100_352, 100_026_368),
    LayerSpec("inception_4d", 605_376, 100_352, 103_488, 118_752_256),
    LayerSpec("inception_4e", 868_352, 103_488, 163_072, 170_301_440),
    LayerSpec("inception_5a", 1_043_456, 40_768, 40_768, 51_126_272),
    LayerSpec("inception_5b", 1_444_080, 40_768, 50_176, 70_778_880),
    LayerSpec("classifier", 1_024_000, 50_176, 1_000, 1_024_000),
]


def googlenet_total_macs() -> int:
    """Total multiply-accumulates per frame."""
    return sum(layer.macs for layer in GOOGLENET_LAYERS)


def googlenet_total_weight_bytes() -> int:
    """Total INT8 weight bytes per frame."""
    return sum(layer.weight_bytes for layer in GOOGLENET_LAYERS)


class ChaiDnnAccelerator(PhasedAccelerator):
    """HA_CHaiDNN: the CHaiDNN accelerator subsystem as a bus master.

    Inherits :class:`PhasedAccelerator`'s quiescence contract unchanged:
    during compute phases the model is quiescent with a
    ``next_event_cycle`` hint at the phase end, so the fast kernel path
    skips the long MAC-bound stretches (the dominant fraction of a frame
    at realistic ``macs_per_cycle``) in bulk.

    Parameters
    ----------
    macs_per_cycle:
        Datapath throughput (CHaiDNN's DSP array sustains on the order of
        1024 INT8 MACs per PL cycle in its large configuration).
    scale:
        Linear workload scale in (0, 1]: byte counts and compute cycles
        are multiplied by it.  ``1.0`` is the full network.
    weight_base / fmap_base:
        DRAM placement of weights and ping-pong feature-map buffers.
    layers:
        Alternative layer table (defaults to GoogleNet).
    """

    def __init__(self, sim, name: str, link,
                 macs_per_cycle: int = 1024, scale: float = 1.0,
                 frames: Optional[int] = None,
                 weight_base: int = 0x7000_0000,
                 fmap_base: int = 0x7800_0000,
                 layers: Optional[List[LayerSpec]] = None,
                 burst_len: int = 16, max_outstanding: int = 4,
                 **kwargs) -> None:
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        if macs_per_cycle < 1:
            raise ConfigurationError("macs_per_cycle must be >= 1")
        self.scale = scale
        self.macs_per_cycle = macs_per_cycle
        self.layers = list(layers) if layers is not None else GOOGLENET_LAYERS
        beat = link.data_bytes
        phases = self._build_phases(beat, weight_base, fmap_base)
        super().__init__(sim, name, link, phases, frames=frames,
                         burst_len=burst_len,
                         max_outstanding=max_outstanding, **kwargs)

    # ------------------------------------------------------------------

    def _round_bytes(self, nbytes: int, beat: int) -> int:
        scaled = max(beat, int(nbytes * self.scale))
        return ((scaled + beat - 1) // beat) * beat

    def _build_phases(self, beat: int, weight_base: int,
                      fmap_base: int) -> List[Phase]:
        phases: List[Phase] = []
        weight_cursor = weight_base
        ping, pong = fmap_base, fmap_base + (1 << 23)
        for layer in self.layers:
            weights = self._round_bytes(layer.weight_bytes, beat)
            ifmap = self._round_bytes(layer.ifmap_bytes, beat)
            ofmap = self._round_bytes(layer.ofmap_bytes, beat)
            compute = max(1, int(layer.macs * self.scale
                                 // self.macs_per_cycle))
            phases.append(Phase("read", nbytes=weights,
                                address=weight_cursor,
                                label=f"{layer.name}:weights"))
            phases.append(Phase("read", nbytes=ifmap, address=ping,
                                label=f"{layer.name}:ifmap"))
            phases.append(Phase("compute", cycles=compute,
                                label=f"{layer.name}:compute"))
            phases.append(Phase("write", nbytes=ofmap, address=pong,
                                label=f"{layer.name}:ofmap"))
            weight_cursor += ((weights + 4095) // 4096) * 4096
            ping, pong = pong, ping
        return phases

    # ------------------------------------------------------------------

    @property
    def fps(self) -> float:
        """Frames per second over the observation window."""
        return self.frame_rate.rate()

    def traffic_bytes_per_frame(self) -> int:
        """Total DRAM traffic (reads + writes) per frame."""
        return sum(phase.nbytes for phase in self.phases
                   if phase.kind != "compute")

    def compute_cycles_per_frame(self) -> int:
        """Total datapath-busy cycles per frame."""
        return sum(phase.cycles for phase in self.phases
                   if phase.kind == "compute")
