"""Generic phased hardware-accelerator model.

Most real HAs alternate between *memory phases* (DMA-in of inputs/weights,
DMA-out of results) and *compute phases* (the datapath crunches on local
BRAM and the bus is quiet).  :class:`PhasedAccelerator` models exactly
that: a repeating sequence of :class:`Phase` steps driven by the generic
AXI master engine.  The CHaiDNN model is built on top of it.

It also models the SW-task interaction of Section II: the accelerator is
*started* (the SW-task writing its control registers through the PS-FPGA
interface), runs asynchronously, and raises a completion interrupt per
frame (represented by the completion callback / counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.errors import ConfigurationError
from ..sim.stats import OnlineStats, RateCounter
from .engine import AxiMasterEngine, Job


@dataclass(frozen=True)
class Phase:
    """One step of an accelerator's processing pipeline.

    ``kind`` is ``"read"``, ``"write"`` or ``"compute"``; memory phases
    carry ``nbytes`` (+ ``address``), compute phases carry ``cycles``.
    """

    kind: str
    nbytes: int = 0
    address: int = 0
    cycles: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write", "compute"):
            raise ConfigurationError(
                f"phase kind must be read/write/compute, got {self.kind!r}")
        if self.kind == "compute" and self.cycles < 1:
            raise ConfigurationError("compute phase needs cycles >= 1")
        if self.kind != "compute" and self.nbytes < 1:
            raise ConfigurationError("memory phase needs nbytes >= 1")


class PhasedAccelerator(AxiMasterEngine):
    """Hardware accelerator running a repeating list of phases.

    One pass over all phases is a *frame* (the paper's CHaiDNN performance
    index is frames per second).  The accelerator starts idle; call
    :meth:`start`.

    Parameters
    ----------
    phases:
        The per-frame phase list.
    frames:
        Number of frames to process; ``None`` repeats until :meth:`stop`.
    overlap:
        When true, consecutive memory phases are pipelined (the next
        phase's job is enqueued as soon as the previous one is enqueued,
        not completed).  Compute phases always act as barriers, as in real
        accelerators that must have their inputs resident before starting.
    """

    def __init__(self, sim, name: str, link,
                 phases: List[Phase], frames: Optional[int] = None,
                 overlap: bool = False, **kwargs) -> None:
        super().__init__(sim, name, link, **kwargs)
        if not phases:
            raise ConfigurationError("phase list must not be empty")
        self.phases = list(phases)
        self.frames_target = frames
        self.overlap = overlap
        self.frames_completed = 0
        self.frame_rate = RateCounter(sim.clock_hz)
        self.frame_latency = OnlineStats()
        self._running = False
        self._phase_index = 0
        #: cycle at which the current compute phase ends (absolute, so
        #: compute stretches need no per-cycle countdown work)
        self._compute_until = 0
        self._frame_started: Optional[int] = None
        self._waiting_job: Optional[Job] = None
        self._frame_callbacks: List[Callable[[int, int], None]] = []
        self.on_job_complete(self._job_finished)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin processing (the SW-task's request for acceleration)."""
        self._running = True
        self.sim.wake()

    def stop(self) -> None:
        """Stop after the current frame."""
        self.frames_target = self.frames_completed + 1

    def on_frame_complete(self,
                          callback: Callable[[int, int], None]) -> None:
        """Register ``callback(frame_index, cycle)`` per completed frame."""
        self._frame_callbacks.append(callback)

    @property
    def done(self) -> bool:
        """True once the requested number of frames has completed."""
        return (self.frames_target is not None
                and self.frames_completed >= self.frames_target)

    # ------------------------------------------------------------------

    def _job_finished(self, job: Job, cycle: int) -> None:
        if job is self._waiting_job:
            self._waiting_job = None

    def _advance(self, cycle: int) -> None:
        """Drive the phase state machine as far as possible this cycle."""
        while True:
            if self._waiting_job is not None:
                return
            if cycle < self._compute_until:
                return
            if self._phase_index >= len(self.phases):
                self._finish_frame(cycle)
                if not self._running:
                    return
                continue
            if self._frame_started is None:
                self._frame_started = cycle
            phase = self.phases[self._phase_index]
            self._phase_index += 1
            if phase.kind == "compute":
                # compute may start only when all memory traffic landed
                if self.busy:
                    self._phase_index -= 1
                    self._waiting_job = self._last_enqueued_job()
                    if self._waiting_job is None:
                        return
                    return
                self._compute_until = cycle + phase.cycles
                return
            if phase.kind == "read":
                job = self.enqueue_read(phase.address, phase.nbytes,
                                        label=phase.label or "phase-read")
            else:
                job = self.enqueue_write(phase.address, phase.nbytes,
                                         label=phase.label or "phase-write")
            if not self.overlap:
                self._waiting_job = job
                return

    def _last_enqueued_job(self) -> Optional[Job]:
        if self._jobs:
            return self._jobs[-1]
        if self._active_jobs:
            return self._active_jobs[-1]
        return None

    def _finish_frame(self, cycle: int) -> None:
        self.frames_completed += 1
        self.frame_rate.record(cycle)
        if self._frame_started is not None:
            self.frame_latency.add(cycle - self._frame_started)
        for callback in self._frame_callbacks:
            callback(self.frames_completed, cycle)
        self._phase_index = 0
        self._frame_started = None
        if self.done:
            self._running = False

    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        if self._running:
            self._advance(cycle)
        super().tick(cycle)

    def is_quiescent(self, cycle: int) -> bool:
        """The phase machine needs its tick whenever it could advance:
        running, not blocked on a memory job, and not mid-compute."""
        if (self._running and self._waiting_job is None
                and cycle >= self._compute_until):
            return False
        return super().is_quiescent(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Compute-phase completion is a guaranteed internal event."""
        hint = super().next_event_cycle(cycle)
        if (self._running and self._waiting_job is None
                and cycle < self._compute_until):
            if hint is None or self._compute_until < hint:
                return self._compute_until
        return hint
