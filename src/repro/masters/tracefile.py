"""Bus-trace capture and replay.

Records the request stream an accelerator emits on its port and replays
it later as a synthetic master.  This is how one evaluates interconnect
configurations against *captured* workloads — e.g. record one CHaiDNN
frame, then sweep reservation settings replaying the identical traffic —
and how external traces (from real hardware probes) can be imported: the
format is one JSON object per line with ``cycle``, ``kind``, ``address``
and ``beats`` fields.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Union

from ..axi.payloads import AddrBeat
from ..axi.port import AxiLink
from ..sim.errors import ConfigurationError
from .engine import AxiMasterEngine


@dataclass(frozen=True)
class TraceRecord:
    """One recorded request (a whole burst)."""

    cycle: int
    kind: str       # "read" or "write"
    address: int
    beats: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ConfigurationError(
                f"trace record kind must be read/write, got {self.kind!r}")
        if self.beats < 1 or self.cycle < 0:
            raise ConfigurationError("invalid trace record")


class BusTraceRecorder:
    """Captures the AR/AW request stream of one link."""

    def __init__(self, link: AxiLink) -> None:
        self.link = link
        self.records: List[TraceRecord] = []
        link.ar.subscribe_push(self._on_ar)
        link.aw.subscribe_push(self._on_aw)

    def _on_ar(self, cycle: int, beat: AddrBeat) -> None:
        self.records.append(TraceRecord(cycle, "read", beat.address,
                                        beat.length))

    def _on_aw(self, cycle: int, beat: AddrBeat) -> None:
        self.records.append(TraceRecord(cycle, "write", beat.address,
                                        beat.length))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record)) + "\n")
        return path


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a JSON-lines trace file."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        fields = json.loads(line)
        records.append(TraceRecord(**fields))
    return records


class TraceReplayMaster(AxiMasterEngine):
    """Replays a recorded request stream with its original pacing.

    Each record is released at its recorded cycle offset (relative to
    :meth:`start`); earlier-than-possible releases simply queue, so
    replaying through a slower configuration back-pressures naturally —
    exactly like the original accelerator would.
    """

    def __init__(self, sim, name: str, link, trace: List[TraceRecord],
                 **kwargs) -> None:
        super().__init__(sim, name, link, **kwargs)
        self.trace = sorted(trace, key=lambda record: record.cycle)
        self._cursor = 0
        self._start_cycle = None
        self.replays_completed = 0
        self.on_job_complete(self._count)

    def _count(self, job, cycle) -> None:
        if job.label == "replay":
            self.replays_completed += 1

    def start(self) -> None:
        """Begin replay at the current cycle."""
        self._start_cycle = self.sim.now
        self.sim.wake()

    @property
    def done(self) -> bool:
        """True when every record has been issued and completed."""
        return (self._start_cycle is not None
                and self._cursor >= len(self.trace)
                and not self.busy)

    def tick(self, cycle: int) -> None:
        if self._start_cycle is not None:
            elapsed = cycle - self._start_cycle
            while (self._cursor < len(self.trace)
                   and self.trace[self._cursor].cycle <= elapsed):
                record = self.trace[self._cursor]
                self._cursor += 1
                nbytes = record.beats * self.link.data_bytes
                if record.kind == "read":
                    self.enqueue_read(record.address, nbytes,
                                      label="replay")
                else:
                    self.enqueue_write(record.address, nbytes,
                                       label="replay")
        super().tick(cycle)

    def _next_release(self) -> "int | None":
        """Absolute cycle of the next trace-record release, if any."""
        if self._start_cycle is None or self._cursor >= len(self.trace):
            return None
        return self._start_cycle + self.trace[self._cursor].cycle

    def is_quiescent(self, cycle: int) -> bool:
        """Quiescent between scheduled releases (the release times are
        fixed offsets from :meth:`start`, so they are exactly known)."""
        release = self._next_release()
        if release is not None and release <= cycle:
            return False
        return super().is_quiescent(cycle)

    def next_event_cycle(self, cycle: int) -> "int | None":
        """The next scheduled release is a guaranteed internal event."""
        hint = super().next_event_cycle(cycle)
        release = self._next_release()
        if release is not None and release > cycle:
            if hint is None or release < hint:
                return release
        return hint
