"""Synthetic traffic generators.

Three archetypes used throughout the evaluation and the isolation studies:

* :class:`GreedyTrafficGenerator` — a "bandwidth stealer": keeps the bus
  saturated with back-to-back jobs, optionally with very long bursts.  This
  is the misbehaving/low-criticality HA of the paper's motivation.
* :class:`PeriodicTrafficGenerator` — a well-behaved real-time HA: a fixed
  amount of traffic every period, with deadline-miss accounting.
* :class:`RandomTrafficGenerator` — seeded stochastic arrivals for
  robustness testing.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim.errors import ConfigurationError
from .engine import AxiMasterEngine, Job


class GreedyTrafficGenerator(AxiMasterEngine):
    """Saturating master: always keeps ``depth`` jobs in flight.

    Alternates reads and writes according to ``write_fraction`` over a
    circular address window.
    """

    def __init__(self, sim, name: str, link, job_bytes: int = 1 << 16,
                 window_base: int = 0x4000_0000,
                 window_bytes: int = 1 << 22,
                 depth: int = 2, write_fraction: float = 0.0,
                 **kwargs) -> None:
        super().__init__(sim, name, link, **kwargs)
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        self.job_bytes = job_bytes
        self.window_base = window_base
        self.window_bytes = window_bytes
        self.depth = depth
        self.write_fraction = write_fraction
        self._cursor = 0
        self._issued_jobs = 0
        self._writes_issued = 0
        self._inflight = 0
        self.enabled = True
        self.on_job_complete(self._replenish)

    def _next_address(self) -> int:
        address = self.window_base + self._cursor
        self._cursor = (self._cursor + self.job_bytes) % self.window_bytes
        return address

    def _issue_one(self) -> None:
        self._issued_jobs += 1
        self._inflight += 1
        writes_due = int(self._issued_jobs * self.write_fraction)
        if self._writes_issued < writes_due:
            self._writes_issued += 1
            self.enqueue_write(self._next_address(), self.job_bytes,
                               label="greedy")
        else:
            self.enqueue_read(self._next_address(), self.job_bytes,
                              label="greedy")

    def _replenish(self, job: Job, cycle: int) -> None:
        self._inflight -= 1
        if self.enabled:
            self._issue_one()

    def tick(self, cycle: int) -> None:
        # replenishment normally happens in the job-completion callback;
        # this loop only fills the pipeline at start-up or after a
        # re-enable, so the steady-state cost is one comparison (the
        # explicit base-class call skips building a super() proxy in the
        # hottest tick of every bandwidth experiment)
        if self._inflight < self.depth and self.enabled:
            while self._inflight < self.depth:
                self._issue_one()
        AxiMasterEngine.tick(self, cycle)

    def is_quiescent(self, cycle: int) -> bool:
        """Replenishment happens even when the engine is inactive (the
        tick issues before the ``active`` early-out), so an unfilled
        pipeline always needs the tick."""
        if self.enabled and self._inflight < self.depth:
            return False
        return super().is_quiescent(cycle)

    def reset(self) -> None:
        super().reset()
        self._inflight = 0


class PeriodicTrafficGenerator(AxiMasterEngine):
    """Real-time HA: ``job_bytes`` of traffic every ``period`` cycles.

    A new job is released at every period boundary; if the previous job is
    still running at its deadline (= next release), a deadline miss is
    recorded and the release is queued (no job is dropped — that matches a
    streaming accelerator with input buffering).
    """

    def __init__(self, sim, name: str, link, period: int,
                 job_bytes: int, address: int = 0x5000_0000,
                 read: bool = True, **kwargs) -> None:
        super().__init__(sim, name, link, **kwargs)
        if period < 1:
            raise ConfigurationError("period must be >= 1 cycle")
        self.period = period
        self.job_bytes = job_bytes
        self.address = address
        self.read = read
        self.deadline_misses = 0
        self.releases = 0
        self._last_release: Optional[int] = None

    def tick(self, cycle: int) -> None:
        if cycle % self.period == 0:
            if self.busy:
                self.deadline_misses += 1
            self.releases += 1
            if self.read:
                self.enqueue_read(self.address, self.job_bytes,
                                  label="periodic")
            else:
                self.enqueue_write(self.address, self.job_bytes,
                                   label="periodic")
        super().tick(cycle)

    def is_quiescent(self, cycle: int) -> bool:
        """Never skip a period boundary: a release happens there even if
        the engine itself has nothing in flight."""
        if cycle % self.period == 0:
            return False
        return super().is_quiescent(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """The next period boundary is a guaranteed internal event."""
        next_release = cycle + self.period - (cycle % self.period)
        hint = super().next_event_cycle(cycle)
        if hint is not None and hint < next_release:
            return hint
        return next_release

    @property
    def miss_ratio(self) -> float:
        """Fraction of releases that found the previous job unfinished."""
        return self.deadline_misses / self.releases if self.releases else 0.0


class RandomTrafficGenerator(AxiMasterEngine):
    """Stochastic master with geometric inter-arrival gaps (seeded).

    Each arrival enqueues a read or write of a random multiple of the bus
    width between ``min_bytes`` and ``max_bytes``.
    """

    def __init__(self, sim, name: str, link, arrival_probability: float,
                 min_bytes: int = 64, max_bytes: int = 4096,
                 write_probability: float = 0.5,
                 address_window: int = 1 << 24,
                 window_base: int = 0x6000_0000,
                 seed: int = 1, **kwargs) -> None:
        super().__init__(sim, name, link, **kwargs)
        if not 0.0 < arrival_probability <= 1.0:
            raise ConfigurationError(
                "arrival_probability must be in (0, 1]")
        self.arrival_probability = arrival_probability
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.write_probability = write_probability
        self.address_window = address_window
        self.window_base = window_base
        self._rng = random.Random(seed)
        self.arrivals = 0

    def _random_job(self) -> None:
        beat = self.link.data_bytes
        span = max(1, (self.max_bytes - self.min_bytes) // beat)
        nbytes = self.min_bytes + self._rng.randrange(span + 1) * beat
        nbytes = max(beat, (nbytes // beat) * beat)
        offset = self._rng.randrange(
            max(1, self.address_window // 4096)) * 4096
        address = self.window_base + offset
        self.arrivals += 1
        if self._rng.random() < self.write_probability:
            self.enqueue_write(address, nbytes, label="random")
        else:
            self.enqueue_read(address, nbytes, label="random")

    def tick(self, cycle: int) -> None:
        if self._rng.random() < self.arrival_probability:
            self._random_job()
        super().tick(cycle)

    def is_quiescent(self, cycle: int) -> bool:
        """Never quiescent: every tick draws from the RNG stream, and
        skipping a draw would change every subsequent arrival."""
        return False


def mixed_fleet(sim, links: List, seed: int = 7) -> List[AxiMasterEngine]:
    """Convenience factory: one generator archetype per provided link.

    Cycles through greedy / periodic / random archetypes; used by stress
    tests that want N heterogeneous masters quickly.
    """
    fleet: List[AxiMasterEngine] = []
    for index, link in enumerate(links):
        archetype = index % 3
        if archetype == 0:
            fleet.append(GreedyTrafficGenerator(
                sim, f"greedy{index}", link, job_bytes=4096, depth=2))
        elif archetype == 1:
            fleet.append(PeriodicTrafficGenerator(
                sim, f"periodic{index}", link, period=2000,
                job_bytes=2048))
        else:
            fleet.append(RandomTrafficGenerator(
                sim, f"random{index}", link, arrival_probability=0.02,
                seed=seed + index))
    return fleet
