"""Xilinx AXI DMA-like master model.

The paper uses Xilinx AXI DMA engines as representative hardware
accelerators "because they can mimic the behavior on the bus of many HAs
and because they are capable of saturating the maximum memory bandwidth".
:class:`AxiDma` reproduces that role: a job-programmable engine that can
stream maximal back-to-back bursts, plus an optional repeating workload
(read X MiB / write X MiB per round, as in the Fig. 4/5 case study) whose
completion rate per second is the paper's DMA performance index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.errors import ConfigurationError
from ..sim.stats import RateCounter
from .engine import AxiMasterEngine, Job


@dataclass(frozen=True)
class DmaDescriptor:
    """One element of a DMA workload: a read or a write of ``nbytes``."""

    kind: str          # "read" or "write"
    address: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ConfigurationError(
                f"descriptor kind must be 'read' or 'write', "
                f"got {self.kind!r}")
        if self.nbytes < 1:
            raise ConfigurationError("descriptor nbytes must be positive")


class AxiDma(AxiMasterEngine):
    """AXI DMA engine with a repeating descriptor workload.

    Use the inherited :meth:`enqueue_read` / :meth:`enqueue_write` /
    :meth:`enqueue_copy` for one-shot jobs, or :meth:`program` +
    :meth:`start` for the paper's repeated-round workloads.

    Attributes
    ----------
    rounds_completed:
        Number of full passes over the programmed descriptor list.
    round_rate:
        :class:`~repro.sim.stats.RateCounter` over round completions —
        the "number of times the DMA is capable of completing its work in
        a second" index from the case study.

    The DMA adds no per-cycle behaviour of its own (round bookkeeping runs
    inside job-completion callbacks, i.e. within engine ticks), so the
    engine's quiescence hook applies unchanged: an idle DMA costs the fast
    kernel path nothing.
    """

    def __init__(self, sim, name: str, link, burst_len: int = 16,
                 max_outstanding: int = 8, **kwargs) -> None:
        super().__init__(sim, name, link, burst_len=burst_len,
                         max_outstanding=max_outstanding, **kwargs)
        self._descriptors: List[DmaDescriptor] = []
        self._repeat = False
        self._round_jobs_pending = 0
        self.rounds_completed = 0
        self.round_rate = RateCounter(sim.clock_hz)
        self.round_latencies: List[int] = []
        self._round_started: Optional[int] = None
        self.on_job_complete(self._job_done)

    # ------------------------------------------------------------------

    def program(self, descriptors: List[DmaDescriptor],
                repeat: bool = False) -> None:
        """Load a descriptor workload (does not start it)."""
        if not descriptors:
            raise ConfigurationError("descriptor list must not be empty")
        self._descriptors = list(descriptors)
        self._repeat = repeat

    def start(self) -> None:
        """Begin executing the programmed workload."""
        if not self._descriptors:
            raise ConfigurationError("no descriptors programmed")
        self._launch_round()

    def stop(self) -> None:
        """Stop re-launching rounds (in-flight jobs still complete)."""
        self._repeat = False

    # ------------------------------------------------------------------

    def _launch_round(self) -> None:
        self._round_started = self.sim.now
        self._round_jobs_pending = len(self._descriptors)
        for descriptor in self._descriptors:
            if descriptor.kind == "read":
                self.enqueue_read(descriptor.address, descriptor.nbytes,
                                  label="dma-round-read")
            else:
                self.enqueue_write(descriptor.address, descriptor.nbytes,
                                   label="dma-round-write")

    def _job_done(self, job: Job, cycle: int) -> None:
        if not job.label.startswith("dma-round"):
            return
        self._round_jobs_pending -= 1
        if self._round_jobs_pending > 0:
            return
        self.rounds_completed += 1
        self.round_rate.record(cycle)
        if self._round_started is not None:
            self.round_latencies.append(cycle - self._round_started)
        if self._repeat:
            self._launch_round()


def standard_case_study_dma(sim, name: str, link, nbytes: int,
                            burst_len: int = 16,
                            max_outstanding: int = 8) -> AxiDma:
    """The case-study DMA: read ``nbytes``, then write ``nbytes`` back.

    This is HA_DMA of Sections VI-C: "set to read 4 MB of data from the
    memory subsystem and write back other 4 MB of data" — e.g. mimicking a
    video/audio processing engine.  Buffers are placed in two disjoint
    halves of a scratch region.
    """
    dma = AxiDma(sim, name, link, burst_len=burst_len,
                 max_outstanding=max_outstanding)
    dma.program([
        DmaDescriptor("read", 0x1000_0000, nbytes),
        DmaDescriptor("write", 0x2000_0000, nbytes),
    ], repeat=True)
    return dma
