#!/usr/bin/env python3
"""Isolating a misbehaving hardware accelerator at runtime.

The scenario from the paper's introduction: a low-criticality HA starts
flooding the shared bus ("a bandwidth-stealer HA could be deployed to
jeopardize the entire FPGA subsystem"), delaying a high-criticality
periodic accelerator.  The hypervisor reacts in two escalating steps,
both pure register writes on the HyperConnect control interface:

1. **contain** — impose a bandwidth reservation on the rogue port, and
2. **decouple** — disconnect the port entirely (the paper's decoupling
   feature, useful against faulty silicon), without ever deadlocking the
   shared path thanks to the EXBAR's flush logic.

The report shows the victim's deadline-miss ratio in each phase.

Run with::

    python examples/misbehaving_ha.py
"""

from repro.hypervisor import Criticality, Hypervisor, SystemIntegrator
from repro.ipxact import accelerator_component
from repro.masters import GreedyTrafficGenerator, PeriodicTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

PHASE = 300_000     # cycles per observation phase
PERIOD = 2000       # victim's activation period
# the victim needs ~70 % of the bus inside each period, so plain fair
# arbitration (a 50 % share) is NOT enough — only an explicit reservation
# or decoupling of the rogue restores its deadlines
JOB_BYTES = 16384   # victim's per-activation traffic (1024 beats)


class PhaseReport:
    """Tracks the victim's deadline misses per experiment phase."""

    def __init__(self, victim):
        self.victim = victim
        self._last_releases = 0
        self._last_misses = 0

    def settle(self):
        """Discard the counters accumulated so far (phase warm-up).

        Releases queued during an earlier overload phase drain for a
        while after the policy changes; the steady-state behaviour of a
        phase is what the report should show.
        """
        self._last_releases = self.victim.releases
        self._last_misses = self.victim.deadline_misses

    def snapshot(self, label):
        releases = self.victim.releases - self._last_releases
        misses = self.victim.deadline_misses - self._last_misses
        self._last_releases = self.victim.releases
        self._last_misses = self.victim.deadline_misses
        ratio = misses / releases if releases else 0.0
        print(f"  {label:<34} releases={releases:<5} misses={misses:<5} "
              f"miss-ratio={ratio:.0%}")
        return ratio


def main() -> None:
    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2,
                          period=1024)
    hypervisor = Hypervisor(soc.interconnect)
    hypervisor.create_domain("control-loop", Criticality.HIGH)
    hypervisor.create_domain("3rd-party", Criticality.LOW)
    integrator = SystemIntegrator(ZCU102)
    integrator.add_accelerator(
        accelerator_component("sensor_fusion"), "control-loop")
    integrator.add_accelerator(
        accelerator_component("codec"), "3rd-party")
    hypervisor.boot(integrator.integrate())

    victim = PeriodicTrafficGenerator(soc.sim, "sensor-fusion",
                                      soc.port(0), period=PERIOD,
                                      job_bytes=JOB_BYTES)
    rogue = GreedyTrafficGenerator(soc.sim, "codec", soc.port(1),
                                   job_bytes=65536, burst_len=256,
                                   depth=4, write_fraction=0.5)
    report = PhaseReport(victim)
    print("phase-by-phase deadline behaviour of the critical HA:")

    # phase 1: healthy system (rogue not yet misbehaving)
    rogue.enabled = False
    soc.sim.run(PHASE)
    healthy = report.snapshot("1. nominal operation")

    # phase 2: the rogue floods the bus
    rogue.enabled = True
    soc.sim.run(PHASE)
    flooded = report.snapshot("2. rogue flooding, unsupervised")

    # phase 3: hypervisor containment via bandwidth reservation
    hypervisor.apply_bandwidth_policy({"control-loop": 0.8,
                                       "3rd-party": 0.2})
    soc.sim.run(PHASE)          # overload backlog drains
    report.settle()
    soc.sim.run(PHASE)
    contained = report.snapshot("3. 80/20 reservation imposed")

    # phase 4: full isolation (decoupling)
    hypervisor.isolate_domain("3rd-party")
    soc.sim.run(PHASE // 4)
    report.settle()
    soc.sim.run(PHASE)
    isolated = report.snapshot("4. rogue domain decoupled")

    print()
    print(f"rogue traffic while decoupled: "
          f"{'none' if not soc.driver.is_coupled(1) else 'STILL ACTIVE'}")
    print(f"flush beats injected to keep the bus safe: "
          f"{soc.interconnect.exbar.flush_beats}")
    assert flooded > 0.5, "the rogue must visibly break the victim"
    assert contained < 0.05 and isolated < 0.05, \
        "supervision must restore the victim's deadlines"
    print("containment restored the critical accelerator's deadlines.")


if __name__ == "__main__":
    main()
