#!/usr/bin/env python3
"""Mixed-criticality deployment: the paper's full considered framework.

Walks the complete Section IV flow end to end:

1. two independently developed applications deliver their accelerators
   as IP-XACT packages — a HIGH-criticality vision domain (CHaiDNN-like
   DNN accelerator) and a LOW-criticality logging domain (bulk DMA);
2. the *system integrator* validates the packages and produces the FPGA
   design (our bitstream stand-in, sealed with an integrity signature);
3. the type-1 *hypervisor* boots the design, routes interrupts, denies
   guests access to the HyperConnect control interface, and programs a
   70/30 bandwidth reservation;
4. both accelerators run concurrently; the report shows the DNN domain
   sustaining its frame rate despite the greedy DMA — the Fig. 5 story.

Run with::

    python examples/mixed_criticality.py
"""

from repro.hypervisor import (
    AccessViolation,
    Criticality,
    Hypervisor,
    SystemIntegrator,
)
from repro.ipxact import accelerator_component, write_component
from repro.masters import AxiDma, ChaiDnnAccelerator, DmaDescriptor
from repro.platforms import ZCU102
from repro.system import SocSystem

WINDOW = 600_000            # observation window, PL cycles
SCALE = 1 / 64              # workload scale (see EXPERIMENTS.md)


def package_accelerators(tmpdir="/tmp"):
    """Step 1: applications package their IPs (IP-XACT)."""
    dnn = accelerator_component("chaidnn_core", vendor="vision-corp")
    dma = accelerator_component("bulk_dma", vendor="logging-inc")
    # round-trip through XML like a real delivery would
    write_component(dnn, f"{tmpdir}/chaidnn_core.xml")
    write_component(dma, f"{tmpdir}/bulk_dma.xml")
    return dnn, dma


def integrate(dnn, dma):
    """Step 2: the system integrator builds and seals the design."""
    integrator = SystemIntegrator(ZCU102)
    integrator.add_accelerator(dnn, "vision")
    integrator.add_accelerator(dma, "logging")
    design = integrator.integrate()
    assert design.verify(), "sealed design must verify"
    print(f"integrated design: {design.n_ports} ports, "
          f"signature {design.signature[:16]}...")
    return design


def main() -> None:
    dnn_ip, dma_ip = package_accelerators()

    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2,
                          period=2048)
    hypervisor = Hypervisor(soc.interconnect)
    hypervisor.create_domain("vision", Criticality.HIGH,
                             bandwidth_share=0.7)
    hypervisor.create_domain("logging", Criticality.LOW,
                             bandwidth_share=0.3)

    design = integrate(dnn_ip, dma_ip)
    hypervisor.boot(design)
    print("booted; vision on ports", hypervisor.ports_of("vision"),
          "/ logging on ports", hypervisor.ports_of("logging"))

    # step 3b: a guest trying to reprogram the interconnect is denied
    try:
        hypervisor.guest_configure_hyperconnect("logging")
    except AccessViolation as violation:
        print(f"guest reconfiguration denied, as required: {violation}")

    # step 4: instantiate the accelerator models on their ports
    chaidnn = ChaiDnnAccelerator(soc.sim, "chaidnn", soc.port(0),
                                 scale=SCALE)
    hypervisor.attach_accelerator("vision", 0, chaidnn)
    dma = AxiDma(soc.sim, "bulk-dma", soc.port(1), burst_len=64)
    hypervisor.attach_accelerator("logging", 1, dma)
    dma.program([DmaDescriptor("read", 0x1000_0000, 65536),
                 DmaDescriptor("write", 0x2000_0000, 65536)], repeat=True)

    chaidnn.start()
    dma.start()
    soc.sim.run(WINDOW)

    fps = chaidnn.frame_rate.rate(WINDOW)
    dma_rate = dma.round_rate.rate(WINDOW)
    irqs = hypervisor.interrupts.delivered_total
    print()
    print(f"after {WINDOW} cycles "
          f"({ZCU102.cycles_to_seconds(WINDOW) * 1e3:.1f} ms):")
    print(f"  vision  : {chaidnn.frames_completed} frames "
          f"({fps:.0f} scaled fps) at 70% reserved bandwidth")
    print(f"  logging : {dma.rounds_completed} DMA rounds "
          f"({dma_rate:.0f} rounds/s) at 30% reserved bandwidth")
    print(f"  interrupts routed by the hypervisor: {irqs}")
    reads = soc.driver.issued(0)["read"] + soc.driver.issued(1)["read"]
    print(f"  sub-transactions issued (reads, both ports): {reads}")

    # sanity: the critical domain kept the lion's share
    vision_bytes = chaidnn.bytes_read + chaidnn.bytes_written
    logging_bytes = dma.bytes_read + dma.bytes_written
    share = vision_bytes / (vision_bytes + logging_bytes)
    print(f"  observed vision byte share: {share:.0%} (reserved: 70%)")


if __name__ == "__main__":
    main()
