#!/usr/bin/env python3
"""Runtime reconfiguration of the interconnect (no re-synthesis).

State-of-the-art interconnects are configured at integration time and
frozen into the bitstream; the AXI HyperConnect instead "exports a control
AXI slave interface that allows changing its configuration from the PS as
a standard memory-mapped device".  This example exercises that interface
live, including through actual AXI transactions on the control port:

* re-balancing bandwidth budgets while traffic is running,
* changing the equalization (nominal burst) of a port,
* the dynamic-partial-reconfiguration workflow: decouple a port, "swap"
  the accelerator behind it, re-couple, re-program its reservation.

Run with::

    python examples/runtime_reconfiguration.py
"""

from repro.axi import AxiLink, Transaction, WriteBeat, make_write_request
from repro.hyperconnect.regs import REG_PERIOD
from repro.masters import GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

WINDOW = 150_000


def observed_shares(a, b, previous):
    """Byte share of each master since the previous snapshot."""
    bytes_a = a.bytes_read - previous[0]
    bytes_b = b.bytes_read - previous[1]
    total = max(1, bytes_a + bytes_b)
    return (bytes_a / total, bytes_b / total,
            (a.bytes_read, b.bytes_read))


def write_register_over_axi(soc, link, offset, value):
    """Program one register through the control slave like a CPU would."""
    txn = Transaction("write", "hypervisor",
                      0xA000_0000 + offset, 1, 4)
    link.aw.push(make_write_request(txn, 0))
    link.w.push(WriteBeat(last=True, data=value.to_bytes(4, "little")))
    soc.sim.run(5)
    assert link.b.can_pop(), "control interface must acknowledge"
    link.b.pop()


def main() -> None:
    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2,
                          period=2048)
    # expose the control interface as a real AXI slave
    control_link = AxiLink(soc.sim, "ctrl-link", data_bytes=16)
    soc.interconnect.attach_control_interface(control_link)

    a = GreedyTrafficGenerator(soc.sim, "phase-A", soc.port(0),
                               job_bytes=8192, depth=4)
    b = GreedyTrafficGenerator(soc.sim, "phase-B", soc.port(1),
                               job_bytes=8192, depth=4)
    snapshot = (0, 0)

    print("1. default configuration (fair round-robin, no reservation)")
    soc.sim.run(WINDOW)
    share_a, share_b, snapshot = observed_shares(a, b, snapshot)
    print(f"   shares: port0={share_a:.0%} port1={share_b:.0%}")

    print("2. live re-balance to 75/25 via the driver")
    soc.driver.set_bandwidth_shares({0: 0.75, 1: 0.25})
    soc.sim.run(WINDOW)
    share_a, share_b, snapshot = observed_shares(a, b, snapshot)
    print(f"   shares: port0={share_a:.0%} port1={share_b:.0%}")

    print("3. reservation period re-programmed over the AXI control port")
    write_register_over_axi(soc, control_link, REG_PERIOD, 4096)
    assert soc.interconnect.central.period == 4096
    print(f"   period now {soc.driver.period} cycles "
          f"(written as a memory-mapped register)")

    print("4. dynamic partial reconfiguration workflow on port 1")
    soc.driver.decouple(1)
    b.enabled = False                      # old accelerator going away
    b.reset()                              # DPR wipes the region's state
    b.active = False                       # ... and removes it entirely
    soc.port(1).clear()                    # ... including the port eFIFOs
    soc.sim.run(20_000)                    # region being reprogrammed
    swapped = GreedyTrafficGenerator(soc.sim, "phase-B-v2", soc.port(1),
                                     job_bytes=4096, burst_len=32,
                                     depth=2)
    soc.driver.couple(1)
    soc.driver.set_bandwidth_shares({0: 0.5, 1: 0.5})
    soc.sim.run(WINDOW)
    __, __, final = observed_shares(a, swapped, (snapshot[0], 0))
    print(f"   swapped accelerator moved "
          f"{swapped.bytes_read / 1024:.0f} KiB after re-coupling")
    print(f"   issue counters (port1): {soc.driver.issued(1)}")
    print("done: every change happened at runtime, no re-synthesis.")


if __name__ == "__main__":
    main()
