#!/usr/bin/env python3
"""Trace-driven interconnect evaluation.

A workflow real integration teams use: capture the bus trace of an
accelerator once, then replay the *identical* request stream against
candidate interconnect configurations and compare.  Here we:

1. record one scaled CHaiDNN frame's request stream on a HyperConnect
   port (`BusTraceRecorder`, JSON-lines on disk);
2. replay it through the HyperConnect and the SmartConnect, alone and
   against a greedy DMA, measuring the replay's completion time;
3. print the per-port bus-utilization report for the contended run
   (`BusUtilizationMonitor`).

Run with::

    python examples/trace_replay_study.py
"""

import tempfile
from pathlib import Path

from repro.masters import (
    BusTraceRecorder,
    ChaiDnnAccelerator,
    GreedyTrafficGenerator,
    TraceReplayMaster,
    load_trace,
)
from repro.platforms import ZCU102
from repro.system import BusUtilizationMonitor, SocSystem

SCALE = 1 / 64


def record_one_frame(path: Path) -> int:
    """Capture the request stream of one CHaiDNN frame."""
    soc = SocSystem.build(ZCU102, n_ports=2)
    recorder = BusTraceRecorder(soc.port(0))
    chaidnn = ChaiDnnAccelerator(soc.sim, "chaidnn", soc.port(0),
                                 scale=SCALE, frames=1)
    chaidnn.start()
    soc.sim.run_until(lambda: chaidnn.done, max_cycles=2_000_000)
    recorder.save(path)
    print(f"recorded {len(recorder.records)} requests "
          f"({chaidnn.bytes_read + chaidnn.bytes_written} bytes) "
          f"to {path.name}")
    return soc.sim.now


def replay(path: Path, interconnect: str, with_noise: bool,
           report: bool = False) -> int:
    """Replay the trace; returns completion cycles."""
    soc = SocSystem.build(ZCU102, interconnect=interconnect, n_ports=2,
                          period=2048)
    monitor = BusUtilizationMonitor(soc.master_link, window=8192)
    replayer = TraceReplayMaster(soc.sim, "replay", soc.port(0),
                                 trace=load_trace(path))
    if with_noise:
        GreedyTrafficGenerator(soc.sim, "noise", soc.port(1),
                               job_bytes=65536, burst_len=64, depth=4)
        if soc.driver is not None:
            soc.driver.set_bandwidth_shares({0: 0.7, 1: 0.3})
    replayer.start()
    start = soc.sim.now
    soc.sim.run_until(lambda: replayer.done, max_cycles=20_000_000)
    elapsed = soc.sim.now - start
    if report:
        print()
        print(f"utilization report ({interconnect}, contended):")
        print(monitor.render(width=40))
    return elapsed


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaidnn_frame.jsonl"
        record_one_frame(path)
        print()
        print(f"{'configuration':<42}{'frame time (cycles)':>20}")
        rows = [
            ("HyperConnect, alone", "hyperconnect", False),
            ("SmartConnect, alone", "smartconnect", False),
            ("HyperConnect + greedy DMA (HC-70-30)", "hyperconnect", True),
            ("SmartConnect + greedy DMA (no control)", "smartconnect",
             True),
        ]
        times = {}
        for label, interconnect, noise in rows:
            times[label] = replay(path, interconnect, noise)
            print(f"{label:<42}{times[label]:>20}")
        slowdown_sc = (times["SmartConnect + greedy DMA (no control)"]
                       / times["SmartConnect, alone"])
        slowdown_hc = (times["HyperConnect + greedy DMA (HC-70-30)"]
                       / times["HyperConnect, alone"])
        print()
        print(f"contention slowdown: SmartConnect {slowdown_sc:.1f}x, "
              f"HyperConnect with reservation {slowdown_hc:.1f}x")
        replay(path, "hyperconnect", True, report=True)


if __name__ == "__main__":
    main()
