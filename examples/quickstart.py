#!/usr/bin/env python3
"""Quickstart: build a simulated FPGA SoC and measure the interconnects.

Builds the paper's reference architecture (two hardware accelerators
behind one interconnect on a ZCU102 model), runs a DMA transfer through
both the AXI HyperConnect and the SmartConnect baseline, and prints the
per-channel propagation latencies and end-to-end access times next to
the analytic model's predictions.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import (
    AccessTimeModel,
    hyperconnect_propagation,
    improvement,
    smartconnect_propagation,
)
from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.system import (
    SocSystem,
    measure_access_time,
    measure_channel_latencies,
)


def channel_latency_report() -> None:
    """Fig. 3(a) in miniature: measured vs analytic channel latencies."""
    measured_hc = measure_channel_latencies("hyperconnect").as_dict()
    measured_sc = measure_channel_latencies("smartconnect").as_dict()
    analytic_hc = hyperconnect_propagation()
    analytic_sc = smartconnect_propagation()

    print("Per-channel propagation latency (cycles)")
    print(f"{'channel':<9}{'HC (sim)':>9}{'HC (model)':>12}"
          f"{'SC (sim)':>9}{'SC (model)':>12}{'improvement':>13}")
    for channel in ("AR", "AW", "R", "W", "B"):
        gain = improvement(measured_sc[channel], measured_hc[channel])
        print(f"{channel:<9}{measured_hc[channel]:>9}"
              f"{analytic_hc[channel]:>12}{measured_sc[channel]:>9}"
              f"{analytic_sc[channel]:>12}{gain:>12.0%}")
    print()


def access_time_report() -> None:
    """Fig. 3(b) in miniature: access time vs transfer size."""
    model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
    print("Memory access time (cycles)")
    print(f"{'size':<12}{'HyperConnect':>14}{'SmartConnect':>14}"
          f"{'improvement':>13}{'HC model':>10}")
    for label, nbytes, beats in (("1 word", 16, 1),
                                 ("16-word", 256, 16),
                                 ("16 KiB", 16384, 1024)):
        hc = measure_access_time("hyperconnect", nbytes)
        sc = measure_access_time("smartconnect", nbytes)
        if beats <= 16:
            predicted = model.read_access_cycles(beats)
        else:
            predicted = model.streaming_cycles(beats, 16, outstanding=8)
        print(f"{label:<12}{hc:>14}{sc:>14}"
              f"{improvement(sc, hc):>12.0%}{predicted:>10}")
    print()


def first_system() -> None:
    """The five-line user journey from the README."""
    soc = SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2)
    dma = AxiDma(soc.sim, "dma0", soc.port(0))
    job = dma.enqueue_read(0x1000_0000, 4096)
    soc.run_until_quiescent()
    seconds = soc.platform.cycles_to_seconds(job.latency)
    print(f"4 KiB read through the HyperConnect: {job.latency} cycles "
          f"({seconds * 1e6:.2f} us at "
          f"{soc.platform.pl_clock_hz / 1e6:.0f} MHz)")
    print(f"bus utilisation during the burst: "
          f"{4096 / job.latency / 16:.0%} of peak")
    print()


def main() -> None:
    first_system()
    channel_latency_report()
    access_time_report()


if __name__ == "__main__":
    main()
