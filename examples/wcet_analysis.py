#!/usr/bin/env python3
"""Worst-case timing analysis — the predictability argument, quantified.

The HyperConnect's openness makes it "amenable to low-level inspection to
extract worst-case timing bounds".  This example derives those bounds
with :mod:`repro.analysis` and then *attacks* them in simulation with an
adversarial bandwidth-stealer, showing that measured worst cases stay
under the analytic bounds — and how much tighter the bounds are than what
a variable-granularity, non-equalizing interconnect admits.

Run with::

    python examples/wcet_analysis.py
"""

from repro.analysis import (
    HyperConnectWcrt,
    InterferenceModel,
    ReservationAnalysis,
    hyperconnect_propagation,
    interfering_transactions,
)
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem


def interference_bounds() -> None:
    print("worst-case interference per transaction (N masters):")
    print(f"{'N':>3}{'EXBAR (g=1)':>14}{'variable g=8':>14}"
          f"{'bound ratio':>13}")
    for n_ports in (2, 4, 8):
        model = InterferenceModel(n_ports=n_ports)
        print(f"{n_ports:>3}"
              f"{interfering_transactions(n_ports, 1):>10} txns"
              f"{interfering_transactions(n_ports, 8):>10} txns"
              f"{model.bound_ratio():>12.1f}x")
    print()


def reservation_curves() -> None:
    print("reservation supply guarantees (period T=2048, 16-beat nominal):")
    print(f"{'share':>7}{'budget':>8}{'bytes guaranteed in 3T':>24}"
          f"{'WCRT of 64 KiB (cycles)':>26}")
    for share in (0.9, 0.7, 0.5, 0.3, 0.1):
        analysis = ReservationAnalysis.for_share(share, 2048, 16)
        guaranteed = analysis.guaranteed_bytes(3 * 2048, 16)
        wcrt = analysis.wcrt_bytes(64 << 10, 16)
        print(f"{share:>7.0%}{analysis.budget:>8}"
              f"{guaranteed:>21} B{wcrt:>26}")
    print()


def attack_the_bound() -> None:
    """Adversarial simulation vs the composite WCRT bound."""
    print("adversarial check: measured worst case vs analytic bound")
    print(f"{'transfer':>10}{'measured (cycles)':>19}"
          f"{'bound (cycles)':>16}{'headroom':>10}")
    wcrt = HyperConnectWcrt(n_ports=2, nominal_burst=16,
                            memory=ZCU102.dram)
    for nbytes in (256, 4096, 65536):
        worst = 0
        # several attack alignments: the stealer saturates the bus and
        # the victim arrives at different phases of its pattern
        for phase in (0, 777, 1500):
            soc = SocSystem.build(ZCU102, n_ports=2)
            GreedyTrafficGenerator(soc.sim, "stealer", soc.port(1),
                                   job_bytes=65536, burst_len=256,
                                   depth=4)
            soc.sim.run(3000 + phase)
            victim = AxiDma(soc.sim, "victim", soc.port(0))
            job = victim.enqueue_read(0x0, nbytes)
            soc.sim.run_until(lambda: job.completed is not None,
                              max_cycles=5_000_000)
            worst = max(worst, job.latency)
        bound = wcrt.job_bound_bytes(nbytes, 16)
        assert worst <= bound, "bound violated!"
        print(f"{nbytes:>9}B{worst:>19}{bound:>16}"
              f"{(bound - worst) / bound:>9.0%}")
    print()
    print("every measured worst case is within its analytic bound.")


def propagation_summary() -> None:
    latencies = hyperconnect_propagation()
    print(f"fixed propagation (structure-derived): "
          f"read {latencies['AR'] + latencies['R']} cycles, "
          f"write {latencies['AW'] + latencies['W'] + latencies['B']} "
          f"cycles\n")


def main() -> None:
    propagation_summary()
    interference_bounds()
    reservation_curves()
    attack_the_bound()


if __name__ == "__main__":
    main()
