"""Unit tests for the measurement probes."""

from repro.axi import (
    ChannelThroughputProbe,
    PropagationProbe,
    RespBeat,
    Transaction,
    make_read_request,
)
from repro.sim import Channel, Component


class Forwarder(Component):
    """Moves one item per cycle between two channels."""

    def __init__(self, sim, name, source, destination):
        super().__init__(sim, name)
        self.source = source
        self.destination = destination

    def tick(self, cycle):
        if self.source.can_pop() and self.destination.can_push():
            self.destination.push(self.source.pop())


class Sink(Component):
    def __init__(self, sim, name, channel):
        super().__init__(sim, name)
        self.channel = channel

    def tick(self, cycle):
        if self.channel.can_pop():
            self.channel.pop()


def test_propagation_through_two_stages(sim):
    a = Channel(sim, "a", latency=1, capacity=4)
    b = Channel(sim, "b", latency=1, capacity=4)
    Forwarder(sim, "f", a, b)
    Sink(sim, "s", b)
    probe = PropagationProbe(a, b)
    txn = Transaction("read", "m", 0, 1, 16)
    a.push(make_read_request(txn, 0))
    sim.run(10)
    # push at 0, visible at 1, forwarded, visible on b at 2, popped at 2
    assert probe.latency_max == 2
    assert probe.stats.count == 1


def test_propagation_matches_split_descendants(sim):
    a = Channel(sim, "a", latency=1, capacity=4)
    b = Channel(sim, "b", latency=1, capacity=4)
    Sink(sim, "s", b)
    probe = PropagationProbe(a, b)
    txn = Transaction("read", "m", 0, 32, 16)
    parent = make_read_request(txn, 0)
    a.push(parent)
    sim.run(3)
    # a split descendant arrives downstream instead of the parent
    child = parent.split_child(0x0, 16, final_sub=False)
    b.push(child)
    sim.run(3)
    assert probe.stats.count == 1
    assert probe.latency_max is not None


def test_propagation_resp_beat_matched_via_origin(sim):
    a = Channel(sim, "a", latency=1, capacity=4)
    b = Channel(sim, "b", latency=1, capacity=4)
    Sink(sim, "s", b)
    probe = PropagationProbe(a, b)
    txn = Transaction("write", "m", 0, 16, 16)
    aw = make_read_request(txn, 0)
    sub = aw.split_child(0, 16, final_sub=True)
    a.push(RespBeat(addr_beat=sub))
    sim.run(2)
    b.push(RespBeat(addr_beat=aw))  # re-created response, same origin
    sim.run(3)
    assert probe.stats.count == 1


def test_propagation_max_samples_cap(sim):
    a = Channel(sim, "a", latency=1, capacity=None)
    b = Channel(sim, "b", latency=1, capacity=None)
    Forwarder(sim, "f", a, b)
    Sink(sim, "s", b)
    probe = PropagationProbe(a, b, max_samples=3)
    for i in range(10):
        txn = Transaction("read", "m", i * 64, 1, 16)
        a.push(make_read_request(txn, 0))
        sim.step()
    sim.run(10)
    assert probe.stats.count == 3


def test_propagation_exit_on_push(sim):
    a = Channel(sim, "a", latency=1, capacity=4)
    b = Channel(sim, "b", latency=1, capacity=4)
    Forwarder(sim, "f", a, b)
    Sink(sim, "s", b)
    probe = PropagationProbe(a, b, exit_on="push")
    txn = Transaction("read", "m", 0, 1, 16)
    a.push(make_read_request(txn, 0))
    sim.run(10)
    assert probe.latency_max == 1  # pushed on b one cycle after a-push


def test_throughput_probe(sim):
    channel = Channel(sim, "c", latency=1, capacity=None)
    Sink(sim, "s", channel)
    probe = ChannelThroughputProbe(channel, data_bytes=16)
    for i in range(8):
        channel.push(i)
        sim.step()
    sim.run(4)
    assert probe.beats == 8
    assert probe.bytes_total == 128
    assert probe.bandwidth_bytes_per_cycle() == 16.0  # 1 beat/cycle


def test_throughput_probe_empty(sim):
    channel = Channel(sim, "c", latency=1)
    probe = ChannelThroughputProbe(channel, data_bytes=16)
    assert probe.bandwidth_bytes_per_cycle() == 0.0
