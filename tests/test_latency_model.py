"""Pin ``repro.analysis.latency`` against measured steady-state windows.

The TLM fast-forward engine (:mod:`repro.sim.tlm`) advances whole epochs
using these closed forms instead of simulating each cycle, so any drift
between the analytic model and the cycle-accurate fabric would silently
corrupt fast-forwarded results.  These tests pin the correspondence:

* per-fabric propagation — the Fig. 3(a) measurement procedure must
  reproduce :func:`hyperconnect_propagation` /
  :func:`smartconnect_propagation` channel for channel;
* access time — isolated read *and* write bursts must complete in
  exactly :meth:`AccessTimeModel.read_access_cycles` /
  :meth:`~AccessTimeModel.write_access_cycles`;
* streaming — pipelined multi-burst reads in a steady-state window must
  land on :meth:`AccessTimeModel.streaming_cycles` (exact once the
  outstanding window covers the round trip).
"""

import pytest

from repro.analysis import (
    AccessTimeModel,
    hyperconnect_propagation,
    read_propagation,
    smartconnect_propagation,
    write_propagation,
)
from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.system import (
    SocSystem,
    measure_access_time,
    measure_channel_latencies,
)


class TestPerFabricPropagation:
    """Fig. 3(a): measured per-channel latency == the analytic model."""

    @pytest.mark.parametrize("interconnect, model", [
        ("hyperconnect", hyperconnect_propagation),
        ("smartconnect", smartconnect_propagation),
    ])
    def test_channels_match_model(self, interconnect, model):
        measured = measure_channel_latencies(interconnect).as_dict()
        assert measured == model()

    def test_totals_match_model(self):
        measured = measure_channel_latencies("hyperconnect")
        latencies = hyperconnect_propagation()
        assert measured.read_total == read_propagation(latencies)
        assert measured.write_total == write_propagation(latencies)


class TestAccessTime:
    """Isolated bursts land exactly on the closed form."""

    @pytest.mark.parametrize("beats", [1, 4, 16, 64])
    def test_read_burst_exact(self, beats):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        job = dma.enqueue_read(0x0, beats * 16)
        soc.run_until_quiescent()
        assert job.latency == model.read_access_cycles(beats)

    @pytest.mark.parametrize("beats", [1, 4, 16, 64])
    def test_write_burst_exact(self, beats):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        job = dma.enqueue_write(0x0, beats * 16)
        soc.run_until_quiescent()
        assert job.latency == model.write_access_cycles(beats)

    def test_measure_access_time_matches_streaming_model(self):
        """The Fig. 3(b) harness is the model's streaming regime."""
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        for nbytes in (256, 4096, 16384):
            measured = measure_access_time("hyperconnect", nbytes)
            predicted = model.streaming_cycles(nbytes // 16, burst=16,
                                               outstanding=8)
            assert measured == pytest.approx(predicted, rel=0.05)


class TestSteadyStateStreaming:
    """Pipelined multi-burst windows: one beat per cycle after fill."""

    @pytest.mark.parametrize("burst, outstanding", [(16, 8), (32, 8),
                                                    (64, 4)])
    def test_streaming_window(self, burst, outstanding):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        total_beats = 2048
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=burst,
                     max_outstanding=outstanding)
        job = dma.enqueue_read(0x0, total_beats * 16)
        soc.run_until_quiescent()
        predicted = model.streaming_cycles(total_beats, burst,
                                           outstanding)
        # outstanding * burst covers the round trip in every row here,
        # so the data bus never idles: the model is near-exact and
        # must always be a lower bound
        assert job.latency >= predicted
        assert job.latency == pytest.approx(predicted, rel=0.03)

    def test_short_transfer_degenerates_to_single_access(self):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        assert (model.streaming_cycles(8, 16, outstanding=8)
                == model.read_access_cycles(8))
