"""Unit/integration tests for the SmartConnect baseline model."""

import pytest

from repro.axi import PropagationProbe
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.sim import ConfigurationError, Simulator
from repro.smartconnect import (
    INPUT_STAGE_LATENCY,
    OUTPUT_STAGE_LATENCY,
    SmartConnect,
    smartconnect_master_link,
)
from repro.system import SocSystem

from conftest import drain


class TestLatency:
    """The measured Fig. 3(a) SmartConnect latencies."""

    def test_stage_latencies_sum_to_measured_values(self):
        for role, expected in (("AR", 12), ("AW", 12), ("R", 11),
                               ("W", 3), ("B", 2)):
            total = INPUT_STAGE_LATENCY[role] + OUTPUT_STAGE_LATENCY[role]
            assert total == expected, role

    def test_address_channels_twelve_cycles(self, sc_soc):
        ar = PropagationProbe(sc_soc.port(0).ar, sc_soc.master_link.ar)
        aw = PropagationProbe(sc_soc.port(0).aw, sc_soc.master_link.aw)
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0))
        dma.enqueue_read(0x0, 16)
        dma.enqueue_write(0x9000, 16)
        drain(sc_soc)
        assert ar.latency_max == 12
        assert aw.latency_max == 12

    def test_r_channel_eleven_cycles(self, sc_soc):
        probe = PropagationProbe(sc_soc.master_link.r, sc_soc.port(0).r)
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0))
        dma.enqueue_read(0x0, 256)
        drain(sc_soc)
        assert probe.latency_max == 11

    def test_b_channel_two_cycles(self, sc_soc):
        probe = PropagationProbe(sc_soc.master_link.b, sc_soc.port(0).b)
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0))
        dma.enqueue_write(0x9000, 256)
        drain(sc_soc)
        assert probe.latency_max == 2

    def test_w_channel_three_cycles_steady_state(self, sc_soc):
        probe = PropagationProbe(sc_soc.port(0).w, sc_soc.master_link.w)
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0), w_beat_gap=16)
        dma.enqueue_write(0x9000, 512)
        drain(sc_soc)
        assert probe.stats.minimum == 3


class TestThroughput:
    def test_sustains_full_bandwidth(self, sc_soc):
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0))
        job = dma.enqueue_read(0x0, 65536)
        cycles = drain(sc_soc)
        assert 65536 / job.latency > 14.5  # ~1 beat/cycle


class TestArbitration:
    def test_no_equalization_bursts_pass_through(self, sc_soc):
        lengths = []
        sc_soc.master_link.ar.subscribe_push(
            lambda cycle, beat: lengths.append(beat.length))
        dma = AxiDma(sc_soc.sim, "dma", sc_soc.port(0), burst_len=256)
        dma.enqueue_read(0x0, 256 * 16)
        drain(sc_soc)
        assert lengths == [256]

    def test_unfair_under_heterogeneous_bursts(self):
        soc = SocSystem.build(ZCU102, interconnect="smartconnect",
                              n_ports=2)
        big = GreedyTrafficGenerator(soc.sim, "big", soc.port(0),
                                     job_bytes=4096, burst_len=256,
                                     depth=4)
        small = GreedyTrafficGenerator(soc.sim, "small", soc.port(1),
                                       job_bytes=4096, burst_len=16,
                                       depth=4)
        soc.sim.run(150_000)
        # the long-burst master starves the short-burst one ([11])
        assert big.bytes_read > 4 * small.bytes_read

    def test_variable_granularity_grants_consecutively(self):
        soc = SocSystem.build(ZCU102, interconnect="smartconnect",
                              n_ports=2, max_granularity=4)
        grants = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grants.append(beat.port))
        GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=4096,
                               burst_len=16, depth=4)
        GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=4096,
                               burst_len=16, depth=4)
        soc.sim.run(60_000)
        streaks = []
        current = 1
        for previous, this in zip(grants, grants[1:]):
            if this == previous:
                current += 1
            else:
                streaks.append(current)
                current = 1
        # consecutive grants up to the granularity bound occur
        assert max(streaks) > 1
        assert max(streaks) <= 4

    def test_granularity_one_behaves_like_fixed(self):
        soc = SocSystem.build(ZCU102, interconnect="smartconnect",
                              n_ports=2, max_granularity=1)
        grants = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grants.append(beat.port))
        GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=4096,
                               burst_len=16, depth=4)
        GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=4096,
                               burst_len=16, depth=4)
        soc.sim.run(40_000)
        steady = grants[8:]
        repeats = sum(1 for previous, this in zip(steady, steady[1:])
                      if this == previous)
        assert repeats <= len(steady) // 10


class TestConstruction:
    def test_zero_ports_rejected(self):
        sim = Simulator("sc")
        master = smartconnect_master_link(sim, "m")
        with pytest.raises(ConfigurationError):
            SmartConnect(sim, "sc0", 0, master)

    def test_invalid_granularity_rejected(self):
        sim = Simulator("sc")
        master = smartconnect_master_link(sim, "m")
        with pytest.raises(ConfigurationError):
            SmartConnect(sim, "sc0", 2, master, max_granularity=0)

    def test_port_accessor_and_idle(self, sc_soc):
        assert sc_soc.interconnect.port(0) is sc_soc.port(0)
        assert sc_soc.interconnect.idle()
