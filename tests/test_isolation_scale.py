"""Many-domain tenant isolation: scenarios, oracles, graceful degradation.

The verification surface of the tenant-isolation tentpole:

* tenanted :class:`Scenario` validation and serialization (grants are
  pure data, and untenanted scenario JSON is bit-compatible with the
  pre-tenancy corpus);
* the ``isolation`` grid compiler (fault storms at 8-64 domains);
* the isolation oracle — rogues contained and resolved, healthy tenants
  leak-free and bounded-delay;
* graceful degradation: re-quarantine and recovery give-up under
  repeated faults, while every other tenant keeps its service;
* the acceptance storm — 64 domains, 8 simultaneously faulted, passing
  the full oracle stack with a worker-count-independent campaign digest.
"""

import json

import pytest

from repro.verify import (
    DEFAULT_CHECKS,
    MasterFault,
    OracleViolation,
    PortPlan,
    Scenario,
    check_isolation,
    evaluate_scenario,
    isolation_bound_for,
    run_campaign,
    run_scenario,
)
from repro.verify.harness import RECOVERY_POLICY
from repro.verify.paramspace import _ISOLATION_SPAN, GRIDS, compile_isolation
from repro.verify.scenario import GRANT_GRANULE

SPAN = 8 * GRANT_GRANULE


def tenant_scenario(n=4, rogues=(), mode="wild_addr", timeout=400,
                    persistent=True, horizon=8_000):
    """A hand-rolled tenanted scenario: ``n`` domains, chosen rogues."""
    plans = []
    for index in range(n):
        base = index * SPAN
        if index in rogues and mode == "wild_addr":
            # 1 KiB = four 16-beat subs: a persistent wild master
            # re-offends after every reset until the policy gives up
            target = ((index + 1) % n) * SPAN
            plans.append(PortPlan(jobs=(("read", target, 1024),),
                                  fault=MasterFault(mode="wild_addr")))
        elif index in rogues:
            # 1 KiB = 64 beats: the post-hang residue overflows the
            # 32-deep eFIFO data queue, so the watchdog provably trips
            plans.append(PortPlan(
                jobs=(("read", base, 1024),), timeout=timeout,
                fault=MasterFault(mode="hung_r", hang_after_beats=8,
                                  persistent=persistent)))
        else:
            plans.append(PortPlan(jobs=(("read", base, 256),)))
    return Scenario(family="flat", ports=tuple(plans),
                    grants=tuple((i * SPAN, SPAN) for i in range(n)),
                    horizon=horizon, settle=512)


def recovery_kinds(result):
    """Per-port multiset of recovery-event kinds from the event log."""
    kinds = {}
    for event in result.events:
        if event["event"] == "port_recovery":
            kinds.setdefault(event["port"], []).append(event["kind"])
    return kinds


class TestTenantedScenarioModel:
    def test_grants_mark_a_scenario_tenanted(self):
        scenario = tenant_scenario()
        assert scenario.is_tenanted
        assert not tenant_scenario().baseline().rogue_indices

    def test_multiple_rogues_allowed_only_with_grants(self):
        with pytest.raises(ValueError):
            Scenario(family="flat", ports=(
                PortPlan(jobs=(("read", 0, 256),), timeout=300,
                         fault=MasterFault(mode="hung_r")),
                PortPlan(jobs=(("read", SPAN, 256),), timeout=300,
                         fault=MasterFault(mode="hung_r"))))
        tenant_scenario(rogues=(0, 1), mode="hung_r")   # fine tenanted

    def test_wild_addr_requires_grants(self):
        with pytest.raises(ValueError):
            Scenario(family="flat", ports=(
                PortPlan(jobs=(("read", 0, 256),),
                         fault=MasterFault(mode="wild_addr")),))

    def test_grants_pin_family_fabric_and_memory(self):
        grants = ((0, SPAN), (SPAN, SPAN), (2 * SPAN, SPAN))
        ports = tuple(PortPlan(jobs=(("read", i * SPAN, 256),))
                      for i in range(3))
        with pytest.raises(ValueError):
            Scenario(family="cascade", ports=ports, grants=grants)
        with pytest.raises(ValueError):
            Scenario(family="flat", fabric="smartconnect", ports=ports,
                     grants=grants)

    def test_grants_must_cover_every_port(self):
        ports = tuple(PortPlan(jobs=(("read", i * SPAN, 256),))
                      for i in range(3))
        with pytest.raises(ValueError):
            Scenario(family="flat", ports=ports,
                     grants=((0, SPAN), (SPAN, SPAN)))

    def test_grants_must_be_granule_aligned_and_disjoint(self):
        ports = tuple(PortPlan(jobs=(("read", i * SPAN, 256),))
                      for i in range(2))
        with pytest.raises(ValueError):
            Scenario(family="flat", ports=ports,
                     grants=((0x100, SPAN), (SPAN, SPAN)))
        with pytest.raises(ValueError):
            Scenario(family="flat", ports=ports,
                     grants=((0, 2 * SPAN), (SPAN, SPAN)))

    def test_json_round_trip_preserves_grants(self):
        scenario = tenant_scenario(rogues=(1,))
        clone = Scenario.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.grants == scenario.grants

    def test_untenanted_json_has_no_grants_key(self):
        # digest compatibility: pre-tenancy scenario ids must not move
        scenario = Scenario(family="flat", ports=(
            PortPlan(jobs=(("read", 0x1000_0000, 256),)),))
        assert "grants" not in json.loads(scenario.to_json())

    def test_baseline_strips_every_rogue_but_keeps_grants(self):
        scenario = tenant_scenario(n=6, rogues=(1, 4), mode="hung_r")
        baseline = scenario.baseline()
        assert baseline.rogue_indices == ()
        assert baseline.grants == scenario.grants
        assert baseline.ports[1].jobs == ()
        assert baseline.ports[4].jobs == ()
        assert baseline.ports[2].jobs == scenario.ports[2].jobs


class TestIsolationGridCompiler:
    def test_registered_with_scale_axes(self):
        grid = GRIDS["isolation"]
        assert 64 in grid.axes["n_domains"]
        assert 8 in grid.axes["n_faulted"]
        assert "isolation" in grid.checks

    def test_one_disjoint_grant_per_domain(self):
        scenario = compile_isolation({"n_domains": 16, "n_faulted": 4})
        assert len(scenario.grants) == 16
        assert scenario.grants == tuple(
            (i * _ISOLATION_SPAN, _ISOLATION_SPAN) for i in range(16))
        scenario_check = Scenario.from_json(scenario.to_json())
        assert scenario_check == scenario   # validates disjointness

    def test_at_least_one_tenant_stays_healthy(self):
        scenario = compile_isolation({"n_domains": 8, "n_faulted": 99})
        assert len(scenario.rogue_indices) == 7

    def test_wild_rogues_aim_at_the_neighbour(self):
        scenario = compile_isolation({"n_domains": 8, "n_faulted": 2,
                                      "mix": "wild", "seed": 3})
        for index in scenario.rogue_indices:
            plan = scenario.ports[index]
            assert plan.fault.mode == "wild_addr"
            target = plan.jobs[0][1]
            assert target == ((index + 1) % 8) * _ISOLATION_SPAN

    def test_mixed_alternates_fault_modes(self):
        scenario = compile_isolation({"n_domains": 16, "n_faulted": 4,
                                      "mix": "mixed", "seed": 11})
        modes = [scenario.ports[i].fault.mode
                 for i in scenario.rogue_indices]
        assert modes == ["wild_addr", "hung_r", "wild_addr", "hung_r"]

    def test_healthy_watchdogs_stay_disarmed(self):
        # fair-share queueing at 64 ports legitimately ages transactions
        # past any tight watchdog; the region filter is the guard
        scenario = compile_isolation({"n_domains": 64, "n_faulted": 8})
        for index, plan in enumerate(scenario.ports):
            if index not in scenario.rogue_indices:
                assert plan.timeout is None

    def test_seed_choice_is_deterministic(self):
        a = compile_isolation({"n_domains": 32, "n_faulted": 4, "seed": 27})
        b = compile_isolation({"n_domains": 32, "n_faulted": 4, "seed": 27})
        assert a == b


class TestIsolationOracle:
    def test_small_mixed_storm_passes_all_oracles(self):
        scenario = compile_isolation({"n_domains": 8, "n_faulted": 2,
                                      "mix": "mixed", "seed": 3})
        evaluate_scenario(scenario, checks=DEFAULT_CHECKS, parallel=0)

    def test_wild_rogue_is_contained_by_the_region_filter(self):
        scenario = tenant_scenario(n=4, rogues=(1,))
        result = run_scenario(scenario, fast=False)
        baseline = run_scenario(scenario.baseline(), fast=False)
        check_isolation(scenario, result, baseline)
        assert result.trips[1] >= 1
        healthy = [info for i, info in enumerate(result.engines) if i != 1]
        assert all(info["error_responses"] == 0 for info in healthy)

    def test_undetected_rogue_falsifies_the_oracle(self):
        # a hung tenant with no watchdog is never contained: the oracle
        # must say so instead of passing vacuously
        scenario = tenant_scenario(n=4, rogues=(2,), mode="hung_r",
                                   timeout=None)
        result = run_scenario(scenario, fast=False)
        baseline = run_scenario(scenario.baseline(), fast=False)
        with pytest.raises(OracleViolation, match="never contained"):
            check_isolation(scenario, result, baseline)

    def test_healthy_observable_drift_falsifies_the_oracle(self):
        scenario = tenant_scenario(n=4, rogues=(1,))
        result = run_scenario(scenario, fast=False)
        # a baseline whose healthy tenants did different work stands in
        # for cross-domain leakage: byte counts must be bit-identical
        drifted = Scenario(
            family="flat",
            ports=tuple(
                PortPlan(jobs=(("read", i * SPAN, 1024),))
                if i != 1 else PortPlan(jobs=())
                for i in range(4)),
            grants=scenario.grants, horizon=scenario.horizon,
            settle=scenario.settle)
        baseline = run_scenario(drifted, fast=False)
        with pytest.raises(OracleViolation, match="changed under"):
            check_isolation(scenario, result, baseline)

    def test_untenanted_scenarios_skip_the_oracle(self):
        scenario = Scenario(family="flat", ports=(
            PortPlan(jobs=(("read", 0x1000_0000, 256),)),),
            horizon=2_000, settle=64)
        result = run_scenario(scenario, fast=False)
        check_isolation(scenario, result, result)   # no-op, no raise

    def test_bound_requires_armed_non_wild_rogues(self):
        assert isolation_bound_for(
            tenant_scenario(rogues=(1,), mode="hung_r",
                            timeout=None)) is None
        assert isolation_bound_for(
            tenant_scenario(rogues=(1,), mode="hung_r",
                            timeout=400)) is not None
        # all-wild storms use the nominal 1-cycle detection term
        bound = isolation_bound_for(tenant_scenario(rogues=(1,)))
        assert bound is not None
        assert bound.timeout_cycles == 1

    def test_multi_fault_bound_serializes(self):
        bound = isolation_bound_for(
            tenant_scenario(n=6, rogues=(1, 3), mode="hung_r"))
        assert bound.multi_fault_delay_bound(2) == \
            2 * bound.healthy_port_delay_bound()
        with pytest.raises(ValueError):
            bound.multi_fault_delay_bound(-1)


class TestGracefulDegradation:
    """Satellite: RecoveryPolicy give-up / re-quarantine at scale."""

    def test_persistent_rogue_is_requarantined_then_given_up(self):
        scenario = tenant_scenario(n=12, rogues=(5,), horizon=16_000)
        result = run_scenario(scenario, fast=False)
        kinds = recovery_kinds(result)[5]
        # the wild master re-offends after every reset: quarantine once
        # per retry, then the policy gives up and leaves it quarantined
        assert kinds.count("quarantine") == RECOVERY_POLICY.max_retries + 1
        assert kinds.count("giveup") == 1
        assert kinds[-1] == "giveup"
        assert result.trips[5] == RECOVERY_POLICY.max_retries + 1

    def test_transient_rogue_is_recovered_not_abandoned(self):
        # a single out-of-grant burst (one 16-beat sub): the filter
        # trips once, the port drains, and recovery re-couples it
        plans = tuple(
            PortPlan(jobs=(("read", 3 * SPAN, 256),),
                     fault=MasterFault(mode="wild_addr"))
            if index == 2 else
            PortPlan(jobs=(("read", index * SPAN, 256),))
            for index in range(6))
        scenario = Scenario(
            family="flat", ports=plans,
            grants=tuple((i * SPAN, SPAN) for i in range(6)),
            horizon=16_000, settle=512)
        result = run_scenario(scenario, fast=False)
        kinds = recovery_kinds(result)[2]
        assert "recouple" in kinds
        assert "giveup" not in kinds

    def test_hung_reader_is_abandoned_because_it_never_drains(self):
        # a wedged R channel cannot drain (the hung engine will not
        # consume even synthesized beats), so recovery burns its retry
        # budget without ever resetting and leaves the port quarantined
        scenario = tenant_scenario(n=6, rogues=(2,), mode="hung_r",
                                   persistent=False, horizon=16_000)
        result = run_scenario(scenario, fast=False)
        kinds = recovery_kinds(result)[2]
        assert kinds[0] == "quarantine"
        assert kinds[-1] == "giveup"
        assert "recouple" not in kinds

    def test_every_other_tenant_keeps_clean_service(self):
        scenario = tenant_scenario(n=12, rogues=(0, 6), horizon=16_000)
        result = run_scenario(scenario, fast=False)
        baseline = run_scenario(scenario.baseline(), fast=False)
        check_isolation(scenario, result, baseline)
        for index, info in enumerate(result.engines):
            if index in (0, 6):
                continue
            assert info["error_responses"] == 0
            assert info["jobs_completed"] == \
                baseline.engines[index]["jobs_completed"]

    def test_giveup_ports_stay_decoupled_at_end_of_run(self):
        scenario = tenant_scenario(n=8, rogues=(3,), horizon=16_000)
        result = run_scenario(scenario, fast=False)
        kinds = recovery_kinds(result)[3]
        # after giveup there is no further recouple
        assert kinds.index("giveup") == len(kinds) - 1


class TestFaultStormAtScale:
    """The acceptance storm: 64 domains, 8 faulted, digest-stable."""

    STORM = {"n_domains": 64, "n_faulted": 8, "mix": "mixed", "seed": 3,
             "job_bytes": 256}

    def test_storm_shape(self):
        scenario = compile_isolation(self.STORM)
        assert len(scenario.ports) == 64
        assert len(scenario.rogue_indices) == 8

    def test_storm_passes_the_full_oracle_stack(self):
        scenario = compile_isolation(self.STORM)
        result = evaluate_scenario(scenario, checks=DEFAULT_CHECKS,
                                   parallel=0)
        tripped = [i for i, trips in enumerate(result.trips) if trips]
        assert tripped == sorted(scenario.rogue_indices)

    def test_storm_campaign_digest_is_worker_count_independent(self):
        scenarios = [
            compile_isolation(self.STORM),
            compile_isolation({"n_domains": 8, "n_faulted": 1,
                               "mix": "wild", "seed": 11}),
        ]
        checks = ("liveness", "protocol", "isolation")
        from repro.verify import CampaignConfig
        config = CampaignConfig(checks=checks, kernel_parallel=0)
        inline = run_campaign(scenarios, workers=1, config=config)
        pooled = run_campaign(scenarios, workers=2, config=config)
        assert inline.ok and pooled.ok
        assert inline.digest == pooled.digest
