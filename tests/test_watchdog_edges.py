"""Watchdog edge cases: boundary exactness, re-trips, simultaneous trips.

The fault campaign covers the five seeded end-to-end stories; these
tests pin the corner semantics the campaign happens not to reach:

* a trip fires *exactly* at ``issue + PORT_TIMEOUT``, never a cycle
  early or late, on both kernel paths;
* a persistently faulty accelerator re-trips after every recovery
  attempt until the retry budget is exhausted (the recovery loop's
  attempt counter is cumulative by design);
* two ports sharing the EXBAR can trip on the same cycle without
  stepping on each other's containment.
"""

from repro.axi.port import AxiLink
from repro.hyperconnect import HyperConnect
from repro.hypervisor import Hypervisor, RecoveryPolicy
from repro.masters import AxiDma, FaultInjectingMaster
from repro.memory import FaultInjectingMemory, MemorySubsystem
from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.sim.events import PortFaultEvent, PortRecoveryEvent

TIMEOUT = 400


def build(fast, memory_cls=MemorySubsystem, memory_kwargs=None):
    sim = Simulator("edges", clock_hz=ZCU102.pl_clock_hz, fast=fast)
    link = AxiLink(sim, "m", data_bytes=16)
    hc = HyperConnect(sim, "hc", 2, link)
    memory_cls(sim, "mem", link, timing=ZCU102.dram,
               **(memory_kwargs or {}))
    return sim, hc, Hypervisor(hc)


def dead_build(fast):
    """A fabric whose memory never serves a single beat."""
    return build(fast, memory_cls=FaultInjectingMemory,
                 memory_kwargs={"dead_after_beats": 0, "seed": 1})


def recoveries(sim, kind):
    return [e for e in sim.events.events(PortRecoveryEvent)
            if e.kind == kind]


class TestExactBoundary:
    """Deadlines are absolute cycles: trips land exactly on them."""

    def test_trip_offset_tracks_timeout_offset_exactly(self):
        """Two ports issue on the same cycle against a dead slave; their
        trip cycles must differ by exactly the timeout difference."""
        def run(fast):
            sim, hc, hv = dead_build(fast)
            hv.driver.set_watchdog_timeout(0, TIMEOUT)
            hv.driver.set_watchdog_timeout(1, TIMEOUT + 50)
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            a.enqueue_read(0x1000_0000, 1024)
            b.enqueue_read(0x2000_0000, 1024)
            sim.run(TIMEOUT + 50 + 256)
            faults = {e.port: e for e in sim.events.events(PortFaultEvent)}
            assert sorted(faults) == [0, 1]
            assert faults[0].age == TIMEOUT
            assert faults[1].age == TIMEOUT + 50
            assert faults[1].cycle - faults[0].cycle == 50
            # same issue cycle recovered from either trip
            assert (faults[0].cycle - TIMEOUT
                    == faults[1].cycle - (TIMEOUT + 50))
            return tuple(sim.events.as_dicts())

        assert run(fast=False) == run(fast=True)

    def test_no_trip_one_cycle_before_the_deadline(self):
        """Re-run the same system up to trip-1 cycles: the watchdog must
        still be silent; one more cycle fires it."""
        def trip_cycle(fast):
            sim, hc, hv = dead_build(fast)
            hv.driver.set_watchdog_timeout(0, TIMEOUT)
            AxiDma(sim, "a", hc.port(0)).enqueue_read(0x1000_0000, 1024)
            sim.run(TIMEOUT + 256)
            (fault,) = sim.events.events(PortFaultEvent)
            return fault.cycle

        reference = trip_cycle(fast=False)
        assert reference == trip_cycle(fast=True)
        for fast in (False, True):
            sim, hc, hv = dead_build(fast)
            hv.driver.set_watchdog_timeout(0, TIMEOUT)
            AxiDma(sim, "a", hc.port(0)).enqueue_read(0x1000_0000, 1024)
            sim.run(reference)  # runs cycles 0 .. trip-1 inclusive
            assert not sim.events.events(PortFaultEvent)
            assert hc.supervisors[0].fault_stats.watchdog_trips == 0
            sim.run(1)
            (fault,) = sim.events.events(PortFaultEvent)
            assert fault.cycle == reference


class TestPersistentRefault:
    """A broken bitstream re-trips after each reset until retries run out."""

    def test_retry_budget_exhausts_against_persistent_fault(self):
        policy = RecoveryPolicy(max_retries=2, backoff_cycles=256,
                                backoff_factor=2)

        def run(fast):
            sim, hc, hv = build(fast)
            hv.default_recovery_policy = policy
            hv.driver.set_watchdog_timeout(1, TIMEOUT)
            hv.enable_fault_recovery()
            rogue = FaultInjectingMaster(sim, "rogue", hc.port(1),
                                         fault_mode="withheld_w",
                                         hang_after_beats=4, seed=7,
                                         persistent=True)
            guest = hv.create_domain("guest")
            guest.ports.append(1)
            hv.attach_accelerator("guest", 1, rogue)
            supervisor = hc.supervisors[1]

            rogue.enqueue_write(0x3000_0000, 1024)
            sim.run_until(lambda: len(recoveries(sim, "recouple")) >= 1,
                          max_cycles=60_000)
            assert supervisor.fault_stats.watchdog_trips == 1
            # reset did NOT cure the fault (persistent bitstream defect)
            assert rogue.fault_mode == "withheld_w"
            assert hv.driver.is_coupled(1)

            rogue.enqueue_write(0x3000_0000, 1024)
            sim.run_until(lambda: len(recoveries(sim, "recouple")) >= 2,
                          max_cycles=60_000)
            assert supervisor.fault_stats.watchdog_trips == 2
            assert rogue.fault_mode == "withheld_w"

            # the retry budget (2) is spent: the third trip gives up
            # immediately and the port stays quarantined for good
            rogue.enqueue_write(0x3000_0000, 1024)
            sim.run_until(lambda: len(recoveries(sim, "giveup")) >= 1,
                          max_cycles=60_000)
            sim.run(2048)
            assert supervisor.fault_stats.watchdog_trips == 3
            assert 1 in hv.recovery.gave_up
            assert 1 in hv.quarantined
            assert not hv.driver.is_coupled(1)
            assert len(recoveries(sim, "recouple")) == 2
            return (supervisor.fault_stats.as_dict(),
                    tuple(sim.events.as_dicts()), sim.now)

        assert run(fast=False) == run(fast=True)


class TestSimultaneousTrips:
    """Same-cycle trips on two ports sharing the EXBAR."""

    def test_symmetric_ports_trip_on_the_same_cycle(self):
        def run(fast):
            sim, hc, hv = dead_build(fast)
            for port in (0, 1):
                hv.driver.set_watchdog_timeout(port, TIMEOUT)
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            a.enqueue_read(0x1000_0000, 2048)
            b.enqueue_read(0x2000_0000, 2048)
            sim.run(TIMEOUT + 2048)
            faults = sim.events.events(PortFaultEvent)
            assert sorted(e.port for e in faults) == [0, 1]
            # symmetric programs issue together and trip together
            assert faults[0].cycle == faults[1].cycle
            assert all(e.age == TIMEOUT for e in faults)
            # each port's containment ran independently to completion:
            # every issued transaction answered with synthesized errors
            for engine in (a, b):
                assert engine.outstanding == 0
                assert engine.error_responses > 0
            for port in (0, 1):
                supervisor = hc.supervisors[port]
                assert supervisor.fault_stats.watchdog_trips == 1
                assert supervisor.fault_stats.synth_r_beats > 0
                assert not hv.driver.is_coupled(port)
            return ((a.error_responses, b.error_responses),
                    tuple(sim.events.as_dicts()), sim.now)

        assert run(fast=False) == run(fast=True)
