"""Pure-data tests of the scenario model (no simulators involved).

Scenarios are the currency of the verification layer: hypothesis shrinks
them, the corpus stores them, humans re-run them.  That only works if
serialization is a faithful round-trip and the validation rules reject
every shape the harness cannot build.
"""

import dataclasses

import pytest
from hypothesis import given

from repro.verify import (
    MasterFault,
    MemoryFault,
    PortPlan,
    Scenario,
    canonical_json,
)
from repro.verify.strategies import scenarios


def flat(ports, **kwargs):
    return Scenario(family="flat", ports=tuple(ports), **kwargs)


def healthy(timeout=None):
    return PortPlan(jobs=(("read", 0x1000_0000, 1024),), timeout=timeout)


def rogue(mode="hung_r"):
    return PortPlan(jobs=(("read", 0x2000_0000, 1024),), timeout=400,
                    fault=MasterFault(mode=mode, hang_after_beats=8))


class TestRoundTrip:
    @given(scenario=scenarios())
    def test_json_round_trip_is_identity(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    @given(scenario=scenarios())
    def test_canonical_json_is_stable(self, scenario):
        text = scenario.to_json()
        assert Scenario.from_json(text).to_json() == text

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_settle_defaults_on_old_corpus_entries(self):
        data = flat([healthy()]).to_dict()
        del data["settle"]
        assert Scenario.from_dict(data).settle == 256


class TestValidation:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            Scenario(family="star", ports=(healthy(),))

    def test_rejects_empty_ports(self):
        with pytest.raises(ValueError):
            flat([])

    @pytest.mark.parametrize("family", ("cascade", "multiport"))
    def test_rejects_single_port_composite_topologies(self, family):
        with pytest.raises(ValueError):
            Scenario(family=family, ports=(healthy(),))

    def test_rejects_two_rogues(self):
        with pytest.raises(ValueError):
            flat([rogue(), rogue()])

    def test_rejects_master_and_memory_fault_together(self):
        with pytest.raises(ValueError):
            flat([rogue(), healthy()], memory=MemoryFault(kind="dead"))

    @pytest.mark.parametrize("family", ("ooo", "multiport"))
    def test_rejects_memory_fault_on_advanced_memories(self, family):
        ports = (healthy(), healthy())
        with pytest.raises(ValueError):
            Scenario(family=family, ports=ports,
                     memory=MemoryFault(kind="freeze"))

    def test_rejects_bad_fault_programs(self):
        with pytest.raises(ValueError):
            MasterFault(mode="explode")
        with pytest.raises(ValueError):
            MasterFault(mode="hung_r", hang_after_beats=-1)
        with pytest.raises(ValueError):
            MemoryFault(kind="haunted")
        with pytest.raises(ValueError):
            flat([healthy()], horizon=0)


class TestBaseline:
    def test_rogue_loses_fault_and_workload(self):
        scenario = flat([healthy(timeout=4000), rogue()])
        baseline = scenario.baseline()
        assert baseline.ports[1].fault == MasterFault()
        assert baseline.ports[1].jobs == ()
        # topology and healthy programming are untouched
        assert baseline.ports[0] == scenario.ports[0]
        assert baseline.ports[1].timeout == scenario.ports[1].timeout
        assert baseline.family == scenario.family
        assert baseline.rogue_index is None

    def test_memory_fault_is_stripped(self):
        scenario = flat([healthy(timeout=400)],
                        memory=MemoryFault(kind="dead", dead_after_beats=0))
        assert scenario.baseline().memory == MemoryFault()

    def test_baseline_of_healthy_scenario_is_itself(self):
        scenario = flat([healthy(), healthy(timeout=4000)])
        assert scenario.baseline() == scenario

    @given(scenario=scenarios())
    def test_baseline_is_always_fault_free(self, scenario):
        baseline = scenario.baseline()
        assert baseline.rogue_index is None
        assert baseline.memory.kind == "none"


class TestAccessors:
    def test_rogue_index(self):
        assert flat([healthy(), rogue()]).rogue_index == 1
        assert flat([rogue(), healthy()]).rogue_index == 0
        assert flat([healthy()]).rogue_index is None

    def test_scenarios_are_frozen(self):
        scenario = flat([healthy()])
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.family = "cascade"
