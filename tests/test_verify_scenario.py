"""Pure-data tests of the scenario model (no simulators involved).

Scenarios are the currency of the verification layer: hypothesis shrinks
them, the corpus stores them, humans re-run them.  That only works if
serialization is a faithful round-trip and the validation rules reject
every shape the harness cannot build.
"""

import dataclasses

import pytest
from hypothesis import given

from repro.verify import (
    MasterFault,
    MemoryFault,
    PortPlan,
    Scenario,
    canonical_json,
)
from repro.verify.strategies import scenarios


def flat(ports, **kwargs):
    return Scenario(family="flat", ports=tuple(ports), **kwargs)


def healthy(timeout=None):
    return PortPlan(jobs=(("read", 0x1000_0000, 1024),), timeout=timeout)


def rogue(mode="hung_r"):
    return PortPlan(jobs=(("read", 0x2000_0000, 1024),), timeout=400,
                    fault=MasterFault(mode=mode, hang_after_beats=8))


class TestRoundTrip:
    @given(scenario=scenarios())
    def test_json_round_trip_is_identity(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    @given(scenario=scenarios())
    def test_canonical_json_is_stable(self, scenario):
        text = scenario.to_json()
        assert Scenario.from_json(text).to_json() == text

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_settle_defaults_on_old_corpus_entries(self):
        data = flat([healthy()]).to_dict()
        del data["settle"]
        assert Scenario.from_dict(data).settle == 256

    def test_new_fields_default_on_old_corpus_entries(self):
        """Dicts written before cascade_depth/fabric/shares existed must
        still load (the checked-in corpus predates them)."""
        data = flat([healthy()]).to_dict()
        for key in ("cascade_depth", "fabric", "shares"):
            del data[key]
        loaded = Scenario.from_dict(data)
        assert loaded.cascade_depth == 2
        assert loaded.fabric == "hyperconnect"
        assert loaded.shares is None

    @given(scenario=scenarios())
    def test_to_dict_equals_its_json_round_trip(self, scenario):
        """to_dict must be JSON-native all the way down (no tuples), so
        embedded campaign records compare equal after disk round trips."""
        import json
        assert scenario.to_dict() == json.loads(scenario.to_json())

    def test_shares_round_trip(self):
        scenario = flat([healthy(), healthy()], shares=(0.25, 1.0))
        clone = Scenario.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.shares == (0.25, 1.0)

    def test_greedy_jobs_round_trip(self):
        scenario = flat([PortPlan(jobs=(("greedy", 0x4000_0000, 8192),)),
                         healthy()])
        assert Scenario.from_json(scenario.to_json()) == scenario
        assert scenario.ports[0].is_greedy

    def test_fabric_and_depth_round_trip(self):
        scenario = Scenario(
            family="cascade", cascade_depth=3,
            ports=(healthy(), healthy(), healthy()))
        assert Scenario.from_json(scenario.to_json()) == scenario
        fabric = Scenario(family="flat", fabric="smartconnect",
                          ports=(healthy(),))
        assert Scenario.from_json(fabric.to_json()) == fabric


class TestValidation:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            Scenario(family="star", ports=(healthy(),))

    def test_rejects_empty_ports(self):
        with pytest.raises(ValueError):
            flat([])

    @pytest.mark.parametrize("family", ("cascade", "multiport"))
    def test_rejects_single_port_composite_topologies(self, family):
        with pytest.raises(ValueError):
            Scenario(family=family, ports=(healthy(),))

    def test_rejects_two_rogues(self):
        with pytest.raises(ValueError):
            flat([rogue(), rogue()])

    def test_rejects_master_and_memory_fault_together(self):
        with pytest.raises(ValueError):
            flat([rogue(), healthy()], memory=MemoryFault(kind="dead"))

    @pytest.mark.parametrize("family", ("ooo", "multiport"))
    def test_rejects_memory_fault_on_advanced_memories(self, family):
        ports = (healthy(), healthy())
        with pytest.raises(ValueError):
            Scenario(family=family, ports=ports,
                     memory=MemoryFault(kind="freeze"))

    def test_rejects_bad_fault_programs(self):
        with pytest.raises(ValueError):
            MasterFault(mode="explode")
        with pytest.raises(ValueError):
            MasterFault(mode="hung_r", hang_after_beats=-1)
        with pytest.raises(ValueError):
            MemoryFault(kind="haunted")
        with pytest.raises(ValueError):
            flat([healthy()], horizon=0)

    def test_rejects_unknown_fabric(self):
        with pytest.raises(ValueError):
            flat([healthy()], fabric="crossbar")

    def test_fabric_family_pairings(self):
        with pytest.raises(ValueError):        # smartconnect is flat-only
            Scenario(family="cascade", fabric="smartconnect",
                     ports=(healthy(), healthy()))
        with pytest.raises(ValueError):        # mixed is multiport-only
            flat([healthy()], fabric="mixed")

    def test_non_hyperconnect_fabrics_reject_hc_features(self):
        with pytest.raises(ValueError):        # faults need containment
            Scenario(family="flat", fabric="smartconnect",
                     ports=(rogue(),))
        with pytest.raises(ValueError):        # reservation is HC-only
            flat([healthy()], fabric="smartconnect", equal_shares=True)
        with pytest.raises(ValueError):        # watchdogs are HC-only
            flat([healthy(timeout=400)], fabric="smartconnect")

    def test_cascade_depth_rules(self):
        with pytest.raises(ValueError):        # depth < 2
            Scenario(family="cascade", cascade_depth=1,
                     ports=(healthy(), healthy()))
        with pytest.raises(ValueError):        # depth only for cascade
            flat([healthy()], cascade_depth=3)
        with pytest.raises(ValueError):        # needs one port per level
            Scenario(family="cascade", cascade_depth=3,
                     ports=(healthy(), healthy()))

    def test_shares_rules(self):
        ports = [healthy(), healthy()]
        with pytest.raises(ValueError):        # one fraction per port
            flat(ports, shares=(0.5,))
        with pytest.raises(ValueError):        # fractions in [0, 1]
            flat(ports, shares=(1.5, 0.5))
        with pytest.raises(ValueError):        # reserved sum <= 1
            flat(ports, shares=(0.7, 0.7))
        with pytest.raises(ValueError):        # exclusive with equal_shares
            flat(ports, shares=(0.5, 0.5), equal_shares=True)
        with pytest.raises(ValueError):        # flat-family only
            Scenario(family="cascade", ports=tuple(ports),
                     shares=(0.5, 0.5))
        with pytest.raises(ValueError):        # fault-free campaigns only
            flat([rogue(), healthy()], shares=(0.5, 0.5))
        # unreserved ports (1.0) don't count against the reserved sum
        assert flat(ports, shares=(0.6, 1.0)).shares == (0.6, 1.0)

    def test_greedy_port_rules(self):
        with pytest.raises(ValueError):        # exactly one job
            PortPlan(jobs=(("greedy", 0x4000_0000, 8192),
                           ("read", 0x1000_0000, 1024)))
        with pytest.raises(ValueError):        # no fault program
            PortPlan(jobs=(("greedy", 0x4000_0000, 8192),),
                     fault=MasterFault(mode="hung_r"))


class TestBaseline:
    def test_rogue_loses_fault_and_workload(self):
        scenario = flat([healthy(timeout=4000), rogue()])
        baseline = scenario.baseline()
        assert baseline.ports[1].fault == MasterFault()
        assert baseline.ports[1].jobs == ()
        # topology and healthy programming are untouched
        assert baseline.ports[0] == scenario.ports[0]
        assert baseline.ports[1].timeout == scenario.ports[1].timeout
        assert baseline.family == scenario.family
        assert baseline.rogue_index is None

    def test_memory_fault_is_stripped(self):
        scenario = flat([healthy(timeout=400)],
                        memory=MemoryFault(kind="dead", dead_after_beats=0))
        assert scenario.baseline().memory == MemoryFault()

    def test_baseline_of_healthy_scenario_is_itself(self):
        scenario = flat([healthy(), healthy(timeout=4000)])
        assert scenario.baseline() == scenario

    @given(scenario=scenarios())
    def test_baseline_is_always_fault_free(self, scenario):
        baseline = scenario.baseline()
        assert baseline.rogue_index is None
        assert baseline.memory.kind == "none"


class TestAccessors:
    def test_rogue_index(self):
        assert flat([healthy(), rogue()]).rogue_index == 1
        assert flat([rogue(), healthy()]).rogue_index == 0
        assert flat([healthy()]).rogue_index is None

    def test_scenarios_are_frozen(self):
        scenario = flat([healthy()])
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.family = "cascade"
