"""Unit tests for payload objects and ID allocation."""

import pytest

from repro.axi import (
    AddrBeat,
    ChannelName,
    IdAllocator,
    Resp,
    Transaction,
    make_read_request,
    make_write_request,
)
from repro.sim import ConfigurationError


class TestTransaction:
    def test_latency_requires_both_stamps(self):
        txn = Transaction("read", "m", 0x0, 4, 16)
        assert txn.latency is None
        txn.issued = 10
        assert txn.latency is None
        txn.completed = 25
        assert txn.latency == 15

    def test_bytes_total(self):
        txn = Transaction("write", "m", 0x0, 8, 16)
        assert txn.bytes_total == 128

    def test_serials_unique(self):
        a = Transaction("read", "m", 0, 1, 16)
        b = Transaction("read", "m", 0, 1, 16)
        assert a.serial != b.serial


class TestAddrBeat:
    def test_request_factories(self):
        txn = Transaction("read", "m", 0x1000, 16, 16)
        ar = make_read_request(txn, txn_id=3)
        assert ar.channel is ChannelName.AR and ar.is_read
        assert ar.address == 0x1000 and ar.length == 16
        assert ar.txn is txn

        txn_w = Transaction("write", "m", 0x2000, 4, 16)
        aw = make_write_request(txn_w, txn_id=1)
        assert aw.channel is ChannelName.AW and not aw.is_read

    def test_origin_of_unsplit_beat_is_itself(self):
        txn = Transaction("read", "m", 0, 4, 16)
        beat = make_read_request(txn, 0)
        assert beat.origin() is beat

    def test_split_child_chains_to_origin(self):
        txn = Transaction("read", "m", 0, 32, 16)
        parent = make_read_request(txn, 0)
        child = parent.split_child(0x100, 16, final_sub=False)
        grandchild = child.split_child(0x180, 8, final_sub=True)
        assert child.origin() is parent
        assert grandchild.origin() is parent
        assert child.parent is parent
        assert not child.final_sub and grandchild.final_sub

    def test_split_child_inherits_metadata(self):
        txn = Transaction("read", "m", 0, 32, 16)
        parent = make_read_request(txn, 5)
        parent.port = 2
        child = parent.split_child(0x10, 16, final_sub=False)
        assert child.txn_id == 5
        assert child.port == 2
        assert child.size_bytes == 16
        assert child.txn is txn

    def test_default_resp_acc(self):
        txn = Transaction("write", "m", 0, 4, 16)
        beat = make_write_request(txn, 0)
        assert beat.resp_acc is Resp.OKAY


class TestIdAllocator:
    def test_allocate_release_cycle(self):
        pool = IdAllocator(2)
        ids = {pool.allocate() for _ in range(4)}
        assert ids == {0, 1, 2, 3}
        assert not pool.available()
        pool.release(2)
        assert pool.available()
        assert pool.in_flight == 3

    def test_exhaustion_raises(self):
        pool = IdAllocator(1)
        pool.allocate()
        pool.allocate()
        with pytest.raises(ConfigurationError):
            pool.allocate()

    def test_double_release_raises(self):
        pool = IdAllocator(1)
        txn_id = pool.allocate()
        pool.release(txn_id)
        with pytest.raises(ConfigurationError):
            pool.release(txn_id)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            IdAllocator(0)
        with pytest.raises(ConfigurationError):
            IdAllocator(17)
