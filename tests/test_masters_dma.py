"""Unit tests for the AXI DMA model."""

import pytest

from repro.masters import AxiDma, DmaDescriptor, standard_case_study_dma
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem

from conftest import drain


def build():
    soc = SocSystem.build(ZCU102, n_ports=2)
    dma = AxiDma(soc.sim, "dma", soc.port(0))
    return soc, dma


class TestDescriptors:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaDescriptor("copy", 0, 16)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaDescriptor("read", 0, 0)

    def test_empty_program_rejected(self):
        soc, dma = build()
        with pytest.raises(ConfigurationError):
            dma.program([])

    def test_start_without_program_rejected(self):
        soc, dma = build()
        with pytest.raises(ConfigurationError):
            dma.start()


class TestRounds:
    def test_single_round(self):
        soc, dma = build()
        dma.program([DmaDescriptor("read", 0x1000, 256),
                     DmaDescriptor("write", 0x9000, 256)])
        dma.start()
        drain(soc)
        assert dma.rounds_completed == 1
        assert dma.round_rate.events == 1
        assert len(dma.round_latencies) == 1

    def test_repeat_reschedules(self):
        soc, dma = build()
        dma.program([DmaDescriptor("read", 0x1000, 256)], repeat=True)
        dma.start()
        soc.sim.run(5000)
        assert dma.rounds_completed > 3

    def test_stop_halts_repeats(self):
        soc, dma = build()
        dma.program([DmaDescriptor("read", 0x1000, 256)], repeat=True)
        dma.start()
        soc.sim.run(1000)
        dma.stop()
        drain(soc)
        rounds = dma.rounds_completed
        soc.sim.run(2000)
        assert dma.rounds_completed == rounds

    def test_round_counts_all_descriptors(self):
        soc, dma = build()
        dma.program([DmaDescriptor("read", 0x1000, 128),
                     DmaDescriptor("read", 0x2000, 128),
                     DmaDescriptor("write", 0x9000, 128)])
        dma.start()
        drain(soc)
        assert dma.rounds_completed == 1
        assert dma.bytes_read == 256
        assert dma.bytes_written == 128

    def test_one_shot_jobs_do_not_count_as_rounds(self):
        soc, dma = build()
        dma.enqueue_read(0x1000, 128)
        drain(soc)
        assert dma.rounds_completed == 0


class TestCaseStudyFactory:
    def test_standard_case_study_dma(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = standard_case_study_dma(soc.sim, "hadma", soc.port(1),
                                      nbytes=4096)
        dma.start()
        soc.sim.run(4000)
        assert dma.rounds_completed >= 1
        # each round moves nbytes in and nbytes out
        assert dma.bytes_read >= 4096
        assert dma.bytes_written >= 4096
