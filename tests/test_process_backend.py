"""The ``processes`` shard backend: eligibility, identity, containment.

The offload farm (:mod:`repro.masters.offload`) is the reference
process-exportable workload: engines exchanging pure-int tuples with a
hub over long-latency unbounded channels.  These tests pin

* the partition analysis (which shards are offered to worker processes
  and why the rest are not),
* byte-identity of every observable across serial / inline / threads /
  processes,
* the epoch barrier's edge cases — worker crash and worker death are
  contained errors, ``run_until`` stops on the same cycle everywhere,
  and a wiring-stale re-plan mid-simulation keeps working,
* the spawn-safe bootstrap (recipe rebuild) and every graceful
  fallback to threads,
* the SoA wire format round-trip.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.masters.offload import (
    build_offload_farm,
    build_offload_sim,
    job_seed,
    offload_digest,
)
from repro.sim import Channel, Component, SimulationError, Simulator
from repro.sim.parallel import measured_backend
from repro.sim.partition import (
    MIN_PROCESS_EPOCH,
    build_plan,
)
from repro.sim.shardwire import pack_entries, unpack_entries

N_ENGINES = 4
N_JOBS = 64
WORK_ITERS = 40
RUN_CYCLES = 1200


def _run_farm(parallel, backend, cycles=RUN_CYCLES, **kwargs):
    sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                            work_iters=WORK_ITERS, parallel=parallel,
                            parallel_backend=backend, **kwargs)
    sim.run(cycles)
    fingerprint = _farm_fingerprint(sim)
    sim.finish()
    return fingerprint


def _farm_fingerprint(sim):
    hub = sim.lookup("offload-hub")
    engines = [sim.lookup(f"offload{i}") for i in range(N_ENGINES)]
    return (sim.now, hub.next_job, hub.results_received, hub.checksum,
            tuple((e.jobs_done, e.checksum) for e in engines),
            tuple((sim.lookup(f"offload{i}.req").pushed_total,
                   sim.lookup(f"offload{i}.req").popped_total,
                   sim.lookup(f"offload{i}.res").pushed_total,
                   sim.lookup(f"offload{i}.res").popped_total)
                  for i in range(N_ENGINES)))


# ----------------------------------------------------------------------
# partition eligibility
# ----------------------------------------------------------------------

class TestEligibility:

    def test_farm_shards_are_process_exportable(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS)
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert sorted(plan.process_shards) == [
            f"offload{i}" for i in range(N_ENGINES)]
        assert plan.process_blockers == {}
        assert plan.process_parallelizable
        for info in plan.process_shards.values():
            assert info.lookahead == 32  # both boundary links' latency
            assert len(info.inbound) == 1
            assert len(info.outbound) == 1
            assert info.internal == []
        assert plan.process_lookahead == 32

    def test_short_latency_blocks(self):
        sim = Simulator("short")
        build_offload_farm(sim, 2, latency=MIN_PROCESS_EPOCH - 1,
                           n_jobs=8)
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert plan.process_shards == {}
        for key in ("offload0", "offload1"):
            assert "minimum process epoch" in plan.process_blockers[key]

    def test_bounded_boundary_blocks(self):
        sim = Simulator("bounded")
        hub = build_offload_farm(sim, 2, n_jobs=8)
        sim.lookup("offload0.req").capacity = 64
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert "offload0" not in plan.process_shards
        assert "bounded" in plan.process_blockers["offload0"]
        assert "offload1" in plan.process_shards
        del hub

    def test_listener_blocks(self):
        sim = Simulator("listened")
        build_offload_farm(sim, 2, n_jobs=8)
        sim.lookup("offload1.res").subscribe_push(lambda cycle, item: None)
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert "offload1" not in plan.process_shards
        assert "listeners" in plan.process_blockers["offload1"]

    def test_opt_out_component_blocks(self):
        sim = Simulator("optout")
        build_offload_farm(sim, 2, n_jobs=8)
        req = sim.lookup("offload0.req")

        class Tagalong(Component):
            def tick(self, cycle):
                pass

            def shard_affinity(self):
                return "offload0"

            def wake_channels(self):
                return [req]

        Tagalong(sim, "tagalong")
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert "offload0" not in plan.process_shards
        assert "process_exportable" in plan.process_blockers["offload0"]

    def test_fabric_shards_are_not_exportable(self, hc_soc):
        hc_soc.sim._rebuild_wiring()
        plan = build_plan(hc_soc.sim)
        assert plan.process_shards == {}


# ----------------------------------------------------------------------
# observable identity
# ----------------------------------------------------------------------

class TestIdentity:

    def test_all_backends_match_serial_reference(self):
        reference = _run_farm(0, "auto")
        assert reference[2] == N_JOBS  # every job came back
        for backend in ("inline", "threads", "processes"):
            for workers in (2, 3):
                assert _run_farm(workers, backend) == reference, (
                    f"{backend} with {workers} workers diverged")

    def test_multiple_runs_reseed_workers(self):
        """External mutations between run() calls reach the workers
        (the parent mirrors are authoritative at every sync-down)."""

        def staged(parallel, backend):
            sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                                    work_iters=WORK_ITERS,
                                    parallel=parallel,
                                    parallel_backend=backend)
            hub = sim.lookup("offload-hub")
            sim.run(300)
            hub.n_jobs += 16  # driver-level mutation between runs
            sim.run(RUN_CYCLES - 300)
            out = (_farm_fingerprint(sim), hub.n_jobs)
            sim.finish()
            return out

        reference = staged(0, "auto")
        assert staged(2, "processes") == reference

    def test_run_until_stops_on_same_cycle(self):
        def until_done(parallel, backend):
            sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                                    work_iters=WORK_ITERS,
                                    parallel=parallel,
                                    parallel_backend=backend)
            hub = sim.lookup("offload-hub")
            sim.run_until(lambda: hub.done, max_cycles=RUN_CYCLES,
                          check_every=64)
            stopped = sim.now
            sim.finish()
            return stopped

        reference = until_done(0, "auto")
        for backend in ("inline", "threads", "processes"):
            assert until_done(2, backend) == reference, backend


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------

class TestResolution:

    def test_processes_resolution_recorded(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS, parallel=2,
                                parallel_backend="processes")
        sim.run(RUN_CYCLES)
        assert sim.skip_stats.resolved_backend == "processes"
        assert sim.skip_stats.as_dict()["resolved_backend"] == "processes"
        resolution = sim._parallel_engine.backend_resolution
        assert resolution["requested"] == "processes"
        assert resolution["resolved"] == "processes"
        assert resolution["process_shards"] == [
            f"offload{i}" for i in range(N_ENGINES)]
        sim.finish()

    def test_single_worker_stays_inline(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS, parallel=1,
                                parallel_backend="processes")
        sim.run(RUN_CYCLES)
        assert sim.skip_stats.resolved_backend == "threads"
        reason = sim._parallel_engine.backend_resolution["reason"]
        assert ">= 2 workers" in reason
        sim.finish()

    def test_measured_backend_considers_platform(self):
        assert measured_backend(1, "fork", True) == "inline"
        # capable plans win on multi-core hosts regardless of method
        if (os.cpu_count() or 1) > 1:
            assert measured_backend(4, "fork", True) == "processes"
            assert measured_backend(4, "spawn", True) == "processes"
        else:
            assert measured_backend(4, "fork", True) in ("threads",
                                                         "inline")
        # incapable plans fall to the measured threads/inline verdict
        assert measured_backend(4, "fork", False) in ("threads", "inline")

    def test_gil_probe_reported(self):
        from repro.sim.parallel import _gil_enabled

        probe = getattr(__import__("sys"), "_is_gil_enabled", None)
        if probe is None:
            assert _gil_enabled() is None       # pre-3.13 build
        else:
            assert _gil_enabled() is bool(probe())

    def test_free_threaded_build_picks_threads(self, monkeypatch):
        """PEP 703 gate: no spin calibration on a GIL-free interpreter."""
        from repro.sim import parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.sys, "_is_gil_enabled",
                            lambda: False, raising=False)
        if (os.cpu_count() or 1) > 1:
            assert measured_backend(4, "fork", False) == "threads"
        # a GIL-enabled probe must keep the measured verdict instead
        monkeypatch.setattr(parallel_mod.sys, "_is_gil_enabled",
                            lambda: True, raising=False)
        assert measured_backend(4, "fork", False) in ("threads", "inline")

    def test_resolution_trail_records_gil_probe(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS, parallel=2,
                                parallel_backend="threads")
        sim.run(RUN_CYCLES)
        resolution = sim._parallel_engine.backend_resolution
        assert "gil_enabled" in resolution
        assert resolution["gil_enabled"] in (True, False, None)
        sim.finish()

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(SimulationError):
            sim = Simulator("bad", parallel=2, parallel_backend="fibers")
            build_offload_farm(sim, 2, n_jobs=8)
            sim.run(64)


# ----------------------------------------------------------------------
# spawn bootstrap and graceful fallback
# ----------------------------------------------------------------------

class TestBootstrap:

    def test_spawn_recipe_rebuild(self):
        reference = _run_farm(0, "auto")
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                                work_iters=WORK_ITERS, parallel=2,
                                parallel_backend="processes")
        sim.parallel_mp_context = "spawn"
        sim.run(RUN_CYCLES)
        assert sim.skip_stats.resolved_backend == "processes"
        assert _farm_fingerprint(sim) == reference
        sim.finish()

    def test_spawn_without_recipe_falls_back(self):
        reference = _run_farm(0, "auto")
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                                work_iters=WORK_ITERS, parallel=2,
                                parallel_backend="processes")
        sim.parallel_mp_context = "spawn"
        sim.parallel_recipe = None
        sim.run(RUN_CYCLES)
        assert sim.skip_stats.resolved_backend == "threads"
        reason = sim._parallel_engine.backend_resolution["reason"]
        assert "parallel_recipe" in reason
        assert _farm_fingerprint(sim) == reference
        sim.finish()


# ----------------------------------------------------------------------
# barrier edge cases
# ----------------------------------------------------------------------

class TestContainment:

    def test_member_exception_is_contained(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS, parallel=2,
                                parallel_backend="processes")
        sim.lookup("offload0").fail_at_job = 8
        with pytest.raises(SimulationError, match="injected failure"):
            sim.run(RUN_CYCLES)
        sim.finish()

    def test_worker_death_is_contained(self):
        sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS, parallel=2,
                                parallel_backend="processes")
        sim.lookup("offload1").exit_at_job = 9
        with pytest.raises(SimulationError,
                           match="died with exit code|closed its pipe"):
            sim.run(RUN_CYCLES)
        sim.finish()

    def test_mid_simulation_subscribe_replans(self):
        """A wiring-stale re-plan mid-simulation keeps the survivors on
        the processes backend and routes the listened shard back to the
        parent, where its listeners can fire."""

        def staged(parallel, backend):
            log = []
            sim = build_offload_sim(N_ENGINES, n_jobs=N_JOBS,
                                    work_iters=WORK_ITERS,
                                    parallel=parallel,
                                    parallel_backend=backend)
            sim.run(300)
            sim.lookup("offload0.res").subscribe_push(
                lambda cycle, item: log.append((cycle, item)))
            sim.lookup("offload0.req").subscribe_pop(
                lambda cycle, item: log.append((cycle, item)))
            sim.run(RUN_CYCLES - 300)
            out = (_farm_fingerprint(sim), tuple(log))
            engine = sim._parallel_engine
            sim.finish()
            return out, engine

        reference, _engine = staged(0, "auto")
        sharded, engine = staged(2, "processes")
        assert sharded == reference
        resolution = engine.backend_resolution
        assert resolution["resolved"] == "processes"
        assert "offload0" not in resolution["process_shards"]
        assert "listeners" in resolution["process_blockers"]["offload0"]


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

class TestShardwire:

    def test_soa_roundtrip(self):
        entries = [(cycle, (cycle * 3, -cycle, cycle ** 2))
                   for cycle in range(50)]
        frame = pack_entries(entries)
        assert frame[0] == "soa"
        assert unpack_entries(frame) == entries

    def test_raw_fallback_for_non_int_payloads(self):
        entries = [(1, ("job", 2)), (2, (3, 4))]
        frame = pack_entries(entries)
        assert frame[0] == "raw"
        assert unpack_entries(frame) == entries

    def test_bool_and_overflow_stay_raw(self):
        # bool is an int subclass and would silently round-trip to int
        assert pack_entries([(1, (True, 2))])[0] == "raw"
        assert pack_entries([(1, (1 << 63,))])[0] == "raw"
        assert pack_entries([(1, (-(1 << 63),))])[0] == "soa"

    def test_empty_and_mixed_arity(self):
        assert unpack_entries(pack_entries([])) == []
        assert pack_entries([(1, (1,)), (2, (1, 2))])[0] == "raw"

    def test_farm_traffic_takes_soa_path(self):
        entries = [(cycle + 32, (job, job_seed(job)))
                   for cycle, job in enumerate(range(16))]
        assert pack_entries(entries)[0] == "soa"
        digests = [(cycle + 32, (job, offload_digest(job_seed(job), 8)))
                   for cycle, job in enumerate(range(16))]
        assert pack_entries(digests)[0] == "soa"


# ----------------------------------------------------------------------
# randomized sweep (nightly budget runs 400 examples)
# ----------------------------------------------------------------------

@pytest.mark.fuzz
@settings(deadline=None, max_examples=25)
@given(workers=st.integers(min_value=2, max_value=4),
       n_engines=st.integers(min_value=2, max_value=6),
       n_jobs=st.integers(min_value=1, max_value=96),
       latency=st.sampled_from((8, 32, 96)),
       backend=st.sampled_from(("threads", "processes")))
def test_farm_identity_fuzz(workers, n_engines, n_jobs, latency, backend):
    """Randomized farm shapes: 2-4 workers on either real backend must
    match the serial reference exactly (the nightly hypothesis profile
    deepens this sweep)."""

    def run(parallel, chosen):
        sim = build_offload_sim(n_engines, n_jobs=n_jobs, latency=latency,
                                work_iters=8, parallel=parallel,
                                parallel_backend=chosen)
        hub = sim.lookup("offload-hub")
        sim.run_until(lambda: hub.done, max_cycles=50_000,
                      check_every=128)
        out = (sim.now, hub.checksum, hub.results_received)
        sim.finish()
        return out

    assert run(workers, backend) == run(0, "auto")
