"""Unit tests for the generic AXI master engine."""

import pytest

from repro.masters import AxiMasterEngine
from repro.memory import MemoryStore
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem

from conftest import drain


def build(with_store=False, **engine_kwargs):
    soc = SocSystem.build(ZCU102, n_ports=2, with_store=with_store)
    engine = AxiMasterEngine(soc.sim, "eng", soc.port(0), **engine_kwargs)
    return soc, engine


class TestJobApi:
    def test_read_job_completes(self):
        soc, engine = build()
        job = engine.enqueue_read(0x1000, 256)
        drain(soc)
        assert job.completed is not None
        assert job.read_bytes_done == 256
        assert not engine.busy

    def test_write_job_completes(self):
        soc, engine = build()
        job = engine.enqueue_write(0x1000, 256)
        drain(soc)
        assert job.completed is not None
        assert job.write_bytes_done == 256

    def test_copy_job_moves_data(self):
        soc, engine = build(with_store=True)
        soc.store.fill_pattern(0x1000, 512, seed=3)
        job = engine.enqueue_copy(0x1000, 0x9000, 512)
        drain(soc)
        assert job.completed is not None
        assert soc.store.read(0x9000, 512) == soc.store.read(0x1000, 512)

    def test_job_latency_recorded(self):
        soc, engine = build()
        job = engine.enqueue_read(0x1000, 16)
        drain(soc)
        assert job.latency is not None and job.latency > 0
        assert engine.job_latency.count == 1

    def test_completion_callback_fires(self):
        soc, engine = build()
        seen = []
        engine.on_job_complete(lambda job, cycle: seen.append(cycle))
        engine.enqueue_read(0x1000, 16)
        drain(soc)
        assert len(seen) == 1

    def test_sequential_jobs_all_complete(self):
        soc, engine = build()
        jobs = [engine.enqueue_read(0x1000 + i * 0x1000, 256)
                for i in range(5)]
        drain(soc)
        assert all(job.completed is not None for job in jobs)
        assert len(engine.jobs_completed) == 5


class TestValidation:
    def test_unaligned_size_rejected(self):
        soc, engine = build()
        with pytest.raises(ConfigurationError):
            engine.enqueue_read(0x1000, 17)

    def test_zero_size_rejected(self):
        soc, engine = build()
        with pytest.raises(ConfigurationError):
            engine.enqueue_read(0x1000, 0)

    def test_mismatched_write_data_rejected(self):
        soc, engine = build()
        with pytest.raises(ConfigurationError):
            engine.enqueue_write(0x1000, 32, data=b"short")

    def test_invalid_burst_len_rejected(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            AxiMasterEngine(soc.sim, "bad", soc.port(0), burst_len=0)

    def test_invalid_outstanding_rejected(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            AxiMasterEngine(soc.sim, "bad", soc.port(0), max_outstanding=0)


class TestBurstBehaviour:
    def test_transfer_split_to_preferred_burst(self):
        soc, engine = build(burst_len=16)
        issued = []
        soc.port(0).ar.subscribe_push(
            lambda cycle, beat: issued.append(beat.length))
        engine.enqueue_read(0x0, 16 * 16 * 4)  # 4 x 16-beat bursts
        drain(soc)
        assert issued == [16, 16, 16, 16]

    def test_4kb_boundary_respected(self):
        soc, engine = build(burst_len=256)
        issued = []
        soc.port(0).ar.subscribe_push(
            lambda cycle, beat: issued.append((beat.address, beat.length)))
        engine.enqueue_read(0xF80, 256)        # crosses 4 KiB if naive
        drain(soc)
        assert len(issued) == 2
        for address, length in issued:
            assert (address // 4096) == ((address + length * 16 - 1) // 4096)

    def test_outstanding_limit_respected(self):
        soc, engine = build(burst_len=16, max_outstanding=2)
        in_flight = [0]
        peak = [0]

        def on_ar(cycle, beat):
            in_flight[0] += 1
            peak[0] = max(peak[0], in_flight[0])

        def on_r(cycle, beat):
            if beat.last:
                in_flight[0] -= 1

        soc.port(0).ar.subscribe_push(on_ar)
        soc.port(0).r.subscribe_pop(on_r)
        engine.enqueue_read(0x0, 16 * 16 * 8)
        drain(soc)
        assert peak[0] <= 2

    def test_write_data_follows_aw_order(self):
        soc, engine = build()
        # protocol checker on the master link would catch violations;
        # here we assert per-burst W counts via the memory's beat counter
        engine.enqueue_write(0x0, 1024)
        drain(soc)
        assert soc.memory.writes_served == 4   # 1024B = 4 x 16-beat bursts

    def test_w_beat_gap_slows_supply(self):
        soc_fast, fast = build()
        fast.enqueue_write(0x0, 512)
        fast_cycles = drain(soc_fast)
        soc_slow, slow = build(w_beat_gap=4)
        slow.enqueue_write(0x0, 512)
        slow_cycles = drain(soc_slow)
        assert slow_cycles > fast_cycles


class TestDataIntegrity:
    def test_write_then_read_round_trip(self):
        soc, engine = build(with_store=True, collect_data=True)
        payload = bytes((i * 7) & 0xFF for i in range(512))
        engine.enqueue_write(0x4000, 512, data=payload)
        drain(soc)
        job = engine.enqueue_read(0x4000, 512)
        drain(soc)
        assert bytes(job.result) == payload

    def test_read_without_collect_has_no_result(self):
        soc, engine = build(with_store=True, collect_data=False)
        job = engine.enqueue_read(0x4000, 64)
        drain(soc)
        assert job.result is None


class TestStats:
    def test_byte_counters(self):
        soc, engine = build()
        engine.enqueue_read(0x0, 256)
        engine.enqueue_write(0x4000, 512)
        drain(soc)
        assert engine.bytes_read == 256
        assert engine.bytes_written == 512

    def test_latency_stats_populated(self):
        soc, engine = build()
        engine.enqueue_read(0x0, 512)
        engine.enqueue_write(0x4000, 512)
        drain(soc)
        assert engine.read_latency.count == 2   # 512B = 2 bursts
        assert engine.write_latency.count == 2
        assert engine.read_latency.mean > 0
