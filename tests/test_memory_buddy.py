"""Unit tests for the buddy allocator behind hypervisor region grants."""

import pytest

from repro.memory import AllocationError, BuddyAllocator


class TestConstruction:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 3 * 4096)

    def test_min_block_must_be_power_of_two_and_fit(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 1 << 20, min_block=3000)
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 4096, min_block=8192)

    def test_base_must_be_size_aligned(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(4096, 1 << 20)
        BuddyAllocator(1 << 20, 1 << 20)   # aligned base is fine


class TestAllocation:
    def test_lowest_address_granted_first(self):
        pool = BuddyAllocator(0, 1 << 20)
        assert pool.alloc(4096) == 0
        assert pool.alloc(4096) == 4096
        assert pool.alloc(4096) == 8192

    def test_requests_round_up_to_power_of_two(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(5000)
        assert pool.grant_size(address) == 8192

    def test_requests_round_up_to_min_block(self):
        pool = BuddyAllocator(0, 1 << 20, min_block=16384)
        address = pool.alloc(100)
        assert pool.grant_size(address) == 16384

    def test_nonpositive_request_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        with pytest.raises(AllocationError):
            pool.alloc(0)
        with pytest.raises(AllocationError):
            pool.alloc(-4096)

    def test_oversized_request_rejected(self):
        pool = BuddyAllocator(0, 1 << 16)
        with pytest.raises(AllocationError):
            pool.alloc((1 << 16) + 1)

    def test_exhaustion_raises(self):
        pool = BuddyAllocator(0, 4 * 4096)
        for _ in range(4):
            pool.alloc(4096)
        with pytest.raises(AllocationError):
            pool.alloc(4096)

    def test_base_offset_is_applied(self):
        pool = BuddyAllocator(1 << 20, 1 << 20)
        assert pool.alloc(4096) == 1 << 20
        assert pool.alloc(4096) == (1 << 20) + 4096


class TestFreeAndCoalesce:
    def test_free_returns_block_for_reuse(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(4096)
        pool.free(address)
        assert pool.alloc(4096) == address

    def test_coalesce_restores_the_full_pool(self):
        pool = BuddyAllocator(0, 1 << 18)
        grants = [pool.alloc(4096) for _ in range(64)]
        for address in grants:
            pool.free(address)
        assert pool.free_bytes == 1 << 18
        assert pool.largest_free_block == 1 << 18

    def test_partial_free_does_not_overcoalesce(self):
        pool = BuddyAllocator(0, 4 * 4096)
        a = pool.alloc(4096)
        b = pool.alloc(4096)
        pool.free(a)
        # b (a's buddy) is still live: the largest free block is the
        # untouched upper half plus the lone freed page, never the pool
        assert pool.largest_free_block == 2 * 4096
        pool.free(b)
        assert pool.largest_free_block == 4 * 4096

    def test_double_free_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(4096)
        pool.free(address)
        with pytest.raises(AllocationError):
            pool.free(address)

    def test_free_of_ungranted_address_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        with pytest.raises(AllocationError):
            pool.free(0x5000)


class TestBookkeeping:
    def test_stats_track_the_lifecycle(self):
        pool = BuddyAllocator(0, 1 << 20)
        a = pool.alloc(4096)
        b = pool.alloc(8192)
        pool.free(a)
        stats = pool.stats()
        assert stats["allocations"] == 2
        assert stats["frees"] == 1
        assert stats["allocated_bytes"] == 8192
        assert stats["free_bytes"] == (1 << 20) - 8192

    def test_grants_listing_is_sorted(self):
        pool = BuddyAllocator(0, 1 << 20)
        addresses = [pool.alloc(4096) for _ in range(5)]
        pool.free(addresses[2])
        grants = pool.grants()
        assert grants == sorted(grants)
        assert len(grants) == 4
        assert all(size == 4096 for _, size in grants)

    def test_identical_operation_sequences_grant_identically(self):
        def run():
            pool = BuddyAllocator(0, 1 << 20)
            out = [pool.alloc(size) for size in
                   (4096, 16384, 4096, 8192, 4096)]
            pool.free(out[1])
            out.append(pool.alloc(4096))
            return out

        assert run() == run()
