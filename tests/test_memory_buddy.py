"""Unit tests for the buddy allocator behind hypervisor region grants."""

import pytest

from repro.memory import AllocationError, BuddyAllocator


class TestConstruction:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 3 * 4096)

    def test_min_block_must_be_power_of_two_and_fit(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 1 << 20, min_block=3000)
        with pytest.raises(AllocationError):
            BuddyAllocator(0, 4096, min_block=8192)

    def test_base_must_be_size_aligned(self):
        with pytest.raises(AllocationError):
            BuddyAllocator(4096, 1 << 20)
        BuddyAllocator(1 << 20, 1 << 20)   # aligned base is fine


class TestAllocation:
    def test_lowest_address_granted_first(self):
        pool = BuddyAllocator(0, 1 << 20)
        assert pool.alloc(4096) == 0
        assert pool.alloc(4096) == 4096
        assert pool.alloc(4096) == 8192

    def test_requests_round_up_to_power_of_two(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(5000)
        assert pool.grant_size(address) == 8192

    def test_requests_round_up_to_min_block(self):
        pool = BuddyAllocator(0, 1 << 20, min_block=16384)
        address = pool.alloc(100)
        assert pool.grant_size(address) == 16384

    def test_nonpositive_request_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        with pytest.raises(AllocationError):
            pool.alloc(0)
        with pytest.raises(AllocationError):
            pool.alloc(-4096)

    def test_oversized_request_rejected(self):
        pool = BuddyAllocator(0, 1 << 16)
        with pytest.raises(AllocationError):
            pool.alloc((1 << 16) + 1)

    def test_exhaustion_raises(self):
        pool = BuddyAllocator(0, 4 * 4096)
        for _ in range(4):
            pool.alloc(4096)
        with pytest.raises(AllocationError):
            pool.alloc(4096)

    def test_base_offset_is_applied(self):
        pool = BuddyAllocator(1 << 20, 1 << 20)
        assert pool.alloc(4096) == 1 << 20
        assert pool.alloc(4096) == (1 << 20) + 4096


class TestFreeAndCoalesce:
    def test_free_returns_block_for_reuse(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(4096)
        pool.free(address)
        assert pool.alloc(4096) == address

    def test_coalesce_restores_the_full_pool(self):
        pool = BuddyAllocator(0, 1 << 18)
        grants = [pool.alloc(4096) for _ in range(64)]
        for address in grants:
            pool.free(address)
        assert pool.free_bytes == 1 << 18
        assert pool.largest_free_block == 1 << 18

    def test_partial_free_does_not_overcoalesce(self):
        pool = BuddyAllocator(0, 4 * 4096)
        a = pool.alloc(4096)
        b = pool.alloc(4096)
        pool.free(a)
        # b (a's buddy) is still live: the largest free block is the
        # untouched upper half plus the lone freed page, never the pool
        assert pool.largest_free_block == 2 * 4096
        pool.free(b)
        assert pool.largest_free_block == 4 * 4096

    def test_double_free_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(4096)
        pool.free(address)
        with pytest.raises(AllocationError):
            pool.free(address)

    def test_free_of_ungranted_address_rejected(self):
        pool = BuddyAllocator(0, 1 << 20)
        with pytest.raises(AllocationError):
            pool.free(0x5000)


class TestChurnLifecycle:
    """Grant/release/re-grant cycles as driven by live tenant churn."""

    def test_repeated_grant_release_regrant_at_same_size(self):
        pool = BuddyAllocator(0, 1 << 20)
        first = pool.alloc(16384)
        for _ in range(50):
            pool.free(first)
            again = pool.alloc(16384)
            # lowest-address-first policy hands the same block back
            assert again == first
        stats = pool.stats()
        assert stats["allocations"] == 51
        assert stats["frees"] == 50
        assert pool.free_bytes == (1 << 20) - 16384

    def test_fragmentation_then_full_coalescence(self):
        pool = BuddyAllocator(0, 1 << 18)
        grants = [pool.alloc(4096) for _ in range(64)]
        # free every other page: maximal fragmentation, no coalescing
        for address in grants[::2]:
            pool.free(address)
        assert pool.largest_free_block == 4096
        assert pool.free_bytes == 32 * 4096
        for address in grants[1::2]:
            pool.free(address)
        assert pool.largest_free_block == 1 << 18
        assert pool.free_bytes == 1 << 18
        # the healed pool serves the largest possible grant again
        assert pool.alloc(1 << 18) == 0

    def test_double_release_rejected_after_regrant_cycles(self):
        pool = BuddyAllocator(0, 1 << 20)
        address = pool.alloc(8192)
        pool.free(address)
        pool.alloc(8192)
        pool.free(address)
        with pytest.raises(AllocationError):
            pool.free(address)


class TestReserve:
    """Pinned exact-range claims (adopt_region / re-grant backing)."""

    def test_reserve_claims_the_exact_range(self):
        pool = BuddyAllocator(0, 1 << 20)
        blocks = pool.reserve(0x8000, 0x8000)
        assert blocks == [0x8000]
        assert pool.is_granted(0x8000)
        # a fresh alloc cannot land inside the reserved range
        assert pool.alloc(0x8000) == 0

    def test_reserve_decomposes_unaligned_spans(self):
        pool = BuddyAllocator(0, 1 << 20)
        # [0x1000, 0x4000): no single naturally-aligned block covers it
        blocks = pool.reserve(0x1000, 0x3000)
        assert blocks == [0x1000, 0x2000]
        assert pool.grant_size(0x1000) == 0x1000
        assert pool.grant_size(0x2000) == 0x2000

    def test_reserve_conflict_rolls_back_cleanly(self):
        pool = BuddyAllocator(0, 1 << 20)
        held = pool.alloc(4096)
        assert held == 0
        before = pool.stats()
        with pytest.raises(AllocationError):
            pool.reserve(0, 0x3000)   # first page already granted
        assert pool.stats() == before
        assert pool.free_bytes == (1 << 20) - 4096

    def test_reserve_release_reserve_cycle(self):
        pool = BuddyAllocator(0, 1 << 20)
        for _ in range(10):
            blocks = pool.reserve(0x20000, 0x20000)
            for block in blocks:
                pool.free(block)
        assert pool.free_bytes == 1 << 20
        assert pool.largest_free_block == 1 << 20

    def test_reserve_out_of_pool_rejected(self):
        pool = BuddyAllocator(0, 1 << 16)
        with pytest.raises(AllocationError):
            pool.reserve(1 << 16, 4096)
        with pytest.raises(AllocationError):
            pool.reserve((1 << 16) - 4096, 8192)


class TestBookkeeping:
    def test_stats_track_the_lifecycle(self):
        pool = BuddyAllocator(0, 1 << 20)
        a = pool.alloc(4096)
        b = pool.alloc(8192)
        pool.free(a)
        stats = pool.stats()
        assert stats["allocations"] == 2
        assert stats["frees"] == 1
        assert stats["allocated_bytes"] == 8192
        assert stats["free_bytes"] == (1 << 20) - 8192

    def test_grants_listing_is_sorted(self):
        pool = BuddyAllocator(0, 1 << 20)
        addresses = [pool.alloc(4096) for _ in range(5)]
        pool.free(addresses[2])
        grants = pool.grants()
        assert grants == sorted(grants)
        assert len(grants) == 4
        assert all(size == 4096 for _, size in grants)

    def test_identical_operation_sequences_grant_identically(self):
        def run():
            pool = BuddyAllocator(0, 1 << 20)
            out = [pool.alloc(size) for size in
                   (4096, 16384, 4096, 8192, 4096)]
            pool.free(out[1])
            out.append(pool.alloc(4096))
            return out

        assert run() == run()
