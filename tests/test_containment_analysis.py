"""Unit tests for the closed-form containment bounds.

The :class:`~repro.analysis.containment.ContainmentBound` terms are
checked against hand-derived values for the calibration point the fault
campaign runs at (ZCU102 DRAM timing, 16-beat equalization, 400-cycle
watchdog), plus structural properties (monotonicity, composition) that
must survive any re-derivation of the individual terms.
"""

import pytest

from repro.analysis import ContainmentBound
from repro.analysis.interference import transaction_service_cycles
from repro.analysis.latency import hyperconnect_propagation
from repro.platforms import ZCU102

TIMEOUT = 400


def bound(n_ports=2, timeout=TIMEOUT, period=None, outstanding=8,
          nominal=16):
    return ContainmentBound(n_ports=n_ports, nominal_burst=nominal,
                            memory=ZCU102.dram, timeout_cycles=timeout,
                            rogue_outstanding=outstanding, period=period)


class TestTerms:
    """Each component term against its hand-derived value."""

    def test_detection_is_the_programmed_timeout(self):
        assert bound().detection_cycles == TIMEOUT
        assert bound(timeout=123).detection_cycles == 123

    def test_drain_counts_in_flight_service_plus_pipeline_tail(self):
        service = transaction_service_cycles(16)
        tail = (ZCU102.dram.read_latency + ZCU102.dram.write_latency
                + ZCU102.dram.resp_latency)
        assert bound().drain_cycles == 2 * 8 * service + tail

    def test_synthesis_defaults_to_outstanding_worst_case(self):
        b = bound()
        assert b.synthesis_cycles() == 8 * 16  # reads dominate writes
        assert b.synthesis_cycles(owed_r_beats=3, owed_b=10) == 10
        assert b.synthesis_cycles(owed_r_beats=0, owed_b=0) == 0
        with pytest.raises(ValueError):
            b.synthesis_cycles(owed_r_beats=-1)

    def test_propagation_slack_is_the_four_channel_traversal(self):
        prop = hyperconnect_propagation()
        assert (bound().propagation_slack
                == prop["AR"] + prop["AW"] + prop["R"] + prop["B"])


class TestComposites:
    """Composition identities and the pinned calibration values."""

    def test_containment_latency_composition(self):
        b = bound()
        assert b.containment_latency_bound() == (
            b.detection_cycles + b.drain_cycles + b.synthesis_cycles()
            + b.propagation_slack)

    def test_healthy_delay_excludes_synthesis(self):
        """Synthesis runs behind the closed gate; neighbours never see
        it, so the healthy bound must not charge for it."""
        b = bound()
        service = transaction_service_cycles(16)
        assert b.healthy_port_delay_bound() == (
            b.detection_cycles + b.drain_cycles + b.n_ports * service
            + b.propagation_slack)

    @pytest.mark.parametrize("n_ports,expected", ((2, 771), (3, 788),
                                                  (4, 805)))
    def test_calibrated_healthy_bounds(self, n_ports, expected):
        """Pinned values the fuzz oracle and campaign assert against.

        A change here is a deliberate re-derivation of the bound; the
        measured campaign deltas (~270-400 cycles at n=2) must stay
        below the new values.
        """
        assert bound(n_ports=n_ports).healthy_port_delay_bound() == expected

    def test_reservation_period_adds_one_blackout_window(self):
        free = bound().healthy_port_delay_bound()
        assert bound(period=2048).healthy_port_delay_bound() == free + 2048
        assert bound(period=2048).healthy_port_delay_bound() == 2819

    def test_min_safe_timeout_exceeds_healthy_bound(self):
        for n_ports in (1, 2, 3, 4, 8):
            b = bound(n_ports=n_ports)
            assert b.min_safe_timeout() > b.healthy_port_delay_bound()

    def test_cascade_slack(self):
        b = bound()
        service = transaction_service_cycles(16)
        per_level = b.propagation_slack + b.n_ports * service
        assert b.cascade_slack(levels=1) == 0
        assert b.cascade_slack(levels=2) == per_level
        assert b.cascade_slack(levels=3) == 2 * per_level
        with pytest.raises(ValueError):
            b.cascade_slack(levels=0)


class TestMonotonicity:
    """Looser configurations may never yield tighter bounds."""

    def test_monotone_in_timeout(self):
        assert (bound(timeout=500).healthy_port_delay_bound()
                > bound(timeout=400).healthy_port_delay_bound())

    def test_monotone_in_ports(self):
        assert (bound(n_ports=4).healthy_port_delay_bound()
                > bound(n_ports=2).healthy_port_delay_bound())

    def test_monotone_in_outstanding(self):
        assert (bound(outstanding=16).containment_latency_bound()
                > bound(outstanding=8).containment_latency_bound())

    def test_monotone_in_nominal_burst(self):
        assert (bound(nominal=32).containment_latency_bound()
                > bound(nominal=16).containment_latency_bound())


class TestValidation:
    def test_rejects_bad_parameters(self):
        for kwargs in ({"n_ports": 0}, {"nominal": 0}, {"timeout": 0},
                       {"outstanding": 0}, {"period": 0}):
            with pytest.raises(ValueError):
                bound(**kwargs)
