"""Unit tests for the shard partitioner (``repro.sim.partition``).

The partitioner must carve the HyperConnect wiring into per-port
pipelines plus a serial hub, and — more importantly — must *refuse* to
parallelize whenever the wiring proves two ports are not independent
(shared tracers, foreign completion callbacks, affinity without a
declared channel footprint).
"""

import pytest

from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.sim import Simulator, Tracer, build_plan
from repro.system import SocSystem


def plan_for(soc):
    soc.sim._rebuild_wiring()
    return build_plan(soc.sim)


def build_hc(n_ports=2, with_dmas=True, parallel=0):
    soc = SocSystem.build(ZCU102, interconnect="hyperconnect",
                          n_ports=n_ports, parallel=parallel)
    dmas = []
    if with_dmas:
        dmas = [AxiDma(soc.sim, f"dma{p}", soc.port(p))
                for p in range(n_ports)]
    return soc, dmas


class TestHyperConnectPlan:
    def test_per_port_shards(self):
        soc, dmas = build_hc(n_ports=3)
        plan = plan_for(soc)
        assert plan.parallelizable
        assert plan.max_width == 3
        assert len(plan.shard_keys) == 3
        # each port's TS and its engine share the port's shard
        for port, dma in enumerate(dmas):
            ts = soc.interconnect.supervisors[port]
            assert plan.component_keys[ts] is not None
            assert plan.component_keys[ts] == plan.component_keys[dma]

    def test_hub_holds_shared_machinery(self):
        soc, __ = build_hc()
        plan = plan_for(soc)
        hub = [comp for comp, key in plan.component_keys.items()
               if key is None]
        hub_types = {type(comp).__name__ for comp in hub}
        assert "Exbar" in hub_types
        assert "CentralUnit" in hub_types
        assert "MemorySubsystem" in hub_types

    def test_stage_schedule_alternates(self):
        soc, __ = build_hc()
        plan = plan_for(soc)
        kinds = [stage.kind for stage in plan.stages]
        assert "parallel" in kinds and "hub" in kinds
        for earlier, later in zip(plan.stages, plan.stages[1:]):
            assert earlier.kind != later.kind        # maximal runs
            assert earlier.end == later.start        # contiguous

    def test_stage_indices_cover_registration_order(self):
        soc, __ = build_hc()
        plan = plan_for(soc)
        seen = []
        for stage in plan.stages:
            if stage.kind == "hub":
                seen.extend(idx for idx, __ in stage.members)
            else:
                for members in stage.groups.values():
                    seen.extend(idx for idx, __ in members)
        assert sorted(seen) == list(range(len(soc.sim._components)))

    def test_channel_classes_stamped(self):
        soc, __ = build_hc()
        plan = plan_for(soc)
        verdicts = {v for v, __ in plan.channel_classes.values()}
        assert verdicts == {"internal", "boundary", "hub"}
        # the stamp mirrors onto the Channel objects themselves
        for channel in soc.sim._channels:
            assert channel.shard_class == plan.channel_classes[channel.name]
        # a port link channel is either internal to its port's shard or
        # a boundary between that shard and the hub
        ar = soc.port(0).ar
        verdict, key = ar.shard_class
        assert verdict in ("internal", "boundary")
        assert key in plan.shard_keys

    def test_describe_is_json_friendly(self):
        import json
        soc, __ = build_hc()
        summary = plan_for(soc).describe()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["parallelizable"] is True
        assert summary["max_width"] == 2
        assert sum(summary["shards"].values()) >= 4  # 2 TS + 2 engines


class TestMergesAndDemotions:
    def test_shared_tracer_merges_ports(self):
        """A tracer attached to both ports' channels would interleave
        its event list nondeterministically — the ports must merge."""
        soc, __ = build_hc()
        tracer = Tracer(limit=None)
        tracer.attach_channel(soc.port(0).ar, "p0.AR")
        tracer.attach_channel(soc.port(1).ar, "p1.AR")
        plan = plan_for(soc)
        assert plan.max_width < 2
        assert not plan.parallelizable

    def test_single_port_tracer_keeps_plan_parallel(self):
        soc, __ = build_hc()
        tracer = Tracer(limit=None)
        tracer.attach_channel(soc.port(0).ar, "p0.AR")
        plan = plan_for(soc)
        assert plan.parallelizable

    def test_foreign_completion_callback_demotes_engine(self):
        """The hypervisor's interrupt bridge mutates hypervisor state
        from inside the engine's tick — the engine must run serially."""
        from repro.hypervisor import Hypervisor

        soc, dmas = build_hc()
        hypervisor = Hypervisor(soc.interconnect)
        guest = hypervisor.create_domain("guest")
        guest.ports.append(0)
        hypervisor.attach_accelerator("guest", 0, dmas[0])
        plan = plan_for(soc)
        assert plan.component_keys[dmas[0]] is None
        assert dmas[0].name in plan.demotions
        assert "foreign" in plan.demotions[dmas[0].name]

    def test_affinity_without_wake_channels_demotes(self):
        sim = Simulator("t", clock_hz=ZCU102.pl_clock_hz)
        from repro.sim import Component

        class Opaque(Component):
            def tick(self, cycle):
                pass

            def shard_affinity(self):
                return "mystery"

        comp = Opaque(sim, "opaque")
        sim._rebuild_wiring()
        plan = build_plan(sim)
        assert plan.component_keys[comp] is None
        assert "opaque" in plan.demotions
        assert "wake_channels" in plan.demotions["opaque"]

    def test_trivial_topology_not_parallelizable(self):
        soc, __ = build_hc(n_ports=1)
        plan = plan_for(soc)
        assert not plan.parallelizable
        assert plan.max_width <= 1


class TestPlanLifecycle:
    def test_plan_rebuilt_after_late_listener_attach(self):
        """Attaching a listener after the first plan must force a
        re-plan: the partitioner's merge decisions read the listener
        lists, so a cross-port tracer attached mid-run would otherwise
        run against a stale (and now unsound) plan."""
        soc, __ = build_hc(parallel=2)
        soc.sim.run(100)
        assert soc.sim.parallel_plan.parallelizable
        tracer = Tracer(limit=None)
        tracer.attach_channel(soc.port(0).ar, "p0.AR")
        tracer.attach_channel(soc.port(1).ar, "p1.AR")
        soc.sim.run(100)
        assert not soc.sim.parallel_plan.parallelizable

    def test_plan_rebuilt_after_late_registration(self):
        soc, __ = build_hc(parallel=2)
        soc.sim.run(100)
        first = soc.sim.parallel_plan
        assert first is not None
        AxiDma(soc.sim, "late", soc.port(1))   # marks wiring stale
        soc.sim.run(100)
        second = soc.sim.parallel_plan
        assert second is not first
        assert second.parallelizable
