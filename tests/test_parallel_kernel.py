"""Tests for the sharded parallel tick engine (``repro.sim.parallel``).

The contract under test is absolute: ``Simulator(parallel=N)`` must
produce byte-identical results to the serial reference kernel on every
workload — the sharding, the stage barriers, and the deferred wake
replay are pure scheduling, never semantics.  The fine-grained
fingerprint sweep lives in ``tests/test_kernel_equivalence.py`` and the
corpus replay in ``tests/test_verify_corpus.py``; this module covers
the engine's own machinery: fallback, backends, per-shard stats,
lifecycle, and the ``run_until`` stop-cycle guarantee.
"""

import pytest

from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.sim import ParallelEngine, Simulator
from repro.sim.errors import SimulationError
from repro.system import SocSystem


def build_loaded_soc(n_ports=2, parallel=0, backend=None):
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048,
                          parallel=parallel)
    if backend is not None:
        soc.sim.parallel_backend = backend
    dmas = [AxiDma(soc.sim, f"dma{p}", soc.port(p))
            for p in range(n_ports)]
    for port, dma in enumerate(dmas):
        base = 0x100_0000 * (port + 1)
        dma.enqueue_copy(base, base + 0x800_0000, 1024)
        dma.enqueue_read(base + 0x10_0000, 512)
    return soc, dmas


def signature(soc, dmas):
    return (soc.sim.now,
            tuple((d.bytes_read, d.bytes_written, len(d.jobs_completed),
                   d.error_responses) for d in dmas))


def run_and_sign(n_ports=2, parallel=0, backend=None, cycles=12_000):
    soc, dmas = build_loaded_soc(n_ports, parallel, backend)
    soc.sim.run(cycles)
    return signature(soc, dmas), soc


class TestByteIdentity:
    def test_inline_backend_matches_reference(self):
        ref, __ = run_and_sign(parallel=0)
        par, __ = run_and_sign(parallel=2, backend="inline")
        assert par == ref

    def test_threads_backend_matches_reference(self):
        ref, __ = run_and_sign(parallel=0)
        par, soc = run_and_sign(parallel=3, backend="threads")
        assert par == ref
        soc.sim.finish()

    def test_worker_count_is_immaterial(self):
        baseline, __ = run_and_sign(n_ports=4, parallel=2,
                                    backend="inline")
        for workers in (3, 4, 8):
            sig, __ = run_and_sign(n_ports=4, parallel=workers,
                                   backend="inline")
            assert sig == baseline

    def test_split_runs_match_one_run(self):
        soc_a, dmas_a = build_loaded_soc(parallel=2, backend="inline")
        soc_a.sim.run(12_000)
        soc_b, dmas_b = build_loaded_soc(parallel=2, backend="inline")
        for __ in range(6):
            soc_b.sim.run(2_000)
        assert signature(soc_a, dmas_a) == signature(soc_b, dmas_b)


class TestFallback:
    def test_single_port_falls_back_to_fast_path(self):
        """One port means one shard: not worth a stage schedule.  The
        engine must detect that and delegate to the quiescence fast
        path, still byte-identical to the reference."""
        ref, __ = run_and_sign(n_ports=1, parallel=0)
        par, soc = run_and_sign(n_ports=1, parallel=2, backend="inline")
        assert par == ref
        plan = soc.sim.parallel_plan
        assert plan is not None and not plan.parallelizable

    def test_parallel_implies_fast(self):
        sim = Simulator("t", clock_hz=ZCU102.pl_clock_hz, parallel=2)
        assert sim.fast


class TestRunUntil:
    def test_predicate_stops_on_same_cycle(self):
        """ISSUE satellite: ``run_until`` must honor its predicate at
        the same cycle under the parallel engine as under the serial
        reference — stage barriers may not overrun the sample points."""
        stops = {}
        for label, parallel in (("serial", 0), ("parallel", 2)):
            soc, dmas = build_loaded_soc(parallel=parallel,
                                         backend="inline" if parallel
                                         else None)
            elapsed = soc.sim.run_until(
                lambda: all(len(d.jobs_completed) >= 2 for d in dmas),
                max_cycles=200_000)
            stops[label] = (elapsed, soc.sim.now)
        assert stops["parallel"] == stops["serial"]

    def test_coarse_stride_stops_on_same_boundary(self):
        stops = {}
        for label, parallel in (("serial", 0), ("parallel", 2)):
            soc, dmas = build_loaded_soc(parallel=parallel,
                                         backend="inline" if parallel
                                         else None)
            elapsed = soc.sim.run_until(
                lambda: all(len(d.jobs_completed) >= 2 for d in dmas),
                max_cycles=200_000, check_every=64)
            stops[label] = (elapsed, soc.sim.now)
        assert stops["parallel"] == stops["serial"]

    def test_timeout_still_raises(self):
        soc, __ = build_loaded_soc(parallel=2, backend="inline")
        with pytest.raises(SimulationError):
            soc.sim.run_until(lambda: False, max_cycles=500)


class TestShardStats:
    def test_per_shard_stats_populated(self):
        __, soc = run_and_sign(n_ports=2, parallel=2, backend="inline")
        stats = soc.sim.parallel_shard_stats
        assert "hub" in stats
        shard_keys = set(soc.sim.parallel_plan.shard_keys)
        assert shard_keys and shard_keys <= set(stats)
        for key, shard in stats.items():
            assert shard.cycles_total > 0, key
        assert stats["hub"].ticks_run > 0
        assert any(stats[key].ticks_run > 0 for key in shard_keys)

    def test_sleeping_shards_accumulate_slept_ticks(self):
        __, soc = run_and_sign(n_ports=2, parallel=2, backend="inline",
                               cycles=40_000)
        stats = soc.sim.parallel_shard_stats
        slept = sum(s.ticks_slept for s in stats.values())
        assert slept > 0   # the post-drain tail must not be ticked

    def test_serial_sim_reports_empty_stats(self):
        __, soc = run_and_sign(parallel=0)
        assert soc.sim.parallel_shard_stats == {}
        assert soc.sim.parallel_plan is None


class TestLifecycleAndValidation:
    def test_negative_worker_count_rejected(self):
        with pytest.raises(SimulationError):
            Simulator("t", clock_hz=ZCU102.pl_clock_hz, parallel=-1)

    def test_zero_workers_rejected_by_engine(self):
        sim = Simulator("t", clock_hz=ZCU102.pl_clock_hz)
        with pytest.raises(SimulationError):
            ParallelEngine(sim, 0)

    def test_unknown_backend_rejected(self):
        sim = Simulator("t", clock_hz=ZCU102.pl_clock_hz)
        with pytest.raises(SimulationError):
            ParallelEngine(sim, 2, backend="fibers")

    def test_env_var_switches_builds_over(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        soc = SocSystem.build(ZCU102, n_ports=2)
        assert soc.sim.parallel == 3
        monkeypatch.setenv("REPRO_PARALLEL", "")
        soc = SocSystem.build(ZCU102, n_ports=2)
        assert soc.sim.parallel == 0
        monkeypatch.delenv("REPRO_PARALLEL")
        soc = SocSystem.build(ZCU102, n_ports=2, parallel=4)
        assert soc.sim.parallel == 4

    def test_finish_closes_worker_pool(self):
        __, soc = run_and_sign(parallel=2, backend="threads")
        engine = soc.sim._parallel_engine
        assert engine is not None
        soc.sim.finish()
        assert engine._executor is None
        engine.close()   # idempotent

    def test_plan_exposed_after_first_advance(self):
        soc, __ = build_loaded_soc(parallel=2, backend="inline")
        assert soc.sim.parallel_plan is None   # engine is lazy
        soc.sim.run(10)
        plan = soc.sim.parallel_plan
        assert plan is not None and plan.parallelizable
