"""Unit tests for IP-XACT packaging and the integration flow."""

import pytest

from repro.hypervisor import SystemIntegrator
from repro.ipxact import (
    BusInterface,
    IpxactComponent,
    Vlnv,
    accelerator_component,
    hyperconnect_component,
    read_component,
    write_component,
)
from repro.platforms import ZCU102, ZYNQ_7020
from repro.sim import ConfigurationError


class TestComponentModel:
    def test_vlnv_str(self):
        vlnv = Vlnv("retis", "ic", "hyperconnect", "1.0")
        assert str(vlnv) == "retis:ic:hyperconnect:1.0"

    def test_interface_validation(self):
        with pytest.raises(ConfigurationError):
            BusInterface("m", "bidirectional")
        with pytest.raises(ConfigurationError):
            BusInterface("m", "master", protocol="PCIe")

    def test_interface_lookup(self):
        component = accelerator_component("dnn")
        assert component.interface("M_AXI").mode == "master"
        with pytest.raises(ConfigurationError):
            component.interface("nonexistent")

    def test_masters_and_slaves_views(self):
        component = hyperconnect_component(3)
        assert len(component.slaves()) == 4   # 3 data + 1 control
        assert len(component.masters()) == 1

    def test_hyperconnect_factory_parameters(self):
        component = hyperconnect_component(4, data_width_bits=64)
        assert component.parameters["N_PORTS"] == "4"
        assert component.parameters["DATA_WIDTH"] == "64"


class TestXmlRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = hyperconnect_component(2)
        parsed = IpxactComponent.from_xml(original.to_xml())
        assert parsed.vlnv == original.vlnv
        assert parsed.parameters == original.parameters
        assert len(parsed.interfaces) == len(original.interfaces)
        for left, right in zip(parsed.interfaces, original.interfaces):
            assert left == right

    def test_description_preserved(self):
        original = accelerator_component("edge-detect")
        parsed = IpxactComponent.from_xml(original.to_xml())
        assert parsed.description == original.description

    def test_file_round_trip(self, tmp_path):
        original = accelerator_component("dnn")
        path = write_component(original, tmp_path / "dnn.xml")
        parsed = read_component(path)
        assert parsed.vlnv == original.vlnv
        assert path.read_text().startswith("<?xml")


class TestIntegrationFlow:
    def test_integrate_assigns_sequential_ports(self):
        integrator = SystemIntegrator(ZCU102)
        integrator.add_accelerator(accelerator_component("a"), "d0")
        integrator.add_accelerator(accelerator_component("b"), "d1")
        integrator.add_accelerator(accelerator_component("c"), "d0")
        design = integrator.integrate()
        assert design.n_ports == 3
        assert [placed.port for placed in design.accelerators] == [0, 1, 2]
        assert integrator.port_map(design) == {"d0": [0, 2], "d1": [1]}

    def test_design_is_sealed_and_verifies(self):
        integrator = SystemIntegrator(ZCU102)
        integrator.add_accelerator(accelerator_component("a"), "d0")
        design = integrator.integrate()
        assert design.verify()
        design.signature = "tampered"
        assert not design.verify()

    def test_empty_integration_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemIntegrator(ZCU102).integrate()

    def test_missing_control_slave_rejected(self):
        integrator = SystemIntegrator(ZCU102)
        bad = IpxactComponent(
            vlnv=Vlnv("v", "l", "n", "1"),
            interfaces=[BusInterface("M_AXI", "master")])
        with pytest.raises(ConfigurationError):
            integrator.add_accelerator(bad, "d0")

    def test_multiple_masters_rejected(self):
        integrator = SystemIntegrator(ZCU102)
        bad = IpxactComponent(
            vlnv=Vlnv("v", "l", "n", "1"),
            interfaces=[BusInterface("M0", "master"),
                        BusInterface("M1", "master"),
                        BusInterface("S", "slave")])
        with pytest.raises(ConfigurationError):
            integrator.add_accelerator(bad, "d0")

    def test_width_mismatch_rejected(self):
        # Zynq-7020 HP ports are 64-bit; a 128-bit master cannot attach
        integrator = SystemIntegrator(ZYNQ_7020)
        wide = accelerator_component("wide", data_width_bits=128)
        with pytest.raises(ConfigurationError):
            integrator.add_accelerator(wide, "d0")

    def test_design_interconnect_matches_platform_width(self):
        integrator = SystemIntegrator(ZYNQ_7020)
        integrator.add_accelerator(
            accelerator_component("a", data_width_bits=64), "d0")
        design = integrator.integrate()
        assert design.interconnect.parameters["DATA_WIDTH"] == "64"
